"""The mode x anomaly scorecard: theory, executions, and load economics.

Two halves:

* :func:`anomaly_matrix` runs every canned history under every
  :class:`~repro.core.transaction.IsolationLevel` on a fresh
  simulator/store/manager and has the
  :class:`~repro.isolation.detector.AnomalyDetector` judge each run.
  :data:`THEORY` is the published expected matrix;
  :func:`matches_theory` diffs them.  ``perf_gate.py`` fails the build
  on any disagreement — the matrix is an executable contract, not a
  table in a doc.
* :func:`run_open_loop` prices each level: a fixed open-loop arrival
  schedule of read-modify-write and read-only transactions over a
  keyspace with a deliberate hot key, reporting abort rate, commit
  latency, snapshot age and — the quantitative version of the
  lost-update row — how many committed increments the final counters
  actually reflect.

Everything is virtual-time and RNG-free: same inputs ⇒ byte-identical
output, which is what lets CI diff two runs of
``bench_isolation.py --check-determinism``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.transaction import (
    ISOLATION_SPECTRUM,
    IsolationLevel,
    TransactionManager,
)
from repro.isolation.detector import AnomalyDetector
from repro.isolation.histories import (
    HISTORIES,
    History,
    HistoryResult,
    HistoryRunner,
)
from repro.lsdb.store import LSDBStore
from repro.obs.metrics import MetricsRegistry
from repro.sim.scheduler import Simulator

#: Modes, weakest to strongest (matrix row order).
MODES: tuple[IsolationLevel, ...] = ISOLATION_SPECTRUM

#: Anomalies, in canned-history order (matrix column order).
ANOMALIES: tuple[str, ...] = tuple(history.name for history in HISTORIES)

#: NMSI propagation lag used for the canned histories — longer than any
#: schedule, so remote commits stay invisible for a history's duration.
HISTORY_PROPAGATION_LAG = 50.0

#: The expected matrix: ``THEORY[mode][anomaly]`` is whether the mode
#: admits the anomaly *on this architecture*.  Notes on the cells that
#: need them:
#:
#: * ``dirty_read`` is False everywhere: writes are buffered inside the
#:   transaction until commit, so uncommitted data structurally cannot
#:   be read (the paper's insert-only log has no "in-place dirty"
#:   state to leak).
#: * ``solipsistic`` reads live single-copy state, so its reads are
#:   trivially monotonic: it admits read skew and lost updates but can
#:   never witness a long fork or a non-monotonic snapshot on one
#:   serialization unit.
#: * ``nmsi`` forbids read skew within a transaction (reads come from
#:   one begin-time snapshot) yet admits long forks and non-monotonic
#:   snapshots *across* transactions — that is precisely the
#:   monotonicity NMSI trades away — while global first-committer-wins
#:   validation keeps lost updates impossible.
#: * ``snapshot`` admits exactly write skew; ``serializable`` admits
#:   nothing the harness knows.
THEORY: dict[str, dict[str, bool]] = {
    "solipsistic": {
        "dirty_read": False,
        "read_skew": True,
        "lost_update": True,
        "write_skew": True,
        "long_fork": False,
        "non_monotonic_snapshot": False,
    },
    "nmsi": {
        "dirty_read": False,
        "read_skew": False,
        "lost_update": False,
        "write_skew": True,
        "long_fork": True,
        "non_monotonic_snapshot": True,
    },
    "snapshot": {
        "dirty_read": False,
        "read_skew": False,
        "lost_update": False,
        "write_skew": True,
        "long_fork": False,
        "non_monotonic_snapshot": False,
    },
    "serializable": {
        "dirty_read": False,
        "read_skew": False,
        "lost_update": False,
        "write_skew": False,
        "long_fork": False,
        "non_monotonic_snapshot": False,
    },
}


def run_history(
    history: History,
    isolation: IsolationLevel,
    propagation_lag: float = HISTORY_PROPAGATION_LAG,
) -> HistoryResult:
    """Execute one canned history under one level on fresh machinery."""
    sim = Simulator(seed=0)
    store = LSDBStore(name="isolation", origin="tx", clock=lambda: sim.now)
    manager = TransactionManager(
        store,
        sim=sim,
        isolation=isolation,
        propagation_lag=propagation_lag,
    )
    return HistoryRunner(manager, sim).run(history, isolation=isolation)


def anomaly_matrix(
    propagation_lag: float = HISTORY_PROPAGATION_LAG,
) -> dict[str, dict[str, dict[str, object]]]:
    """Every history under every mode, judged.

    Returns ``matrix[mode][anomaly] = {"materialized": bool,
    "evidence": str}``.
    """
    detector = AnomalyDetector()
    matrix: dict[str, dict[str, dict[str, object]]] = {}
    for mode in MODES:
        row: dict[str, dict[str, object]] = {}
        for history in HISTORIES:
            verdict = detector.judge(
                run_history(history, mode, propagation_lag=propagation_lag)
            )
            row[history.name] = {
                "materialized": verdict.materialized,
                "evidence": verdict.evidence,
            }
        matrix[mode.value] = row
    return matrix


def matrix_bools(
    matrix: dict[str, dict[str, dict[str, object]]]
) -> dict[str, dict[str, bool]]:
    """Strip a matrix down to the boolean cells THEORY speaks about."""
    return {
        mode: {
            anomaly: bool(cell["materialized"])
            for anomaly, cell in row.items()
        }
        for mode, row in matrix.items()
    }


def matches_theory(
    bools: dict[str, dict[str, bool]]
) -> tuple[bool, list[str]]:
    """Diff an executed matrix against :data:`THEORY`.

    Returns ``(ok, mismatches)`` where each mismatch reads
    ``"mode/anomaly: theory=X observed=Y"``.
    """
    mismatches: list[str] = []
    for mode in sorted(THEORY):
        for anomaly in ANOMALIES:
            expected = THEORY[mode][anomaly]
            observed = bools.get(mode, {}).get(anomaly)
            if observed != expected:
                mismatches.append(
                    f"{mode}/{anomaly}: theory={expected} observed={observed}"
                )
    return (not mismatches, mismatches)


# ---------------------------------------------------------------------- #
# Open-loop load: what each level costs
# ---------------------------------------------------------------------- #


def _percentile(values: list[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


def run_open_loop(
    isolation: IsolationLevel,
    transactions: int = 400,
    interval: float = 1.0,
    think: float = 5.0,
    keys: int = 8,
    hot_every: int = 3,
    read_only_every: int = 4,
    propagation_lag: float = 10.0,
    sites: tuple[str, ...] = ("dc-a", "dc-b"),
    commit_cost: float = 1.0,
) -> dict[str, object]:
    """Fixed open-loop arrival schedule under one isolation level.

    Transaction ``i`` begins (and reads) at ``1 + i*interval`` and
    commits at begin + ``think``, so neighbours genuinely overlap and
    conflicts can arise.  Every ``hot_every``-th transaction hits the
    hot key ``k0`` (the contention source); every
    ``read_only_every``-th is read-only (it reads two keys and writes
    none); everything else read-modify-writes a key from the cold
    rotation.  Sites alternate per arrival, which under NMSI puts
    consecutive hot writers on opposite sides of the propagation
    window.

    The schedule is open-loop: arrivals do not wait for outcomes, so a
    mode's abort rate cannot slow the offered load — exactly the regime
    where the isolation levels' economics differ.
    """
    sim = Simulator(seed=0)
    store = LSDBStore(name="load", origin="load", clock=lambda: sim.now)
    metrics = MetricsRegistry()
    manager = TransactionManager(
        store,
        sim=sim,
        isolation=isolation,
        propagation_lag=propagation_lag,
        commit_cost=commit_cost,
        metrics=metrics,
    )
    for k in range(keys):
        store.set_fields("item", f"k{k}", {"n": 0})

    receipts: list = []
    rmw_outcomes: list[bool] = []

    def arrival(index: int) -> None:
        key = "k0" if index % hot_every == 0 else f"k{1 + index % (keys - 1)}"
        site = sites[index % len(sites)]
        read_only = index % read_only_every == 0
        tx = manager.begin(isolation=isolation, site=site)
        state = tx.read("item", key)
        seen = state.fields.get("n", 0) if state is not None else 0
        if read_only:
            tx.read("item", f"k{(index + 1) % keys}")

        def finish() -> None:
            if not read_only:
                tx.set_fields("item", key, {"n": seen + 1})
            receipt = tx.commit()
            receipts.append(receipt)
            if not read_only:
                rmw_outcomes.append(receipt.committed)

        sim.schedule_at(sim.now + think, finish, label=f"commit:{index}")

    for i in range(transactions):
        sim.schedule_at(
            1.0 + i * interval,
            (lambda bound=i: arrival(bound)),
            label=f"arrive:{i}",
        )
    sim.run(until=1.0 + transactions * interval + think + commit_cost + 1.0)

    committed = [r for r in receipts if r.committed]
    aborted = [r for r in receipts if not r.committed]
    latencies = [r.response_time for r in committed]
    ages = [r.snapshot_age for r in committed]
    applied = sum(
        (store.get("item", f"k{k}").fields.get("n", 0)) for k in range(keys)
    )
    rmw_commits = sum(1 for ok in rmw_outcomes if ok)
    ww_aborts = sum(
        1 for r in aborted if r.reason.startswith("write-write conflict")
    )
    return {
        "mode": isolation.value,
        "transactions": len(receipts),
        "commits": len(committed),
        "aborts": len(aborted),
        "abort_rate": round(len(aborted) / len(receipts), 6) if receipts else 0.0,
        "commit_latency_mean": round(
            sum(latencies) / len(latencies), 6
        ) if latencies else 0.0,
        "commit_latency_p95": round(_percentile(latencies, 0.95), 6),
        "snapshot_age_mean": round(sum(ages) / len(ages), 6) if ages else 0.0,
        "snapshot_age_p95": round(_percentile(ages, 0.95), 6),
        "rmw_commits": rmw_commits,
        "updates_applied": applied,
        "lost_updates": rmw_commits - applied,
        "ww_conflict_aborts": ww_aborts,
        "occ_aborts": len(aborted) - ww_aborts,
        "goodput": round(len(committed) / len(receipts), 6) if receipts else 0.0,
    }


def scorecard(
    quick: bool = False,
    transactions: Optional[int] = None,
) -> dict[str, object]:
    """The full deliverable: matrix + theory diff + per-mode load stats."""
    count = transactions if transactions is not None else (120 if quick else 400)
    matrix = anomaly_matrix()
    bools = matrix_bools(matrix)
    ok, mismatches = matches_theory(bools)
    load = {
        mode.value: run_open_loop(mode, transactions=count) for mode in MODES
    }
    return {
        "config": {
            "transactions": count,
            "history_propagation_lag": HISTORY_PROPAGATION_LAG,
            "modes": [mode.value for mode in MODES],
            "anomalies": list(ANOMALIES),
        },
        "matrix": matrix,
        "matrix_bools": bools,
        "theory": THEORY,
        "matches_theory": ok,
        "mismatches": mismatches,
        "load": load,
    }
