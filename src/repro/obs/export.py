"""Trace export: JSON payloads, text timelines, schema validation.

Two renderings of one :class:`~repro.obs.trace.Tracer`:

* :func:`trace_payload` — a JSON-friendly dict (``{"spans": [...]}``)
  whose shape is pinned by the checked-in schema
  ``benchmarks/trace_schema.json``; CI exports a traced run and
  validates it against that schema so the export format cannot drift
  silently.
* :func:`render_timeline` — a human-readable tree per trace, indented
  by causality and annotated with virtual times, the artefact
  ``benchmarks/run_all.py`` prints for the demo write.

:func:`validate_trace` is a deliberately small validator for the
JSON-Schema *subset* the trace schema uses (type / properties /
required / items / enum) — the container has no ``jsonschema``
package, and the subset keeps the checked-in schema honest without a
new dependency.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional

from repro.obs.trace import Span, Tracer


def trace_payload(tracer: Tracer, meta: Optional[Mapping[str, Any]] = None) -> dict[str, Any]:
    """The exportable trace log: every span, in deterministic order."""
    return {
        "meta": dict(meta or {}),
        "trace_count": len(tracer.trace_ids()),
        "spans": [span.to_dict() for span in tracer.spans],
    }


def trace_json(tracer: Tracer, meta: Optional[Mapping[str, Any]] = None) -> str:
    """Canonical JSON for :func:`trace_payload` (byte-stable)."""
    return json.dumps(trace_payload(tracer, meta), sort_keys=True, indent=2) + "\n"


def _format_time(value: Optional[float]) -> str:
    return "open" if value is None else f"{value:g}"


def render_span(tracer: Tracer, span: Span, depth: int = 0) -> list[str]:
    """Render one span and its subtree as indented timeline lines."""
    detail = " ".join(
        f"{key}={value}" for key, value in sorted(span.attrs.items())
    )
    node = f" @{span.node}" if span.node else ""
    line = (
        f"{'  ' * depth}[{span.start:>7g} -> {_format_time(span.end):>7}] "
        f"{span.name}{node}{(' ' + detail) if detail else ''}"
    )
    lines = [line]
    for child in tracer.children_of(span):
        lines.extend(render_span(tracer, child, depth + 1))
    return lines


def render_timeline(tracer: Tracer, trace_id: Optional[str] = None) -> str:
    """Text timeline of one trace (or every trace), causally indented.

    A span still open at export time renders with ``open`` in place of
    its end time — for a network hop span that is a dropped message,
    made visible instead of silently missing.
    """
    trace_ids = [trace_id] if trace_id is not None else tracer.trace_ids()
    blocks: list[str] = []
    for tid in trace_ids:
        spans = tracer.spans_of(tid)
        if not spans:
            continue
        start = min(span.start for span in spans)
        ends = [span.end for span in spans if span.end is not None]
        finish = max(ends) if ends else start
        header = f"trace {tid} ({len(spans)} spans, t={start:g} -> {finish:g})"
        body: list[str] = []
        for root in tracer.roots_of(tid):
            body.extend(render_span(tracer, root, depth=1))
        blocks.append("\n".join([header] + body))
    return "\n".join(blocks)


# --------------------------------------------------------------------- #
# Schema validation (JSON-Schema subset)
# --------------------------------------------------------------------- #

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _validate(value: Any, schema: Mapping[str, Any], path: str, errors: list[str]) -> None:
    schema_type = schema.get("type")
    if schema_type is not None:
        allowed = schema_type if isinstance(schema_type, list) else [schema_type]
        if not any(_TYPE_CHECKS[t](value) for t in allowed):
            errors.append(
                f"{path or '$'}: expected {'|'.join(allowed)}, "
                f"got {type(value).__name__}"
            )
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path or '$'}: {value!r} not in {schema['enum']}")
    if isinstance(value, dict):
        for required in schema.get("required", ()):
            if required not in value:
                errors.append(f"{path or '$'}: missing required key {required!r}")
        properties = schema.get("properties", {})
        for key, subschema in properties.items():
            if key in value:
                _validate(value[key], subschema, f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            _validate(item, schema["items"], f"{path}[{index}]", errors)


def validate_trace(payload: Mapping[str, Any], schema: Mapping[str, Any]) -> list[str]:
    """Validate an exported trace payload against a schema.

    Returns:
        A list of human-readable problems — empty means valid.
    """
    errors: list[str] = []
    _validate(payload, schema, "", errors)
    return errors
