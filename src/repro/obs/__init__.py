"""Observability: metrics registry and causal tracing over virtual time.

The paper's principles are claims about observable inconsistency —
staleness windows (2.3), apology rates (2.9), replication lag and
eventual convergence (section 1).  This package is the first-class
measurement layer those claims are read from:

* :class:`MetricsRegistry` — counters, gauges and histograms that the
  network, scheduler, stores, queues and replication schemes register
  into; :class:`MetricsReport` snapshots it deterministically.
* :class:`Tracer` / :class:`Span` — causal trace spans carried by log
  events, queued messages and scheduled callbacks, so a write's journey
  (origin append → network hop → remote apply → index refresh) is
  reconstructable as a tree in virtual time.
* :mod:`repro.obs.export` — JSON payloads (schema-pinned) and text
  timelines of the span trees.

Enable both through the cluster facade
(``Cluster.build().with_tracing()``) or by passing ``metrics=`` /
``tracer=`` to any instrumented component.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsReport,
    percentile_of,
)
from repro.obs.trace import Span, Tracer
from repro.obs.export import (
    render_timeline,
    trace_json,
    trace_payload,
    validate_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsReport",
    "percentile_of",
    "Span",
    "Tracer",
    "render_timeline",
    "trace_json",
    "trace_payload",
    "validate_trace",
]
