"""Counters, gauges and histograms — the measurement substrate.

The paper's principles are claims about *observable* inconsistency:
staleness windows (2.3), apology rates (2.9), replication lag and
convergence (section 1).  Before this module each experiment scraped
those numbers with bespoke probes; a :class:`MetricsRegistry` gives
every subsystem one place to register what it does (messages sent and
dropped, log appends, rollup folds, reorder-buffer depth, redeliveries,
per-replica lag, apologies issued), and gives experiments one place to
read from.

Determinism contract
--------------------
Everything here is driven by the simulator's virtual time and the
deterministic event order, and the report serialisation sorts all keys —
so two runs with the same seed produce **byte-identical**
:meth:`MetricsReport.to_json` output (asserted in
``tests/test_obs_metrics.py``).
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable, Mapping, Optional, Sequence

#: A metric's identity: name plus sorted label pairs.
MetricKey = tuple[str, tuple[tuple[str, str], ...]]


def percentile_of(sorted_samples: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile over pre-sorted samples (0 when empty).

    This is the single percentile implementation in the library —
    :class:`Histogram` here and
    :class:`repro.bench.metrics.LatencyRecorder` both delegate to it,
    so the two can never drift apart.
    """
    if not sorted_samples:
        return 0.0
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    rank = max(0, math.ceil(pct / 100 * len(sorted_samples)) - 1)
    return sorted_samples[rank]


def _key(name: str, labels: Mapping[str, Any]) -> MetricKey:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


class Counter:
    """A monotonically increasing count (messages sent, appends, ...)."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: Mapping[str, str]):
        self.name = name
        self.labels = dict(labels)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """A point-in-time level (reorder-buffer depth, replication lag)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: Mapping[str, str]):
        self.name = name
        self.labels = dict(labels)
        self.value: float = 0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def snapshot(self) -> dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """A sample distribution (staleness-at-read, hop latency, ...).

    Samples are kept verbatim — experiment scales are small enough that
    exact percentiles beat bucketing, and exactness is what makes the
    determinism contract byte-level.
    """

    __slots__ = ("name", "labels", "_samples", "_sorted")

    kind = "histogram"

    def __init__(self, name: str, labels: Mapping[str, str]):
        self.name = name
        self.labels = dict(labels)
        self._samples: list[float] = []
        self._sorted: Optional[list[float]] = None

    def record(self, value: float) -> None:
        """Add one sample."""
        self._samples.append(value)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def sum(self) -> float:
        return sum(self._samples)

    @property
    def mean(self) -> float:
        return self.sum / len(self._samples) if self._samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def percentile(self, pct: float) -> float:
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return percentile_of(self._sorted, pct)

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "max": self.maximum,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Get-or-create registry of named, labelled metrics.

    Every instrumented subsystem (network, scheduler, store, queue,
    replication scheme, apology ledger) holds an optional reference to
    one registry; ``None`` means "not instrumented" and costs a single
    branch on the hot path.

    Example:
        >>> registry = MetricsRegistry()
        >>> registry.counter("net.sent").inc()
        >>> registry.counter("net.sent").inc()
        >>> registry.value("net.sent")
        2
    """

    def __init__(self):
        self._metrics: dict[MetricKey, Any] = {}

    def _get_or_create(self, cls, name: str, labels: Mapping[str, Any]):
        key = _key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, dict(key[1]))
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r}{dict(key[1])} is a {metric.kind}, "
                f"not a {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter named ``name`` with ``labels`` (created on first use)."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge named ``name`` with ``labels``."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The histogram named ``name`` with ``labels``."""
        return self._get_or_create(Histogram, name, labels)

    def value(self, name: str, **labels: Any) -> float:
        """Current value of a counter/gauge (0 if never touched)."""
        metric = self._metrics.get(_key(name, labels))
        return metric.value if metric is not None else 0

    def sum_values(self, name: str) -> float:
        """Sum of a counter/gauge across *all* label sets (e.g. total
        appends over every store)."""
        return sum(
            metric.value
            for (metric_name, _), metric in self._metrics.items()
            if metric_name == name and not isinstance(metric, Histogram)
        )

    def metrics(self) -> list[Any]:
        """Every registered metric, in deterministic (name, labels) order."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def report(self) -> "MetricsReport":
        """A frozen, serialisable snapshot of every metric."""
        return MetricsReport(
            [
                {
                    "name": metric.name,
                    "kind": metric.kind,
                    "labels": dict(metric.labels),
                    **metric.snapshot(),
                }
                for metric in self.metrics()
            ]
        )


class MetricsReport:
    """An immutable snapshot of a registry, renderable and diffable.

    ``to_json`` is byte-stable for a given registry state (sorted keys,
    fixed separators), which is what lets tests assert that two seeded
    runs measured *exactly* the same system behaviour.
    """

    def __init__(self, rows: Iterable[Mapping[str, Any]]):
        self.rows = [dict(row) for row in rows]

    def to_dict(self) -> dict[str, Any]:
        return {"metrics": self.rows}

    def to_json(self) -> str:
        """Canonical JSON (byte-identical across identical runs)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def get(self, name: str, **labels: Any) -> Optional[dict[str, Any]]:
        """The snapshot row for one metric (``None`` if absent)."""
        wanted = {k: str(v) for k, v in labels.items()}
        for row in self.rows:
            if row["name"] == name and row["labels"] == wanted:
                return row
        return None

    def render(self) -> str:
        """An aligned text table, one metric per line."""
        lines = []
        for row in self.rows:
            labels = ",".join(f"{k}={v}" for k, v in sorted(row["labels"].items()))
            label_part = f"{{{labels}}}" if labels else ""
            if row["kind"] == "histogram":
                detail = (
                    f"count={row['count']} mean={row['mean']:.3g} "
                    f"p50={row['p50']:.3g} p95={row['p95']:.3g} "
                    f"p99={row['p99']:.3g} max={row['max']:.3g}"
                )
            else:
                detail = f"{row['value']:g}"
            lines.append(f"{row['name']}{label_part:<24} {detail}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)
