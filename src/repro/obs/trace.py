"""Causal trace spans over virtual time.

A write in this library has a journey: the origin append, the shipping
hop across the simulated network, the idempotent remote apply, the
asynchronous secondary-index refresh.  The paper's whole argument is
that these stages are *allowed* to drift apart in time; this module
makes the drift visible by reconstructing the journey as a span tree.

Three carriers propagate causality:

* **scheduled callbacks** — :class:`repro.sim.scheduler.Simulator`
  captures the ambient span at ``schedule()`` time and restores it when
  the event fires, so work done "later" in virtual time still attaches
  to the span that caused it;
* **log events** — :class:`repro.lsdb.events.LogEvent` records the
  ``trace_id``/``span_id`` of the append that created it, and travels
  with them through replication, so a remote apply can attach to the
  origin append even on another node;
* **queued messages** — :class:`repro.queues.message.Message` likewise.

One :class:`Tracer` is shared by every node of a simulated cluster (it
is all one process); that is exactly what makes cross-node trees
reconstructable.  Ids are drawn from deterministic counters, so traces
are reproducible run to run.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional


class Span:
    """One named stage of a trace, spanning virtual time.

    Attributes:
        span_id: Unique id (``s<n>``, assignment order).
        trace_id: The trace (causal tree) this span belongs to.
        parent_id: Parent span id ("" for a trace root).
        name: Stage name, e.g. ``store.append`` or ``net.hop``.
        node: Node/replica the stage ran on (diagnostic).
        start: Virtual time the stage started.
        end: Virtual time it finished (``None`` while open — a hop
            span that never ends is a dropped message, visibly).
        attrs: Free-form details (entity ref, destination, status...).
    """

    __slots__ = ("span_id", "trace_id", "parent_id", "name", "node",
                 "start", "end", "attrs")

    def __init__(
        self,
        span_id: str,
        trace_id: str,
        parent_id: str,
        name: str,
        node: str,
        start: float,
        attrs: dict[str, Any],
    ):
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.node = node
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    @property
    def duration(self) -> float:
        """Virtual-time extent (0 while the span is still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> dict[str, Any]:
        """A JSON-friendly record (the export schema's span object)."""
        return {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.span_id} {self.name!r} trace={self.trace_id} "
            f"parent={self.parent_id or '-'} t={self.start}..{self.end})"
        )


class Tracer:
    """Creates, stacks and stores spans for one simulated cluster.

    Args:
        clock: Virtual-time source (usually ``lambda: sim.now``); a
            constant 0.0 for clock-free unit tests.

    The ambient *current span* is an explicit stack: instrumented code
    pushes with :meth:`span` (a context manager) or resumes a captured
    context with :meth:`resume`; everything opened inside attaches to
    the top of the stack.

    Example:
        >>> tracer = Tracer()
        >>> with tracer.span("write", node="r1") as root:
        ...     with tracer.span("store.append") as child:
        ...         pass
        >>> child.parent_id == root.span_id
        True
        >>> root.parent_id
        ''
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or (lambda: 0.0)
        self.spans: list[Span] = []
        self._by_id: dict[str, Span] = {}
        self._stack: list[Span] = []
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)

    # ------------------------------------------------------------------ #
    # Creating and ending spans
    # ------------------------------------------------------------------ #

    @property
    def current(self) -> Optional[Span]:
        """The ambient span new spans will attach to (``None`` at top level)."""
        return self._stack[-1] if self._stack else None

    def start_span(
        self,
        name: str,
        parent: Optional[Span | str] = None,
        node: str = "",
        **attrs: Any,
    ) -> Span:
        """Open a span.

        ``parent`` may be a :class:`Span`, a span id, or ``None`` —
        ``None`` means "the ambient current span", and if there is no
        ambient span either, the span roots a **new trace**.
        """
        if parent is None:
            parent = self.current
        elif isinstance(parent, str):
            parent = self._by_id.get(parent)
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = f"t{next(self._trace_ids)}", ""
        span = Span(
            span_id=f"s{next(self._span_ids)}",
            trace_id=trace_id,
            parent_id=parent_id,
            name=name,
            node=node,
            start=self._clock(),
            attrs=attrs,
        )
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span

    def end_span(self, span: Span, **attrs: Any) -> Span:
        """Close ``span`` at the current virtual time (idempotent:
        closing twice keeps the first end time)."""
        if span.end is None:
            span.end = self._clock()
        if attrs:
            span.attrs.update(attrs)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        parent: Optional[Span | str] = None,
        node: str = "",
        **attrs: Any,
    ) -> Iterator[Span]:
        """Open a span, make it ambient for the body, end it on exit."""
        opened = self.start_span(name, parent=parent, node=node, **attrs)
        self._stack.append(opened)
        try:
            yield opened
        finally:
            self._stack.pop()
            self.end_span(opened)

    # ------------------------------------------------------------------ #
    # Context capture/resume (the scheduled-callback carrier)
    # ------------------------------------------------------------------ #

    def capture(self) -> Optional[str]:
        """The ambient span id, for stashing on a scheduled callback or
        message (``None`` when nothing is ambient)."""
        current = self.current
        return current.span_id if current is not None else None

    @contextmanager
    def resume(self, span_id: Optional[str]) -> Iterator[Optional[Span]]:
        """Make a previously captured span ambient for the body.

        An unknown or ``None`` id resumes nothing (the body runs at top
        level) — a callback scheduled before tracing was enabled must
        still run.
        """
        span = self._by_id.get(span_id) if span_id else None
        if span is None:
            yield None
            return
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()

    # ------------------------------------------------------------------ #
    # Reconstruction
    # ------------------------------------------------------------------ #

    def get(self, span_id: str) -> Optional[Span]:
        """Look a span up by id."""
        return self._by_id.get(span_id)

    def trace_ids(self) -> list[str]:
        """All trace ids, in creation order."""
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def spans_of(self, trace_id: str) -> list[Span]:
        """All spans of one trace, in creation order."""
        return [span for span in self.spans if span.trace_id == trace_id]

    def children_of(self, span: Span) -> list[Span]:
        """Direct children, ordered by (start, creation)."""
        return sorted(
            (s for s in self.spans if s.parent_id == span.span_id),
            key=lambda s: (s.start, s.span_id),
        )

    def roots_of(self, trace_id: str) -> list[Span]:
        """Root spans of a trace (normally exactly one)."""
        return [s for s in self.spans_of(trace_id) if not s.parent_id]

    def tree(self, trace_id: str) -> list[dict[str, Any]]:
        """The trace as nested dicts: each node is the span's
        :meth:`Span.to_dict` plus a ``children`` list — the
        reconstruction tests and the JSON exporter both read this."""

        def build(span: Span) -> dict[str, Any]:
            record = span.to_dict()
            record["children"] = [build(child) for child in self.children_of(span)]
            return record

        return [build(root) for root in self.roots_of(trace_id)]

    def __len__(self) -> int:
        return len(self.spans)
