"""Shared exception hierarchy for the ``repro`` library.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate on the specific condition.

The hierarchy mirrors the paper's distinction between *prevented* failures
(programming errors, unsupported requests — raised eagerly) and *managed*
inconsistency (constraint violations, conflicts — which are ordinarily
recorded and handled, not raised; see :mod:`repro.core.constraints`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """The simulation engine was used incorrectly (e.g. time moved backwards)."""


class NetworkError(SimulationError):
    """A message could not be routed (unknown node, node not registered)."""


class TransactionError(ReproError):
    """Base class for transaction-processing failures."""


class TransactionAborted(TransactionError):
    """The transaction was aborted and its effects rolled back.

    Attributes:
        reason: Human-readable explanation (deadlock victim, validation
            failure, explicit rollback, ...).
    """

    def __init__(self, reason: str = "aborted"):
        super().__init__(reason)
        self.reason = reason


class DeadlockDetected(TransactionAborted):
    """The transaction was chosen as a deadlock victim under 2PL."""

    def __init__(self, reason: str = "deadlock victim"):
        super().__init__(reason)


class ValidationFailed(TransactionAborted):
    """Optimistic concurrency control validation failed at commit."""

    def __init__(self, reason: str = "optimistic validation failed"):
        super().__init__(reason)


class LockUnavailable(TransactionError):
    """A non-blocking lock request could not be granted."""


class EntityError(ReproError):
    """Base class for entity-model failures."""


class UnknownEntityType(EntityError):
    """An entity type name was not registered in the catalog."""


class EntityNotFound(EntityError):
    """No live version of the requested entity exists."""


class SchemaViolation(EntityError):
    """A payload does not match the entity type's declared schema."""


class FaultToleranceError(ReproError):
    """Base class for *managed give-up* conditions.

    The paper's fault model (section 2.11, "the show must go on") treats
    failure as ordinary input: an operation that cannot complete is
    retried under a :class:`~repro.core.policy.RetryPolicy`, bounded by a
    :class:`~repro.core.policy.TimeoutPolicy`, and — only once both are
    exhausted — *gives up* in a way the application can observe and
    apologise for.  Every such give-up path raises (or records) a
    subclass of this error, so one ``except FaultToleranceError`` clause
    catches "the system stopped trying" regardless of which subsystem
    stopped.
    """


class DeadlineExceeded(FaultToleranceError, TimeoutError):
    """An operation ran past its deadline (overall or per-attempt).

    Also a built-in :class:`TimeoutError`, so callers written against
    the standard timeout idiom catch it without knowing the library.

    Attributes:
        deadline: The virtual time the operation had to finish by.
        now: The virtual time when expiry was noticed.
    """

    def __init__(self, message: str = "deadline exceeded",
                 deadline: float = 0.0, now: float = 0.0):
        super().__init__(message)
        self.deadline = deadline
        self.now = now


class RetryExhausted(FaultToleranceError):
    """An operation was retried up to its policy's limit and still failed.

    Attributes:
        attempts: How many attempts were made before giving up.
        reason: Why the attempts kept failing, when known.
    """

    def __init__(self, message: str = "retries exhausted",
                 attempts: int = 0, reason: str = ""):
        super().__init__(message)
        self.attempts = attempts
        self.reason = reason


class RetryBudgetExhausted(RetryExhausted):
    """A shared retry budget ran dry before the per-operation attempt
    cap was reached (load-shedding under a retry storm)."""

    def __init__(self, message: str = "retry budget exhausted",
                 attempts: int = 0):
        super().__init__(message, attempts=attempts, reason="budget")


class CommitInDoubt(FaultToleranceError):
    """A two-phase-commit participant voted yes and lost the coordinator.

    The classic 2PC blocking window (principle 2.5): the participant
    cannot unilaterally commit or abort and is stuck holding locks until
    the coordinator (or an operator) resolves the transaction.

    Attributes:
        tx_id: The in-doubt transaction.
        since: Virtual time the participant entered the window.
    """

    def __init__(self, tx_id: str = "", since: float = 0.0):
        super().__init__(f"transaction {tx_id!r} is in doubt since t={since}")
        self.tx_id = tx_id
        self.since = since


class ProcessError(ReproError):
    """Base class for process-engine failures."""


class SoupsViolation(ProcessError):
    """A process step tried to update more than one entity or run more
    than one transaction, violating the SOUPS principle (paper section 2.6)."""


class QueueError(ReproError):
    """Base class for messaging failures."""


class DuplicateMessage(QueueError):
    """An idempotent receiver rejected a message it has already processed."""


class ReplicationError(ReproError):
    """Base class for replication-scheme failures."""


class QuorumUnavailable(ReplicationError, DeadlineExceeded):
    """A quorum operation could not reach enough replicas before its
    deadline (CAP tradeoff) — both a replication failure and a managed
    timeout, so either ``except`` clause catches it."""

    def __init__(self, message: str = "quorum unavailable",
                 deadline: float = 0.0, now: float = 0.0):
        ReplicationError.__init__(self, message)
        self.deadline = deadline
        self.now = now


class NotMaster(ReplicationError):
    """An update was sent to a replica that does not accept updates."""


class ConsistencyPolicyError(ReproError):
    """No consistency policy matches the requested data class/application."""
