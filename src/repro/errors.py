"""Shared exception hierarchy for the ``repro`` library.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate on the specific condition.

The hierarchy mirrors the paper's distinction between *prevented* failures
(programming errors, unsupported requests — raised eagerly) and *managed*
inconsistency (constraint violations, conflicts — which are ordinarily
recorded and handled, not raised; see :mod:`repro.core.constraints`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """The simulation engine was used incorrectly (e.g. time moved backwards)."""


class NetworkError(SimulationError):
    """A message could not be routed (unknown node, node not registered)."""


class TransactionError(ReproError):
    """Base class for transaction-processing failures."""


class TransactionAborted(TransactionError):
    """The transaction was aborted and its effects rolled back.

    Attributes:
        reason: Human-readable explanation (deadlock victim, validation
            failure, explicit rollback, ...).
    """

    def __init__(self, reason: str = "aborted"):
        super().__init__(reason)
        self.reason = reason


class DeadlockDetected(TransactionAborted):
    """The transaction was chosen as a deadlock victim under 2PL."""

    def __init__(self, reason: str = "deadlock victim"):
        super().__init__(reason)


class ValidationFailed(TransactionAborted):
    """Optimistic concurrency control validation failed at commit."""

    def __init__(self, reason: str = "optimistic validation failed"):
        super().__init__(reason)


class LockUnavailable(TransactionError):
    """A non-blocking lock request could not be granted."""


class EntityError(ReproError):
    """Base class for entity-model failures."""


class UnknownEntityType(EntityError):
    """An entity type name was not registered in the catalog."""


class EntityNotFound(EntityError):
    """No live version of the requested entity exists."""


class SchemaViolation(EntityError):
    """A payload does not match the entity type's declared schema."""


class ProcessError(ReproError):
    """Base class for process-engine failures."""


class SoupsViolation(ProcessError):
    """A process step tried to update more than one entity or run more
    than one transaction, violating the SOUPS principle (paper section 2.6)."""


class QueueError(ReproError):
    """Base class for messaging failures."""


class DuplicateMessage(QueueError):
    """An idempotent receiver rejected a message it has already processed."""


class ReplicationError(ReproError):
    """Base class for replication-scheme failures."""


class QuorumUnavailable(ReplicationError):
    """A quorum operation could not reach enough replicas (CAP tradeoff)."""


class NotMaster(ReplicationError):
    """An update was sent to a replica that does not accept updates."""


class ConsistencyPolicyError(ReproError):
    """No consistency policy matches the requested data class/application."""
