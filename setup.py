"""Setup shim enabling legacy editable installs.

The metadata lives in pyproject.toml; this file exists because the
offline environment lacks the ``wheel`` package required by PEP 660
editable installs, so ``pip install -e .`` falls back to
``setup.py develop`` (which needs this shim).
"""

from setuptools import setup

setup()
