"""Banking ledger: record operations, not consequences.

Reproduces the bank-account example of principles 2.7/2.8 and
section 3.2: every deposit and withdrawal is an insert-only operation
record; the balance is a rollup aggregate; concurrent branch activity
composes via commutative deltas; and compaction bounds storage while
the regulatory audit trail survives in the archive.

Run with::

    python examples/banking_ledger.py
"""

from __future__ import annotations

from repro import LSDBStore, Simulator, TransactionManager
from repro.apps.banking import BankApp


def main() -> None:
    sim = Simulator(seed=1)
    store = LSDBStore(name="bank", clock=lambda: sim.now)
    bank = BankApp(TransactionManager(store, sim=sim))

    bank.open_account("acct-ada", owner="ada")
    print("account opened for ada\n")

    # A month of activity: operations are entered, never overwritten.
    activity = [
        ("deposit", 2500, "salary"),
        ("withdraw", 900, "rent"),
        ("withdraw", 120, "groceries"),
        ("deposit", 80, "refund"),
        ("withdraw", 45, "utilities"),
    ]
    for kind, amount, memo in activity:
        if kind == "deposit":
            bank.deposit("acct-ada", amount, memo=memo)
        else:
            bank.withdraw("acct-ada", amount, memo=memo)

    print("statement (each operation visible and durable, 3.2):")
    for line in bank.statement("acct-ada"):
        sign = "+" if line.kind == "deposit" else "-"
        print(f"   {line.op_id:<18} {sign}{line.amount:<8} {line.memo}")
    print(f"\nbalance (rollup aggregate): {bank.balance('acct-ada')}")
    print(f"audit recomputation from operations: {bank.audit_balance('acct-ada')}")
    assert bank.balance("acct-ada") == bank.audit_balance("acct-ada")

    # Storage management: unlimited growth is a real concern (2.7), so
    # summarize old events and archive the raw regulatory records.
    print(f"\nlive log before compaction: {store.live_events} events")
    report = store.compact(keep_recent=3)
    print(f"compaction summarised {report.events_removed} events into "
          f"{report.summaries_written} summaries "
          f"({report.events_archived} archived)")
    print(f"live log after compaction: {store.live_events} events")
    print(f"balance unchanged: {bank.balance('acct-ada')}")
    regulatory = store.archive.regulatory_events()
    print(f"regulatory records preserved in archive: {len(regulatory)}")
    print("first archived operation:",
          {k: regulatory[0].payload[k] for k in ("kind", "amount", "memo")})


if __name__ == "__main__":
    main()
