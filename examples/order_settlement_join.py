"""Order settlement: process steps scheduled by a *series* of events.

Paper section 3.1: "Scheduling for process steps (which may be based on
a series of events, not just a single event) is handled by system
infrastructure."

An order settles only when *both* the payment confirmation and the
shipping confirmation have arrived — two independent event streams that
interleave arbitrarily (and, on this run's lossy queue, arrive more
than once).  The join step correlates them by order id, fires exactly
once per order inside one SOUPS transaction, and tolerates duplicates
through idempotent receivers.

Run with::

    python examples/order_settlement_join.py
"""

from __future__ import annotations

from repro import (
    Delta,
    JoinContext,
    LSDBStore,
    ProcessEngine,
    ReliableQueue,
    RetryPolicy,
    Simulator,
    TransactionManager,
)

ORDERS = 8


def main() -> None:
    sim = Simulator(seed=31)
    # At-least-once with lost acks: duplicates are guaranteed.
    queue = ReliableQueue(
        sim, ack_loss_probability=0.3, retry=RetryPolicy(max_attempts=30, base_delay=2.0)
    )
    store = LSDBStore(name="settlements", clock=lambda: sim.now)
    engine = ProcessEngine(TransactionManager(store, sim=sim, queue=queue), queue)

    def settle(ctx: JoinContext) -> None:
        payment = ctx.messages["payment.confirmed"].payload
        shipment = ctx.messages["shipment.confirmed"].payload
        ctx.insert(
            "settlement",
            payment["order"],
            {
                "amount": payment["amount"],
                "carrier": shipment["carrier"],
                "settled_at": sim.now,
            },
        )
        ctx.defer(
            "revenue-rollup",
            lambda s, amount=payment["amount"]: s.apply_delta(
                "revenue", "total", Delta.add("amount", amount)
            ),
        )

    engine.register_join(
        "settle-order",
        ["payment.confirmed", "shipment.confirmed"],
        correlate=lambda message: message.payload["order"],
        handler=settle,
    )

    # Payments and shipments arrive interleaved, out of order, at
    # different times — nobody coordinates the two streams.
    rng = sim.fork_rng()
    for index in range(ORDERS):
        order = f"order-{index}"
        sim.schedule_at(
            rng.uniform(0, 40),
            lambda o=order, i=index: engine.start_process(
                "payment.confirmed", {"order": o, "amount": 10 + i}
            ),
        )
        sim.schedule_at(
            rng.uniform(0, 40),
            lambda o=order: engine.start_process(
                "shipment.confirmed", {"order": o, "carrier": "DHL"}
            ),
        )
    sim.run()

    print(f"events delivered: {queue.stats.delivered} "
          f"(redelivered {queue.stats.redelivered} — lossy acks)\n")
    print("settlements (exactly one per order, despite duplicates):")
    settlements = sorted(
        store.entities_of_type("settlement"), key=lambda s: s.entity_key
    )
    for settlement in settlements:
        print(f"   {settlement.entity_key}: amount={settlement.fields['amount']}"
              f" carrier={settlement.fields['carrier']}"
              f" settled_at={settlement.fields['settled_at']:.1f}")
    total = store.get("revenue", "total")
    print(f"\nrevenue rollup (deferred secondary update): {total.fields['amount']}")
    expected = sum(10 + index for index in range(ORDERS))
    assert len(settlements) == ORDERS
    assert total.fields["amount"] == expected
    print(f"checks out: {ORDERS} settlements, revenue {expected} — "
          "series-of-events scheduling with exactly-once effects (3.1/2.4)")


if __name__ == "__main__":
    main()
