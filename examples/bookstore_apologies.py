"""Bookstore overbooking: subjective order entry, eventual apologies.

Reproduces the paper's book-selling narrative (principle 2.9,
section 3.2): two replicas, a network partition, both sides keep
accepting orders against their subjective view of the stock, the
partition heals, replicas converge — and fulfilment discovers the
oversell and issues comprehensible apologies with refunds.

Run with::

    python examples/bookstore_apologies.py
"""

from __future__ import annotations

from repro import CompensationManager, FailureInjector, Network, Simulator
from repro.apps.bookstore import Bookstore, ReplicaSurface
from repro.replication import ActiveActiveGroup

COPIES = 5
ORDERS_PER_REGION = 4


def main() -> None:
    sim = Simulator(seed=2009)
    network = Network(sim, latency=3.0)
    group = ActiveActiveGroup(
        sim, network, ["store-eu", "store-us"], anti_entropy_interval=20.0
    )
    injector = FailureInjector(sim, network)

    # Apologies and fulfilment run against the EU replica's store.
    fulfilment_store = group.replicas["store-eu"].store
    compensation = CompensationManager(fulfilment_store, clock=lambda: sim.now)
    shop = Bookstore(compensation)

    eu = ReplicaSurface(group, "store-eu")
    us = ReplicaSurface(group, "store-us")
    shop.stock_book(eu, "moby-dick", copies=COPIES, price=12.0)
    sim.run(until=10.0)
    print(f"stocked {COPIES} copies of moby-dick; replicas in sync\n")

    # The Atlantic cable fails for a while.
    injector.partition_window(
        [["store-eu"], ["store-us"]], start=10.0, duration=60.0
    )
    sim.run(until=15.0)
    print("partition begins — each region now sells against its own view")

    for index in range(ORDERS_PER_REGION):
        for region, surface in (("eu", eu), ("us", us)):
            outcome = shop.place_order(
                surface,
                order_id=f"{region}-order-{index}",
                customer=f"{region}-customer-{index}",
                book_key="moby-dick",
                at=sim.now + index,
            )
            print(f"   [{region}] order {index}: {outcome}")
    print(f"\norders entered during the partition: {shop.orders_entered}")
    print("(order entry told every customer 'received' — not 'will be")
    print(" fulfilled'; that separation keeps the coming apologies")
    print(" comprehensible, section 3.2)\n")

    sim.run(until=200.0)
    assert group.is_converged()
    stock = group.read("store-eu", "book_stock", "moby-dick")
    print(f"partition healed; converged availability = {stock.fields['available']}")
    print(f"(physical copies: {stock.fields['copies_physical']}) — oversold!\n")

    report = shop.fulfill(fulfilment_store, "moby-dick")
    print(f"fulfilment: {report.fulfilled} shipped, {report.apologized} apologised")
    print(f"apology rate this pass: {report.apology_rate:.0%}\n")

    for apology in compensation.ledger.all():
        print(f"   {apology.apology_id}: dear {apology.to_party}, "
              f"we are sorry ({apology.reason}); {apology.compensation}")

    print("\nthe show went on (principle 2.11): zero orders were refused")
    print("during the partition, and every broken promise was compensated.")


if __name__ == "__main__":
    main()
