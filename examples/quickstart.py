"""Quickstart: a tour of the principled-inconsistency stack.

Runs a miniature order-management scenario that touches each layer the
paper describes: the log-structured store, solipsistic transactions with
deferred secondary updates (the SAP model), managed constraint
violations, and a SOUPS process pipeline.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Cluster, Delta, ProcessEngine, ReferentialConstraint


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. The substrate, declared: a simulator, a queue, a log-structured
    #    store, constraints and transactions — one builder, wired in
    #    dependency order by create().
    # ------------------------------------------------------------------ #
    cluster = (
        Cluster.build(seed=7)
        .with_store(name="orders-unit", origin="u1")
        .with_queue()
        .with_constraints(
            ReferentialConstraint(
                "order-customer", "order", "customer_id", "customer"
            )
        )
        .with_transactions(commit_cost=1.0, defer_lag=2.0)
        .create()
    )
    sim = cluster.sim
    queue = cluster.queue
    store = cluster.store
    constraints = cluster.constraints
    txm = cluster.transactions

    # ------------------------------------------------------------------ #
    # 2. A transaction: primary insert + commutative delta + deferred
    #    secondary update, committed solipsistically.
    # ------------------------------------------------------------------ #
    tx = txm.begin()
    tx.insert("order", "o-100", {"customer_id": "c-9", "total": 0})
    tx.apply_delta("order", "o-100", Delta.add("total", 250))
    tx.defer(
        "update-revenue-aggregate",
        lambda s: s.apply_delta("revenue", "today", Delta.add("amount", 250)),
        cost=5.0,
    )
    tx.enqueue("order.created", {"key": "o-100"})
    receipt = tx.commit()

    print("-- transaction committed --")
    print(f"   committed: {receipt.committed}")
    print(f"   response time: {receipt.response_time} (descriptor commit only)")
    print(f"   staleness window: {receipt.staleness_window} "
          "(aggregate catches up later — principle 2.3)")
    print(f"   managed violations: {[v.message for v in receipt.violations]}")
    print("   (the order references customer c-9, who does not exist yet —")
    print("    entry was not refused; the violation is ledgered, 2.1/2.2)")

    # ------------------------------------------------------------------ #
    # 3. Read-your-writes caveat: immediately after the ack the
    #    aggregate is stale; after the deferred action it is consistent.
    # ------------------------------------------------------------------ #
    sim.run(until=receipt.acked_at)
    print(f"\n-- at ack time ({sim.now}) --")
    print(f"   revenue aggregate: {store.get('revenue', 'today')}")
    sim.run(until=receipt.actions_done_at)
    print(f"-- after deferred actions ({sim.now}) --")
    print(f"   revenue aggregate: {store.get('revenue', 'today').fields}")

    # ------------------------------------------------------------------ #
    # 4. The referent arrives out of order; the violation repairs.
    # ------------------------------------------------------------------ #
    tx = txm.begin()
    tx.insert("customer", "c-9", {"name": "ACME"})
    tx.commit()
    repaired = constraints.attempt_repairs()
    print(f"\n-- customer entered late: {repaired} violation(s) repaired --")
    print(f"   open violations now: {len(constraints.open_violations())}")

    # ------------------------------------------------------------------ #
    # 5. A SOUPS process: one transaction, one entity per step, steps
    #    connected by reliable events.
    # ------------------------------------------------------------------ #
    engine = ProcessEngine(txm, queue)

    @engine.step("invoice", "order.created")
    def invoice(ctx):
        order = ctx.read("order", ctx.message.payload["key"])
        ctx.insert(
            "invoice",
            f"inv-{ctx.message.payload['key']}",
            {"amount": order.fields["total"]},
        )
        ctx.emit("invoice.created", {"key": ctx.message.payload["key"]})

    @engine.step("notify", "invoice.created")
    def notify(ctx):
        ctx.insert(
            "notification",
            f"note-{ctx.message.payload['key']}",
            {"channel": "email"},
        )

    sim.run()
    print("\n-- SOUPS pipeline drained --")
    print(f"   steps committed: {engine.stats.steps_committed}")
    print(f"   invoice: {store.get('invoice', 'inv-o-100').fields}")

    # ------------------------------------------------------------------ #
    # 6. Insert-only storage: the full history of the order is there.
    # ------------------------------------------------------------------ #
    history = store.history("order", "o-100")
    print("\n-- insert-only history of order o-100 (principle 2.7) --")
    for event in history:
        print(f"   lsn={event.lsn:<3} {event.kind.value:<12} {dict(event.payload)}")


if __name__ == "__main__":
    main()
