"""Dynamic schema & application migration with continuous availability.

Reproduces section 3.1's sustainability requirement: "a timelessly
sustainable application environment must provide both dynamic schema
migration and dynamic application migration capabilities, with
continuous availability.  The infrastructure environment must proscribe
admissible changes."

The demo: an order schema evolves from v1 to v2 while v1 data exists
(no rewrite, lazy upcasting), a destructive v3 proposal is refused, and
a new pricing application ramps from 0% to 100% of entities with
deterministic per-entity cutover.

Run with::

    python examples/schema_migration.py
"""

from __future__ import annotations

from repro import EntityCatalog, EntityType, FieldSpec, LSDBStore
from repro.core.migration import ApplicationMigrator, SchemaMigrationManager
from repro.errors import SchemaViolation


def main() -> None:
    # ------------------------------------------------------------------ #
    # v1 in production, with data.
    # ------------------------------------------------------------------ #
    catalog = EntityCatalog()
    catalog.register(EntityType.define(
        "order",
        [FieldSpec("total", "int", required=True), FieldSpec("note", "str")],
    ))
    manager = SchemaMigrationManager(catalog)
    store = LSDBStore(name="orders")
    manager.attach_store(store)  # version-stamped writes + lazy upcasting
    store.insert("order", "o-1", {"total": 100, "note": "rush"})
    store.insert("order", "o-2", {"total": 250})
    print("v1 live with 2 orders:", store.get("order", "o-1").fields)

    # ------------------------------------------------------------------ #
    # Propose v2: widen total to float, add currency — supportable.
    # ------------------------------------------------------------------ #
    v2 = EntityType.define(
        "order",
        [FieldSpec("total", "float", required=True), FieldSpec("note", "str"),
         FieldSpec("currency", "str")],
        schema_version=2,
    )
    plan = manager.propose(v2)
    print("\nv2 changes:", [f"{c.kind.value}({c.field_name})" for c in plan.changes])
    print("admissible:", plan.admissible)
    manager.apply(
        v2,
        upcast=lambda payload: {
            **payload, "currency": payload.get("currency", "EUR"),
        },
    )
    store.rebuild_cache()  # re-fold existing events under the new schema
    print("after migration, v1-era order reads at v2:",
          store.get("order", "o-1").fields)
    raw = store.log.for_entity("order", "o-1")[0]
    print(f"raw log event untouched: schema_version={raw.schema_version}, "
          f"payload={dict(raw.payload)} (insert-only: no rewrite)")

    # New writes carry the new shape directly.
    store.insert("order", "o-3", {"total": 75.5, "currency": "USD"})
    print("new v2 order:", store.get("order", "o-3").fields)

    # ------------------------------------------------------------------ #
    # Propose v3: drop the required total — proscribed.
    # ------------------------------------------------------------------ #
    v3 = EntityType.define(
        "order",
        [FieldSpec("note", "str"), FieldSpec("currency", "str")],
        schema_version=3,
    )
    try:
        manager.apply(v3)
    except SchemaViolation as refusal:
        print(f"\nv3 refused by the infrastructure: {refusal}")
    print("catalog still at version:", catalog.get("order").schema_version)

    # ------------------------------------------------------------------ #
    # Application migration: ramp a new pricing handler 0% -> 100%.
    # ------------------------------------------------------------------ #
    def old_pricing(order_key: str) -> str:
        return f"{order_key}: flat shipping"

    def new_pricing(order_key: str) -> str:
        return f"{order_key}: weight-based shipping"

    migrator = ApplicationMigrator(old_pricing, new_pricing, name="pricing-v2")
    orders = [f"o-{index}" for index in range(1, 9)]
    print("\napplication cutover (per-entity, deterministic, no pause):")
    for fraction in (0.0, 0.25, 0.5, 1.0):
        migrator.set_fraction(fraction)
        served_new = sum(1 for key in orders if migrator.uses_new(key))
        print(f"   fraction={fraction:>4}: {served_new}/8 orders on the new "
              "version")
    status = migrator.status()
    print(f"cutover complete: {status.complete} "
          "(every request was served throughout the ramp)")


if __name__ == "__main__":
    main()
