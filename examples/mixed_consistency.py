"""Mixed consistency from one metadata-driven infrastructure.

Reproduces sections 3.1/3.2: "a system that takes business application
requirements and automatically delivers appropriate consistency levels
based on metadata."  One policy router serves three data classes at
three levels over one master/slave deployment plus a warehouse extract:

* ``book_stock``  — STRONG   (fulfilment must not oversell)
* ``book_order``  — BOUNDED_STALENESS (entry reads may lag the master)
* ``sales_report``— EXTRACT  (analytics run on periodic extracts)

Run with::

    python examples/mixed_consistency.py
"""

from __future__ import annotations

from repro import (
    Cluster,
    ConsistencyLevel,
    ConsistencyPolicy,
    PolicyRouter,
    SchemeBinding,
)
from repro.merge.deltas import Delta


def main() -> None:
    cluster = (
        Cluster.build(seed=5)
        .with_network(latency=2.0)
        .with_replicas(2, mode="master_slave", ship_interval=10.0)
        .with_warehouse(interval=30.0)
        .create()
    )
    sim = cluster.sim
    group = cluster.replication
    warehouse = cluster.warehouse

    router = PolicyRouter()
    policies = [
        ConsistencyPolicy("book_stock", ConsistencyLevel.STRONG,
                          rationale="fulfilment must not oversell"),
        ConsistencyPolicy("book_order", ConsistencyLevel.BOUNDED_STALENESS,
                          rationale="entry reads tolerate shipping lag",
                          max_staleness=10.0),
        ConsistencyPolicy("sales_report", ConsistencyLevel.EXTRACT,
                          rationale="analytics run on periodic extracts"),
    ]
    for policy in policies:
        router.add_policy(policy)

    # The bindings speak the typed read protocol (repro.core.readpath):
    # the router hands each read a ReadRequest built from the policy
    # table, and the scheme answers with a stamped ReadResult — the
    # group routes STRONG to the master and weaker levels to a slave.
    router.bind(ConsistencyLevel.STRONG, SchemeBinding(
        write=lambda etype, key, fields: group.write_insert(etype, key, fields),
        read=lambda etype, key, request: group.read(etype, key, request=request),
        reads_typed=True,
        describe="master reads/writes (unapologetic, 3.1)",
    ))
    router.bind(ConsistencyLevel.BOUNDED_STALENESS, SchemeBinding(
        write=lambda etype, key, fields: group.write_insert(etype, key, fields),
        read=lambda etype, key, request: group.read(etype, key, request=request),
        reads_typed=True,
        describe="master writes, slave reads (may apologise)",
    ))
    router.bind(ConsistencyLevel.EXTRACT, SchemeBinding(
        write=lambda *args: (_ for _ in ()).throw(RuntimeError("read-only")),
        read=lambda etype, key, request: warehouse.read(
            etype, key, request=request
        ),
        reads_typed=True,
        describe="periodic OLTP extract (read-only)",
    ))

    print("consistency metadata (the policy table, 3.2):")
    for policy in router.policies():
        staleness = (
            f", max_staleness={policy.max_staleness}" if policy.max_staleness else ""
        )
        print(f"   {policy.entity_type:<13} -> {policy.level.value:<18} "
              f"({policy.rationale}{staleness})")

    # Writes and reads just name the data class; the router applies the
    # right scheme.
    print("\nwriting stock, an order, and a daily report row...")
    router.write("book_stock", "moby", {"copies": 5})
    router.write("book_order", "o-1", {"customer": "ada", "status": "entered"})
    group.write_insert("sales_report", "today", {"revenue": 60})

    print("\nimmediately after the writes:")
    print(f"   STRONG  stock read : {router.read('book_stock', 'moby').fields}")
    print(f"   BOUNDED order read : {router.read('book_order', 'o-1')} "
          "(slave hasn't received it yet)")
    print(f"   EXTRACT report read: {router.read('sales_report', 'today')} "
          "(no extract taken yet)")

    sim.run(until=15.0)
    print(f"\nafter one shipping interval (t={sim.now:.0f}):")
    print(f"   BOUNDED order read : {router.read('book_order', 'o-1').fields}")
    print(f"   slave lag: {group.slave_lag_events('slave-1')} events")

    sim.run(until=35.0)
    print(f"\nafter the first warehouse extract (t={sim.now:.0f}):")
    print(f"   EXTRACT report read: {router.read('sales_report', 'today').fields}")
    print(f"   extract staleness  : {warehouse.staleness:.0f} time units "
          "(bounded by the interval)")

    print(f"\noperations routed per level: "
          f"{ {level.value: count for level, count in router.routed.items()} }")
    print("one infrastructure, three consistency levels — chosen by")
    print("metadata, not by hand-wired application code (3.1).")


if __name__ == "__main__":
    main()
