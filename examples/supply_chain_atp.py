"""Supply chain Available-To-Purchase choreography with tentative offers.

Reproduces the SCM narrative of principle 2.9: a supplier quotes
tentative offers (reserving stock), purchase requests arriving before
the deadline are honored, deadlines expire reservations — and a
warehouse disaster forces the supplier to renege with apologies,
because reality is realer than the information system (principle 2.1).

Run with::

    python examples/supply_chain_atp.py
"""

from __future__ import annotations

from repro import CompensationManager, LSDBStore, Simulator, TransactionManager
from repro.apps.scm import SupplyChainApp


def show_item(scm: SupplyChainApp, key: str) -> None:
    item = scm.store.require("scm_item", key)
    print(
        f"   {key}: on_hand={item.fields['on_hand']:.0f} "
        f"reserved={item.fields['reserved']:.0f} "
        f"shipped={item.fields['shipped']:.0f} "
        f"lost={item.fields['lost']:.0f} "
        f"(ATP={scm.available_to_purchase(key):.0f})"
    )


def main() -> None:
    sim = Simulator(seed=42)
    store = LSDBStore(name="supplier", clock=lambda: sim.now)
    tx_manager = TransactionManager(store, sim=sim)
    compensation = CompensationManager(store, clock=lambda: sim.now)
    scm = SupplyChainApp(tx_manager, compensation)

    scm.add_item("steel-beams", on_hand=100)
    print("supplier stocks 100 steel beams")
    show_item(scm, "steel-beams")

    # Three purchasers get quotes; quantities are *tentatively* held.
    offer_acme = scm.quote_offer(
        "steel-beams", 40, price=95.0, deadline=50.0, purchaser="acme"
    )
    offer_globex = scm.quote_offer(
        "steel-beams", 30, price=97.5, deadline=30.0, purchaser="globex"
    )
    offer_initech = scm.quote_offer(
        "steel-beams", 20, price=99.0, deadline=80.0, purchaser="initech"
    )
    print("\nthree offers quoted (tentative updates of quantity, 2.9):")
    show_item(scm, "steel-beams")

    # ACME purchases in time: honored.
    sim.run(until=10.0)
    outcome = scm.purchase(offer_acme.op_id)
    print(f"\n[t={sim.now:.0f}] acme purchases: honored={outcome.honored}")
    show_item(scm, "steel-beams")

    # Globex misses its deadline: the reservation is released.
    sim.run(until=35.0)
    expired = scm.expire_offers()
    print(f"\n[t={sim.now:.0f}] deadlines pass: {expired} offer(s) expired")
    show_item(scm, "steel-beams")
    late = scm.purchase(offer_globex.op_id)
    print(f"   globex arrives late: honored={late.honored} ({late.reason})")

    # Disaster strikes before Initech's purchase.
    sim.run(until=40.0)
    reneged = scm.warehouse_disaster("steel-beams")
    print(f"\n[t={sim.now:.0f}] WAREHOUSE FIRE — {len(reneged)} open offer(s) reneged")
    show_item(scm, "steel-beams")
    attempt = scm.purchase(offer_initech.op_id)
    print(f"   initech tries to purchase anyway: honored={attempt.honored} "
          f"({attempt.reason})")

    print("\napology ledger (apology-oriented computing, 2.9):")
    for apology in compensation.ledger.all():
        print(f"   to {apology.to_party}: {apology.reason} — {apology.compensation}")

    print("\ntentative operations remain visible and durable (3.2):")
    for state in store.entities_of_type("tentative_op", live_only=False):
        marker = "obsolete" if state.obsolete else "current"
        print(f"   {state.entity_key}: status={state.fields['status']} [{marker}]")


if __name__ == "__main__":
    main()
