"""E10 — Master/slave mixed consistency: staleness buys apologies.

Paper claim (section 3.1): "a master-slave approach where the master
copy handles all updates unapologetically but slaves may have to
apologize and compensate might address needs for variegated consistency
requirements."

Scenario: a bookstore where order entry checks availability against a
**slave** (cheap, scalable reads) while all updates flow through the
master.  The slave lags by the shipping interval, so entry decisions
use stale stock and can over-accept; fulfilment at the master then
apologises.  The baseline reads availability at the master itself
(strong): zero apologies, but every read pays the master.

We sweep the shipping interval (the staleness bound) and report the
apology count, confirming it grows with staleness and vanishes at the
master.
"""

from __future__ import annotations

from repro.apps.bookstore import ENTERED, Bookstore, MasterReadSlaveSurface
from repro.bench.report import ExperimentReport
from repro.core.compensation import CompensationManager
from repro.obs.metrics import MetricsRegistry
from repro.replication import MasterSlaveGroup
from repro.replication.batching import BatchPolicy
from repro.sim.network import Network
from repro.sim.scheduler import Simulator

COPIES = 20
ORDERS = 40
ORDER_INTERVAL = 1.0


class _MasterSurface:
    """Strong baseline: read and write at the master."""

    def __init__(self, group: MasterSlaveGroup):
        self.group = group

    def read(self, entity_type, entity_key):
        return self.group.read(self.group.master.node_id, entity_type, entity_key)

    def insert(self, entity_type, entity_key, fields):
        self.group.write_insert(entity_type, entity_key, fields)

    def apply_delta(self, entity_type, entity_key, delta):
        self.group.write_delta(entity_type, entity_key, delta)

    def set_fields(self, entity_type, entity_key, fields):
        self.group.write_insert(entity_type, entity_key, fields)


def run_deployment(ship_interval: float, read_at_master: bool, seed: int = 0) -> dict:
    metrics = MetricsRegistry()
    sim = Simulator(seed=seed, metrics=metrics)
    net = Network(sim, latency=1.0)
    group = MasterSlaveGroup(
        sim, net, "master", ["slave"], ship_interval=ship_interval,
        batching=BatchPolicy(),
    )
    compensation = CompensationManager(group.master.store, clock=lambda: sim.now)
    shop = Bookstore(compensation)
    surface = (
        _MasterSurface(group)
        if read_at_master
        else MasterReadSlaveSurface(group, "slave")
    )
    shop.stock_book(_MasterSurface(group), "title", copies=COPIES)
    sim.run(until=ship_interval * 2 + 5.0)  # let the stock row replicate

    accepted = {"n": 0}
    for index in range(ORDERS):
        at = sim.now + ORDER_INTERVAL * index

        def place(bound_index=index):
            if shop.place_order(
                surface, f"o{bound_index}", f"cust{bound_index}", "title",
                at=sim.now,
            ) == ENTERED:
                accepted["n"] += 1

        sim.schedule_at(at, place)
    sim.run(until=sim.now + ORDERS * ORDER_INTERVAL + ship_interval * 3 + 50.0)
    report = shop.fulfill(group.master.store, "title")
    # Apology counts come from the metrics registry (the ledger reports
    # ``apologies.issued`` through the master store's registry); the
    # fulfilment report is the cross-check.
    apologized = metrics.sum_values("apologies.issued")
    assert apologized == report.apologized
    return {
        "accepted": float(accepted["n"]),
        "fulfilled": float(report.fulfilled),
        "apologized": float(apologized),
        "max_slave_lag": ship_interval,
    }


def sweep() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E10",
        title="Master/slave mixed consistency: apologies vs staleness",
        claim=(
            "the master updates unapologetically; decisions made against "
            "stale slave reads over-accept and the overflow becomes "
            "apologies, growing with the replication lag (3.1)"
        ),
        headers=[
            "ship_interval",
            "read_at",
            "accepted",
            "fulfilled",
            "apologized",
        ],
        notes=(
            "demand (40) is twice supply (20); master reads reject the "
            "overflow at entry, slave reads accept on stale stock until "
            "the decrements replicate"
        ),
    )
    master = run_deployment(5.0, read_at_master=True)
    report.add_row(5.0, "master", master["accepted"], master["fulfilled"],
                   master["apologized"])
    for interval in (2.0, 5.0, 10.0, 20.0, 40.0):
        slave = run_deployment(interval, read_at_master=False)
        report.add_row(interval, "slave", slave["accepted"], slave["fulfilled"],
                       slave["apologized"])
    return report


def test_e10_mixed_consistency(benchmark):
    stale = benchmark(run_deployment, 20.0, False)
    fresh = run_deployment(20.0, True)
    # Master-read entry never over-accepts, so fulfilment never apologises.
    assert fresh["apologized"] == 0
    assert fresh["accepted"] == COPIES
    # Slave-read entry over-accepts on stale data and pays apologies.
    assert stale["accepted"] > COPIES
    assert stale["apologized"] == stale["accepted"] - COPIES
    # Less lag, fewer apologies.
    assert run_deployment(2.0, False)["apologized"] <= stale["apologized"]


if __name__ == "__main__":
    sweep().print()
