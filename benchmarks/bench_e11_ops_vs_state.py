"""E11 — Recording operations vs recording consequences.

Paper claim (principle 2.8): "Data written in transactions should
describe what the transactions do, not just transaction consequences.
[...] entering a banking withdrawal means entering the withdrawal, not
just the remaining balance" — because operations compose under
concurrency while overwritten consequences lose updates.

Scenario: ``clients`` clients each apply ``OPS_PER_CLIENT`` unit
deposits to one shared account, interleaved (every client reads the
balance, computes, and writes back after a fixed delay — the classic
read-modify-write race).

* **state-recording**: the transaction writes the new balance
  (``SET_FIELDS``); interleaved writers overwrite each other.
* **operation-recording**: the transaction writes ``Delta.add`` events;
  the rollup composes them.

Metric: the final balance versus the true total, i.e. lost updates.
"""

from __future__ import annotations

from repro.bench.report import ExperimentReport
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta
from repro.sim.scheduler import Simulator

OPS_PER_CLIENT = 25
READ_TO_WRITE_DELAY = 3.0
OP_INTERVAL = 1.0


def run_recording(clients: int, use_deltas: bool, seed: int = 0) -> dict[str, float]:
    sim = Simulator(seed=seed)
    store = LSDBStore(clock=lambda: sim.now)
    store.insert("account", "shared", {"balance": 0})

    def one_op(client: int, remaining: int) -> None:
        # Closed loop per client: read, think, write back, then start the
        # next operation.  A single client is therefore race-free; the
        # races come from *other* clients interleaving (the concurrency
        # the recording style must survive).
        observed = store.get("account", "shared").get("balance", 0)

        def write_back() -> None:
            if use_deltas:
                store.apply_delta("account", "shared", Delta.add("balance", 1))
            else:
                store.set_fields("account", "shared", {"balance": observed + 1})
            if remaining > 1:
                sim.schedule(
                    OP_INTERVAL, lambda: one_op(client, remaining - 1)
                )

        sim.schedule(READ_TO_WRITE_DELAY, write_back)

    for client in range(clients):
        # Staggered starts keep clients' read/write phases interleaved.
        sim.schedule_at(
            client * 0.7, lambda c=client: one_op(c, OPS_PER_CLIENT)
        )
    sim.run()
    expected = clients * OPS_PER_CLIENT
    final = store.get("account", "shared").get("balance", 0)
    return {
        "expected": float(expected),
        "final_balance": float(final),
        "lost_updates": float(expected - final),
        "lost_fraction": (expected - final) / expected,
    }


def sweep() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E11",
        title="Operation recording vs consequence recording",
        claim=(
            "recording the operation (a delta) composes under concurrency "
            "with zero lost updates; recording only the consequence (the "
            "new balance) loses every concurrently overwritten update "
            "(2.8)"
        ),
        headers=[
            "clients",
            "expected_total",
            "delta_final",
            "delta_lost",
            "state_final",
            "state_lost",
            "state_lost_fraction",
        ],
        notes=(
            "the loss fraction grows with concurrency; deltas are exact at "
            "every level — this is why the conflict resolver prefers the "
            "COMMUTATIVE strategy whenever the domain allows it"
        ),
    )
    for clients in (1, 2, 4, 8, 16):
        deltas = run_recording(clients, use_deltas=True)
        state = run_recording(clients, use_deltas=False)
        report.add_row(
            clients,
            deltas["expected"],
            deltas["final_balance"],
            deltas["lost_updates"],
            state["final_balance"],
            state["lost_updates"],
            state["lost_fraction"],
        )
    return report


def test_e11_ops_vs_state(benchmark):
    deltas = benchmark(run_recording, 8, True)
    state = run_recording(8, False)
    # Operation recording is exact.
    assert deltas["lost_updates"] == 0
    # Consequence recording loses updates under concurrency...
    assert state["lost_updates"] > 0
    # ...and a single writer is safe either way.
    assert run_recording(1, False)["lost_updates"] == 0
    # More concurrency, more loss.
    assert (
        run_recording(16, False)["lost_fraction"] >= state["lost_fraction"]
    )


if __name__ == "__main__":
    sweep().print()
