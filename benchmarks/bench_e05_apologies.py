"""E5 — Apology rate vs consistency level (bookstore overbooking).

Paper claim (principle 2.9, section 3.2): subjective order acceptance
across replicas can over-promise ("there were only 5 copies of the book
available, and more than 5 were sold"), requiring apologies after
replicas share information; apologies "can also be avoided by providing
stronger consistency guarantees (trading off other aspects of CAP)" —
at the price of refusing demand and/or entry latency.

Scenario: a title with ``COPIES`` physical copies; demand of
``ratio * COPIES`` orders arrives split across two replicas *while they
are partitioned*.  We compare:

* **subjective** — both replicas accept against local views; after the
  heal, fulfilment apologises to the overflow;
* **strong** — all orders serialize on one authoritative store; excess
  demand is rejected at entry (never promised, never apologised).
"""

from __future__ import annotations

from repro.apps.bookstore import ENTERED, Bookstore, ReplicaSurface
from repro.bench.report import ExperimentReport
from repro.core.compensation import CompensationManager
from repro.lsdb.store import LSDBStore
from repro.obs.metrics import MetricsRegistry
from repro.replication import ActiveActiveGroup
from repro.sim.network import Network
from repro.sim.scheduler import Simulator

COPIES = 10


def run_subjective(ratio: float, seed: int = 0) -> dict[str, float]:
    metrics = MetricsRegistry()
    sim = Simulator(seed=seed, metrics=metrics)
    net = Network(sim, latency=2.0)
    group = ActiveActiveGroup(sim, net, ["r1", "r2"], anti_entropy_interval=10.0)
    store = group.replicas["r1"].store
    shop = Bookstore(CompensationManager(store, clock=lambda: sim.now))
    shop.stock_book(ReplicaSurface(group, "r1"), "title", copies=COPIES)
    sim.run(until=10.0)
    net.partition_into({"r1"}, {"r2"})
    demand = int(round(ratio * COPIES))
    surfaces = [ReplicaSurface(group, "r1"), ReplicaSurface(group, "r2")]
    accepted = 0
    for index in range(demand):
        surface = surfaces[index % 2]
        if shop.place_order(
            surface, f"o{index}", f"cust{index}", "title", at=sim.now + index
        ) == ENTERED:
            accepted += 1
    net.heal()
    sim.run(until=300.0)
    report = shop.fulfill(store, "title")
    # The apology count is read from the metrics registry (the ledger
    # increments ``apologies.issued`` per reason), not scraped from the
    # fulfilment report — the report is cross-checked instead.
    apologized = int(metrics.sum_values("apologies.issued"))
    assert apologized == report.apologized
    return {
        "demand": demand,
        "accepted": accepted,
        "fulfilled": report.fulfilled,
        "apologized": apologized,
        "apology_rate": apologized / accepted if accepted else 0.0,
        "rejected": shop.orders_rejected,
    }


def run_strong(ratio: float, seed: int = 0) -> dict[str, float]:
    metrics = MetricsRegistry()
    store = LSDBStore(metrics=metrics)
    shop = Bookstore(CompensationManager(store))
    from repro.apps.bookstore import StoreSurface

    shop.stock_book(StoreSurface(store), "title", copies=COPIES)
    demand = int(round(ratio * COPIES))
    accepted = 0
    for index in range(demand):
        if shop.place_order_strong(
            store, f"o{index}", f"cust{index}", "title", at=float(index)
        ) == ENTERED:
            accepted += 1
    report = shop.fulfill(store, "title")
    apologized = int(metrics.sum_values("apologies.issued"))
    assert apologized == report.apologized
    return {
        "demand": demand,
        "accepted": accepted,
        "fulfilled": accepted + report.fulfilled,
        "apologized": apologized,
        "apology_rate": 0.0 if accepted == 0 else apologized / accepted,
        "rejected": shop.orders_rejected,
    }


def sweep() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E5",
        title="Apology rate vs consistency level (overbooking)",
        claim=(
            "subjective entry accepts all demand during a partition and "
            "apologises for the overflow after convergence; strong entry "
            "never apologises but rejects the same overflow up front "
            "(2.9, 3.2)"
        ),
        headers=[
            "demand/supply",
            "subj_accepted",
            "subj_apologized",
            "subj_apology_rate",
            "strong_accepted",
            "strong_rejected",
            "strong_apologies",
        ],
        notes=(
            "the overflow (demand - supply) surfaces as apologies in the "
            "subjective scheme and as rejections in the strong scheme — "
            "the same business shortfall, different user experience"
        ),
    )
    for ratio in (0.5, 1.0, 1.5, 2.0, 3.0):
        subjective = run_subjective(ratio)
        strong = run_strong(ratio)
        report.add_row(
            ratio,
            subjective["accepted"],
            subjective["apologized"],
            subjective["apology_rate"],
            strong["accepted"],
            strong["rejected"],
            strong["apologized"],
        )
    return report


def test_e05_apologies(benchmark):
    oversold = benchmark(run_subjective, 2.0)
    strong = run_strong(2.0)
    # Subjective: everything accepted, overflow apologised.
    assert oversold["accepted"] == 2 * COPIES
    assert oversold["apologized"] == COPIES
    # Strong: overflow rejected, zero apologies.
    assert strong["accepted"] == COPIES
    assert strong["apologized"] == 0
    assert strong["rejected"] == COPIES
    # Under-demand needs no apologies anywhere.
    assert run_subjective(0.5)["apologized"] == 0


if __name__ == "__main__":
    sweep().print()
