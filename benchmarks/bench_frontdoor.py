"""Front-door overload benchmark: degrade, don't die.

PR 7's tentpole is the admission-controlled front door: a valve chain
(deadline -> quota -> backpressure -> degrade ladder) that sheds
overload by *downgrading consistency* before it ever rejects.  This
module measures that claim with an open-loop read load swept across
multiples of the strong rung's modelled capacity:

* the **frontier** — per multiplier: goodput ratio (served / offered,
  degraded serves count — they carry an honest stamp and an apology),
  hard-reject ratio, the delivered-level mix, and the staleness
  distribution (p50/p95/max) of what was actually served;
* the **strict baseline** — the same load with ``allow_degraded=False``
  (a client demanding exactly STRONG): goodput collapses toward
  ``1 / multiplier`` past saturation, which is precisely what the
  ladder exists to avoid;
* **determinism** — two same-seed runs of the 2x point must produce
  byte-identical frontiers (the door is pure virtual-time machinery).

``benchmarks/perf_gate.py`` validates the committed artefact
``BENCH_frontdoor.json`` (ISSUE 7 acceptance: at 2x overload, goodput
>= 90% of offered and hard rejects <= 5%).

Usage::

    python benchmarks/bench_frontdoor.py                  # full run
    python benchmarks/bench_frontdoor.py --quick          # CI smoke
    python benchmarks/bench_frontdoor.py --check-determinism
    python benchmarks/bench_frontdoor.py --trajectory-out BENCH_frontdoor.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.report import ExperimentReport  # noqa: E402
from repro.cluster import Cluster  # noqa: E402
from repro.core.readpath import ReadRequest  # noqa: E402

#: The strong rung's modelled capacity (reads per unit of virtual
#: time); the bounded rung gets the same budget, the eventual rung is
#: deliberately unmetered — a checkpoint snapshot never says no.
CAPACITY = 10.0
SHIP_INTERVAL = 10.0
#: Read phase: [WARMUP, WARMUP + DURATION).  The warmup lets the first
#: writes replicate so the bounded rung has a copy to serve.
WARMUP = 50.0
DURATION = 200.0
MULTIPLIERS = (0.5, 1.0, 1.5, 2.0, 3.0)
#: The acceptance point and its ISSUE 7 bounds.
ACCEPTANCE_MULTIPLIER = 2.0
MIN_GOODPUT_RATIO = 0.90
MAX_REJECT_RATIO = 0.05


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (0.0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


def run_point(
    multiplier: float,
    seed: int = 0,
    duration: float = DURATION,
    allow_degraded: bool = True,
) -> dict[str, Any]:
    """One open-loop run at ``multiplier`` times the strong capacity.

    A steady writer inserts one row per time unit; readers arrive at a
    fixed interarrival of ``1 / (multiplier * CAPACITY)`` asking for
    STRONG reads of rows old enough to have replicated.  Returns the
    frontier row: offered / served / degraded / rejected counts, the
    delivered-level mix, and the staleness distribution.
    """
    cluster = (
        Cluster.build(seed=seed)
        .with_tracing()
        .with_network(latency=2.0)
        .with_replicas(2, mode="master_slave", ship_interval=SHIP_INTERVAL)
        .with_front_door(
            strong_capacity=CAPACITY,
            bounded_capacity=CAPACITY,
        )
        .create()
    )
    sim = cluster.sim
    group = cluster.replication

    total_time = WARMUP + duration + 1.0
    for index in range(int(total_time)):
        sim.schedule_at(
            float(index),
            lambda i=index: group.write_insert("order", f"o-{i}", {"n": i}),
            label="write",
        )

    rate = multiplier * CAPACITY
    interarrival = 1.0 / rate
    arrivals = int(duration * rate)
    outcomes: list[dict[str, Any]] = []

    def read(at: float) -> None:
        # Read a row written ~3 shipping intervals ago: old enough that
        # a healthy slave has it, so misses measure the door, not the
        # replication pipeline.
        key = f"o-{max(0, int(at - 3.0 * SHIP_INTERVAL))}"
        result = cluster.read(
            "order",
            key,
            request=ReadRequest(allow_degraded=allow_degraded),
        )
        outcomes.append(
            {
                "delivered": (
                    result.delivered_level.value
                    if result.delivered_level is not None
                    else None
                ),
                "staleness": result.staleness,
                "degraded": result.degraded,
                "rejected": result.rejected,
                "reason": result.reject_reason,
            }
        )

    for index in range(arrivals):
        at = WARMUP + interarrival * index
        sim.schedule_at(at, lambda t=at: read(t), label="read")
    sim.run(until=total_time + 3.0 * SHIP_INTERVAL)

    served = [o for o in outcomes if not o["rejected"]]
    degraded = [o for o in served if o["degraded"]]
    rejected = [o for o in outcomes if o["rejected"]]
    mix: dict[str, int] = {}
    for outcome in served:
        mix[outcome["delivered"]] = mix.get(outcome["delivered"], 0) + 1
    staleness = [
        o["staleness"] for o in served if o["staleness"] is not None
    ]
    offered = len(outcomes)
    door = cluster.front_door
    return {
        "multiplier": multiplier,
        "offered": offered,
        "served": len(served),
        "degraded": len(degraded),
        "rejected": len(rejected),
        "goodput_ratio": round(len(served) / offered, 4) if offered else 0.0,
        "reject_ratio": round(len(rejected) / offered, 4) if offered else 0.0,
        "level_mix": {level: count for level, count in sorted(mix.items())},
        "staleness_p50": round(percentile(staleness, 0.50), 3),
        "staleness_p95": round(percentile(staleness, 0.95), 3),
        "staleness_max": round(max(staleness), 3) if staleness else 0.0,
        "door_reads": door.reads,
        "door_rejects": door.rejects,
        "door_degraded": door.degraded_serves,
    }


def collect(quick: bool = False) -> dict[str, Any]:
    """Run the sweep (degrading door + strict baseline per multiplier)."""
    duration = 50.0 if quick else DURATION
    multipliers = (1.0, 2.0) if quick else MULTIPLIERS
    frontier = []
    for multiplier in multipliers:
        row = run_point(multiplier, duration=duration)
        strict = run_point(multiplier, duration=duration, allow_degraded=False)
        row["strict_goodput_ratio"] = strict["goodput_ratio"]
        row["strict_reject_ratio"] = strict["reject_ratio"]
        frontier.append(row)
    return {
        "benchmark": "bench_frontdoor",
        "config": {
            "strong_capacity": CAPACITY,
            "bounded_capacity": CAPACITY,
            "ship_interval": SHIP_INTERVAL,
            "duration": duration,
            "quick": quick,
        },
        "frontier": frontier,
    }


def trajectory(metrics: dict[str, Any]) -> dict[str, Any]:
    """The committed artefact (``BENCH_frontdoor.json``) with the
    acceptance block ``perf_gate.py`` reads."""
    rows = metrics["frontier"]
    at_2x = next(
        (r for r in rows if r["multiplier"] == ACCEPTANCE_MULTIPLIER),
        rows[-1],
    )
    return {
        "benchmark": "bench_frontdoor",
        "description": (
            "Open-loop overload frontier of the admission-controlled "
            "front door. goodput_ratio is served/offered (degraded "
            "serves count; each carries a delivered-level stamp, its "
            "measured staleness, and an apology token), reject_ratio "
            "is hard rejects/offered. strict_goodput_ratio is the same "
            "load with allow_degraded=False - the counterfactual the "
            "degrade ladder exists to avoid. Capacities are reads per "
            "unit of virtual time on the strong and bounded rungs; the "
            "eventual rung (checkpoint snapshot) is unmetered."
        ),
        "config": metrics["config"],
        "frontier": rows,
        "acceptance": {
            "multiplier": at_2x["multiplier"],
            "goodput_ratio": at_2x["goodput_ratio"],
            "reject_ratio": at_2x["reject_ratio"],
            "strict_goodput_ratio": at_2x["strict_goodput_ratio"],
            "min_goodput_ratio": MIN_GOODPUT_RATIO,
            "max_reject_ratio": MAX_REJECT_RATIO,
            "pass": (
                at_2x["goodput_ratio"] >= MIN_GOODPUT_RATIO
                and at_2x["reject_ratio"] <= MAX_REJECT_RATIO
            ),
        },
    }


def check_determinism() -> bool:
    """Two same-seed runs of the 2x point must be byte-identical."""
    first = json.dumps(run_point(2.0, seed=7, duration=50.0), sort_keys=True)
    second = json.dumps(run_point(2.0, seed=7, duration=50.0), sort_keys=True)
    ok = first == second
    print(f"determinism: {'PASS' if ok else 'FAIL'}")
    if not ok:
        print(f"  run 1: {first}")
        print(f"  run 2: {second}")
    return ok


def sweep() -> ExperimentReport:
    """The ``run_all.py`` entry point."""
    metrics = collect(quick=True)
    report = ExperimentReport(
        experiment_id="FD",
        title="Front door: overload sheds down the ladder, not out the door",
        claim=(
            "under overload the front door downgrades consistency "
            "(stamped, apologised) instead of rejecting: goodput stays "
            "near 100% of offered load while a strict client's "
            "collapses toward capacity/offered (2.3/2.9)"
        ),
        headers=[
            "multiplier",
            "goodput",
            "rejects",
            "degraded",
            "strict_goodput",
            "staleness_p95",
        ],
        notes=(
            "the level mix walks down the ladder as load rises - the "
            "strong rung saturates first, then the bounded rung, and "
            "the checkpoint rung absorbs the rest at measured staleness"
        ),
    )
    for row in metrics["frontier"]:
        report.add_row(
            row["multiplier"],
            row["goodput_ratio"],
            row["reject_ratio"],
            row["degraded"],
            row["strict_goodput_ratio"],
            row["staleness_p95"],
        )
    return report


def test_overload_sheds_down_the_ladder(benchmark):
    overloaded = benchmark(run_point, 2.0, 0, 50.0)
    # At 2x the strong rung's capacity the door still serves everything:
    # the overflow degrades (stamped + apologised) instead of rejecting.
    assert overloaded["goodput_ratio"] >= MIN_GOODPUT_RATIO
    assert overloaded["reject_ratio"] <= MAX_REJECT_RATIO
    assert overloaded["degraded"] > 0
    # The same load with degradation forbidden collapses toward 1/2.
    strict = run_point(2.0, duration=50.0, allow_degraded=False)
    assert strict["goodput_ratio"] < 0.7
    # Under capacity nothing degrades at all.
    calm = run_point(0.5, duration=50.0)
    assert calm["degraded"] == 0 and calm["goodput_ratio"] == 1.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small CI sizes")
    parser.add_argument("--check-determinism", action="store_true",
                        help="run the 2x point twice and compare signatures")
    parser.add_argument("--json-out", type=str, default="", metavar="PATH",
                        help="write raw metrics as JSON to PATH")
    parser.add_argument("--trajectory-out", type=str, default="", metavar="PATH",
                        help="write the frontier artefact "
                             "(BENCH_frontdoor.json) to PATH")
    parser.add_argument("--label", type=str, default="run",
                        help="label stored in the JSON meta block")
    args = parser.parse_args()

    if args.check_determinism and not check_determinism():
        raise SystemExit(1)

    metrics = collect(quick=args.quick)
    payload = {
        "meta": {
            "label": args.label,
            "quick": args.quick,
            "python": sys.version.split()[0],
        },
        "metrics": metrics,
    }
    if args.json_out:
        pathlib.Path(args.json_out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.trajectory_out:
        pathlib.Path(args.trajectory_out).write_text(
            json.dumps(trajectory(metrics), indent=2) + "\n", encoding="utf-8"
        )
    for row in metrics["frontier"]:
        print(
            f"x{row['multiplier']:<4g} offered {row['offered']:>5d}  "
            f"goodput {row['goodput_ratio']:6.2%}  "
            f"rejects {row['reject_ratio']:6.2%}  "
            f"degraded {row['degraded']:>5d}  "
            f"strict {row['strict_goodput_ratio']:6.2%}  "
            f"mix {row['level_mix']}  "
            f"staleness p95 {row['staleness_p95']:g}"
        )


if __name__ == "__main__":
    main()
