"""Data-plane benchmarks: frame shipping, checkpoints, O(delta) recovery.

PR 5's tentpole is a batched data plane: replication ships LSN-contiguous
*frames* instead of one wire message per event, rollup checkpoints make
recovery O(delta since checkpoint) instead of O(log), and ``__slots__``
shrinks the per-event footprint of the insert-only log.  This module
measures all three claims:

* **ship throughput** — events/sec through a primary->backup ship+apply
  cycle at frame sizes 1 (unbatched), 64 and 1024, with a metrics
  registry attached (the production setting: per-message metric work
  amortises under batching);
* **wire messages** — frames on the wire for the same event volume;
* **replication lag** — mean backlog under an open-loop write load,
  batched vs unbatched (batching must not trade lag for throughput);
* **cold recovery** — ``store.recover()`` from the latest rollup
  checkpoint vs a full log replay, at two log lengths: checkpointed
  recovery time must be independent of log length;
* **event footprint** — bytes/event of the slotted :class:`LogEvent`
  vs an identical ``__dict__``-based record, plus append throughput.

``benchmarks/perf_gate.py`` validates the committed trajectory file
``BENCH_dataplane.json`` (>=5x ship throughput at frame 64, >=10x fewer
wire messages, recovery independent of log length).

Usage::

    python benchmarks/bench_dataplane.py                  # full run
    python benchmarks/bench_dataplane.py --quick          # CI smoke
    python benchmarks/bench_dataplane.py --check-determinism
    python benchmarks/bench_dataplane.py --json-out out.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
import tracemalloc
from typing import Any, Callable, Optional

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.report import ExperimentReport  # noqa: E402
from repro.lsdb.checkpoint import CheckpointPolicy  # noqa: E402
from repro.lsdb.events import EventKind, LogEvent  # noqa: E402
from repro.lsdb.store import LSDBStore  # noqa: E402
from repro.merge.deltas import Delta  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.replication.asynchronous import AsyncPrimaryBackup  # noqa: E402
from repro.replication.batching import BatchPolicy  # noqa: E402
from repro.replication.replica import ReplicaNode  # noqa: E402
from repro.sim.network import Network  # noqa: E402
from repro.sim.rng import SeededRNG  # noqa: E402
from repro.sim.scheduler import Simulator  # noqa: E402

ENTITIES = 50
FIELDS_PER_ENTITY = 10

#: Frame sizes the ship benchmark sweeps (None = unbatched, one event
#: per frame — the pre-PR wire behaviour).
FRAME_SIZES: tuple[Optional[int], ...] = (None, 64, 1024)


def best_of(repeats: int, fn: Callable[[], Any]) -> float:
    """Smallest wall-clock seconds over ``repeats`` runs of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def populate(store: LSDBStore, deltas: int, seed: int = 0) -> int:
    """Insert ``ENTITIES`` wide entities then ``deltas`` delta events;
    returns the total event count."""
    rng = SeededRNG(seed)
    for index in range(ENTITIES):
        store.insert(
            "acct", f"a{index}", {f"f{f}": 0 for f in range(FIELDS_PER_ENTITY)}
        )
    for _ in range(deltas):
        key = f"a{rng.randint(0, ENTITIES - 1)}"
        field = f"f{rng.randint(0, FIELDS_PER_ENTITY - 1)}"
        store.apply_delta("acct", key, Delta.add(field, rng.randint(-5, 5)))
    return ENTITIES + deltas


# --------------------------------------------------------------------- #
# Ship throughput and wire-message volume
# --------------------------------------------------------------------- #


def _ship_once(max_batch: Optional[int], deltas: int) -> tuple[float, int]:
    """One primary->backup backlog ship; returns (seconds, wire messages).

    The backlog is pre-populated so the window times exactly the data
    plane: chunking, frame transit, and remote apply — not the primary's
    local writes.  A metrics registry is attached (the realistic case:
    per-frame metric increments amortise under batching).
    """
    sim = Simulator(seed=7, metrics=MetricsRegistry())
    network = Network(sim, latency=1.0)
    policy = BatchPolicy(max_batch=max_batch)
    primary = network.register(ReplicaNode("primary", sim, batching=policy))
    backup = network.register(ReplicaNode("backup", sim, batching=policy))
    total = populate(primary.store, deltas)
    backlog = primary.store.events_since(0)
    start = time.perf_counter()
    primary.ship_events(backup.node_id, backlog)
    sim.run()
    elapsed = time.perf_counter() - start
    if backup.events_received != total:
        raise AssertionError(
            f"backup applied {backup.events_received} of {total} events"
        )
    return elapsed, network.stats.sent


def bench_ship(deltas: int) -> dict[str, Any]:
    """Ship+apply throughput and wire volume per frame size."""
    total = ENTITIES + deltas
    out: dict[str, Any] = {"events": total}
    for max_batch in FRAME_SIZES:
        label = "1" if max_batch is None else str(max_batch)
        runs = [_ship_once(max_batch, deltas) for _ in range(3)]
        out[f"ship_throughput_eps_batch_{label}"] = total / min(
            seconds for seconds, _ in runs
        )
        # Wire volume is deterministic: every run sends the same frames.
        out[f"wire_messages_batch_{label}"] = runs[0][1]
    return out


# --------------------------------------------------------------------- #
# Replication lag under open-loop load
# --------------------------------------------------------------------- #


def bench_lag(duration: float) -> dict[str, float]:
    """Mean replication backlog (events) under a fixed open-loop write
    rate, unbatched vs frame-64.  Virtual-time metric: deterministic,
    and batching must not inflate it."""
    out: dict[str, float] = {}
    for max_batch in (None, 64):
        sim = Simulator(seed=11)
        network = Network(sim, latency=2.0)
        pair = AsyncPrimaryBackup(
            sim,
            network,
            ship_interval=5.0,
            batching=BatchPolicy(max_batch=max_batch),
        )
        writes = int(duration * 2)  # one write every 0.5 time units
        for index in range(writes):
            sim.schedule_at(
                0.5 * index,
                lambda i=index: pair.write_delta(
                    "acct", f"a{i % ENTITIES}", Delta.add("f0", 1)
                ),
                label="lag-write",
            )
        samples: list[int] = []
        tick = 5.0
        at = tick
        while at <= duration:
            sim.schedule_at(
                at,
                lambda: samples.append(pair.replication_lag_events),
                label="lag-sample",
            )
            at += tick
        sim.run(until=duration + 50.0)
        label = "1" if max_batch is None else str(max_batch)
        out[f"mean_lag_events_batch_{label}"] = sum(samples) / len(samples)
    return out


# --------------------------------------------------------------------- #
# Cold recovery: checkpoint + delta vs full replay
# --------------------------------------------------------------------- #


def bench_recovery(lengths: tuple[int, ...]) -> dict[str, float]:
    """``store.recover()`` wall-clock at several log lengths.

    With a checkpoint cadence of 1000 events the replayed delta is
    bounded by the cadence regardless of log length, so the checkpointed
    recovery time must *not* scale with the log — that independence is
    the O(delta) claim, and the full-replay numbers alongside show what
    it replaced."""
    out: dict[str, float] = {}
    for length in lengths:
        store = LSDBStore()
        manager = store.enable_checkpoints(CheckpointPolicy(every_events=1000))
        populate(store, length)
        full_seconds = best_of(3, lambda: store.rebuild_cache(full=True))
        ckpt_seconds = best_of(3, lambda: store.recover())
        out[f"full_replay_ms_{length}"] = full_seconds * 1000.0
        out[f"checkpoint_recovery_ms_{length}"] = ckpt_seconds * 1000.0
        out[f"delta_events_{length}"] = float(manager.delta_events)
    return out


# --------------------------------------------------------------------- #
# Event footprint: __slots__ vs __dict__
# --------------------------------------------------------------------- #


class _DictEvent:
    """The pre-slots LogEvent shape: same 13 fields, per-instance
    ``__dict__`` — the in-bench baseline the memory delta is against."""

    def __init__(self, lsn, timestamp, entity_type, entity_key, kind, payload,
                 origin, origin_seq, tx_id, schema_version, tags, trace_id,
                 span_id):
        self.lsn = lsn
        self.timestamp = timestamp
        self.entity_type = entity_type
        self.entity_key = entity_key
        self.kind = kind
        self.payload = payload
        self.origin = origin
        self.origin_seq = origin_seq
        self.tx_id = tx_id
        self.schema_version = schema_version
        self.tags = tags
        self.trace_id = trace_id
        self.span_id = span_id


#: Shared across instances so the footprint measured is the *record*
#: (slots vs __dict__), not payload dicts and key strings.
_PAYLOAD: dict = {"f0": 1}
_KEYS = tuple(f"a{index}" for index in range(ENTITIES))
_TAGS: frozenset = frozenset()


def _event_args(index: int) -> tuple:
    return (index, float(index), "acct", _KEYS[index % ENTITIES],
            EventKind.DELTA, _PAYLOAD, "local", index + 1, "", 1,
            _TAGS, "", "")


def bench_slots(count: int) -> dict[str, float]:
    """Bytes/event and construction throughput, slotted vs dict-based."""

    def measure_bytes(factory: Callable[[int], Any]) -> float:
        tracemalloc.start()
        items = [factory(index) for index in range(count)]
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del items
        return peak / count

    slotted = lambda i: LogEvent(*_event_args(i))  # noqa: E731
    dict_based = lambda i: _DictEvent(*_event_args(i))  # noqa: E731
    out = {
        "event_bytes_slots": measure_bytes(slotted),
        "event_bytes_dict": measure_bytes(dict_based),
    }
    # Both construction rates divide the same ``count`` so the
    # before/after trajectory entries share a denominator.
    out["event_create_eps"] = count / best_of(
        3, lambda: [LogEvent(*_event_args(i)) for i in range(count)]
    )
    out["event_create_eps_dict"] = count / best_of(
        3, lambda: [_DictEvent(*_event_args(i)) for i in range(count)]
    )
    sample = LogEvent(*_event_args(0))
    out["event_with_lsn_eps"] = count / best_of(
        3, lambda: [sample.with_lsn(i) for i in range(count)]
    )
    return out


# --------------------------------------------------------------------- #
# Determinism check (frame-granular chaos must stay reproducible)
# --------------------------------------------------------------------- #


def determinism_signature(seed: int = 23) -> dict[str, Any]:
    """One small lossy batched replication run, reduced to a signature.

    Loss and duplication draw one coin per *frame*; the signature pins
    the whole observable outcome (virtual clock, wire stats, applied
    watermarks) so two runs of the same seed must match byte-for-byte.
    """
    sim = Simulator(seed=seed)
    network = Network(
        sim, latency=2.0, loss_probability=0.05, duplication_probability=0.02
    )
    pair = AsyncPrimaryBackup(
        sim,
        network,
        ship_interval=5.0,
        batching=BatchPolicy(max_batch=64, flush_interval=2.0),
    )
    for index in range(400):
        sim.schedule_at(
            0.5 * index,
            lambda i=index: pair.write_delta(
                "acct", f"a{i % ENTITIES}", Delta.add("f0", 1)
            ),
            label="det-write",
        )
    sim.run(until=400.0)
    stats = network.stats
    return {
        "now": sim.now,
        "sent": stats.sent,
        "frames": stats.frames,
        "frame_payloads": stats.frame_payloads,
        "delivered": stats.delivered,
        "dropped_loss": stats.dropped_loss,
        "duplicated": stats.duplicated,
        "primary_head": pair.primary.store.log.head_lsn,
        "backup_vv": pair.backup.store.version_vector.to_dict(),
        "lag": pair.replication_lag_events,
    }


def check_determinism() -> bool:
    """Two seeded runs must produce byte-identical signatures."""
    first = json.dumps(determinism_signature(), sort_keys=True)
    second = json.dumps(determinism_signature(), sort_keys=True)
    ok = first == second
    print(f"determinism: {'PASS' if ok else 'FAIL'}")
    if not ok:
        print(f"  run 1: {first}")
        print(f"  run 2: {second}")
    return ok


# --------------------------------------------------------------------- #
# Harness
# --------------------------------------------------------------------- #


def collect(quick: bool = False) -> dict[str, Any]:
    """Run every data-plane benchmark and return the metric map."""
    ship_deltas = 5_000 if quick else 50_000
    lag_duration = 100.0 if quick else 400.0
    recovery_lengths = (2_000, 10_000) if quick else (10_000, 100_000)
    slots_count = 20_000 if quick else 200_000

    metrics: dict[str, Any] = {}
    metrics.update(bench_ship(ship_deltas))
    metrics.update(bench_lag(lag_duration))
    metrics.update(bench_recovery(recovery_lengths))
    metrics.update(bench_slots(slots_count))

    unbatched = metrics["ship_throughput_eps_batch_1"]
    metrics["ship_speedup_batch_64"] = (
        metrics["ship_throughput_eps_batch_64"] / unbatched
    )
    metrics["ship_speedup_batch_1024"] = (
        metrics["ship_throughput_eps_batch_1024"] / unbatched
    )
    metrics["wire_message_reduction_batch_64"] = (
        metrics["wire_messages_batch_1"] / metrics["wire_messages_batch_64"]
    )
    short, long = recovery_lengths
    metrics["recovery_independence_ratio"] = (
        metrics[f"checkpoint_recovery_ms_{long}"]
        / metrics[f"checkpoint_recovery_ms_{short}"]
    )
    metrics["full_replay_ratio"] = (
        metrics[f"full_replay_ms_{long}"] / metrics[f"full_replay_ms_{short}"]
    )
    metrics["event_bytes_saved_ratio"] = (
        metrics["event_bytes_dict"] / metrics["event_bytes_slots"]
    )
    metrics["_sizes"] = {
        "ship_events": ENTITIES + ship_deltas,
        "lag_duration": lag_duration,
        "recovery_lengths": list(recovery_lengths),
        "slots_count": slots_count,
    }
    return metrics


def sweep(quick: bool = False) -> ExperimentReport:
    """Report view, consistent with the E-suite artefacts."""
    metrics = collect(quick=quick)
    report = ExperimentReport(
        experiment_id="DP",
        title="batched data plane: frame shipping, checkpoints, recovery",
        claim=(
            "shipping LSN-contiguous frames amortises per-message costs "
            "(>=5x throughput, >=10x fewer wire messages at frame 64) and "
            "rollup checkpoints make cold recovery O(delta), independent "
            "of log length"
        ),
        headers=["metric", "value"],
        notes=(
            "events/sec for throughputs, milliseconds for recovery, "
            "bytes/event for footprints; *_batch_N keys name frame size"
        ),
    )
    for key in (
        "ship_throughput_eps_batch_1",
        "ship_throughput_eps_batch_64",
        "ship_throughput_eps_batch_1024",
        "ship_speedup_batch_64",
        "wire_messages_batch_1",
        "wire_messages_batch_64",
        "wire_message_reduction_batch_64",
        "mean_lag_events_batch_1",
        "mean_lag_events_batch_64",
        "recovery_independence_ratio",
        "full_replay_ratio",
        "event_bytes_slots",
        "event_bytes_dict",
    ):
        report.add_row(key, metrics[key])
    return report


def test_recovery_is_delta_bound(benchmark):
    """Checkpointed recovery replays the delta, not the log (perf smoke)."""
    store = LSDBStore()
    manager = store.enable_checkpoints(CheckpointPolicy(every_events=500))
    populate(store, 4_000)
    report = benchmark(lambda: store.recover())
    assert report.used_checkpoint
    assert report.events_replayed <= 500
    assert manager.latest() is not None


def trajectory(metrics: dict[str, Any]) -> dict[str, Any]:
    """The before/after/speedup artefact ``perf_gate.py`` validates.

    *Before* is the unbatched / full-replay / ``__dict__`` data plane;
    *after* is frame-64 shipping, checkpointed recovery and the slotted
    event record.
    """
    short, long = metrics["_sizes"]["recovery_lengths"]
    return {
        "benchmark": "bench_dataplane",
        "description": (
            "Data-plane measurements before/after PR 5 (frame shipping, "
            "rollup checkpoints, slotted events). Throughputs are "
            "events/sec (higher is better); *_ms are milliseconds and "
            "event_bytes are bytes/event (lower is better). "
            "recovery_independence_ratio is checkpointed recovery time "
            "at the long log over the short log - near 1.0 means "
            "recovery cost is O(delta), independent of log length. "
            "event_create_eps compares construction rates at the same "
            "event count (context, not a gate): the slotted record "
            "constructs slower than the __dict__ baseline - it trades "
            "construction speed for footprint, and the columnar arena "
            "(BENCH_columnar.json) is what wins creation throughput."
        ),
        "sizes": dict(metrics["_sizes"]),
        "before": {
            "ship_throughput_eps": metrics["ship_throughput_eps_batch_1"],
            "wire_messages": metrics["wire_messages_batch_1"],
            "mean_lag_events": metrics["mean_lag_events_batch_1"],
            f"recovery_ms_{short}": metrics[f"full_replay_ms_{short}"],
            f"recovery_ms_{long}": metrics[f"full_replay_ms_{long}"],
            "recovery_length_ratio": metrics["full_replay_ratio"],
            "event_bytes": metrics["event_bytes_dict"],
            "event_create_eps": metrics["event_create_eps_dict"],
        },
        "after": {
            "ship_throughput_eps": metrics["ship_throughput_eps_batch_64"],
            "ship_throughput_eps_batch_1024":
                metrics["ship_throughput_eps_batch_1024"],
            "wire_messages": metrics["wire_messages_batch_64"],
            "mean_lag_events": metrics["mean_lag_events_batch_64"],
            f"recovery_ms_{short}": metrics[f"checkpoint_recovery_ms_{short}"],
            f"recovery_ms_{long}": metrics[f"checkpoint_recovery_ms_{long}"],
            "recovery_length_ratio": metrics["recovery_independence_ratio"],
            "event_bytes": metrics["event_bytes_slots"],
            "event_create_eps": metrics["event_create_eps"],
            "event_with_lsn_eps": metrics["event_with_lsn_eps"],
        },
        "speedup": {
            "ship_throughput_eps": round(metrics["ship_speedup_batch_64"], 2),
            "wire_message_reduction": round(
                metrics["wire_message_reduction_batch_64"], 2
            ),
            "recovery_independence_ratio": round(
                metrics["recovery_independence_ratio"], 3
            ),
            "recovery_vs_full_replay": round(
                metrics[f"full_replay_ms_{long}"]
                / metrics[f"checkpoint_recovery_ms_{long}"],
                2,
            ),
            "event_bytes": round(metrics["event_bytes_saved_ratio"], 3),
            "event_create_eps": round(
                metrics["event_create_eps"] / metrics["event_create_eps_dict"], 3
            ),
        },
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small CI sizes")
    parser.add_argument("--check-determinism", action="store_true",
                        help="run the lossy batched scenario twice and "
                             "compare signatures")
    parser.add_argument("--json-out", type=str, default="", metavar="PATH",
                        help="write raw metrics as JSON to PATH")
    parser.add_argument("--trajectory-out", type=str, default="", metavar="PATH",
                        help="write the before/after/speedup artefact "
                             "(BENCH_dataplane.json) to PATH")
    parser.add_argument("--label", type=str, default="run",
                        help="label stored in the JSON meta block")
    args = parser.parse_args()

    if args.check_determinism and not check_determinism():
        raise SystemExit(1)

    metrics = collect(quick=args.quick)
    payload = {
        "meta": {
            "label": args.label,
            "quick": args.quick,
            "python": sys.version.split()[0],
        },
        "metrics": metrics,
    }
    if args.json_out:
        pathlib.Path(args.json_out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    if args.trajectory_out:
        pathlib.Path(args.trajectory_out).write_text(
            json.dumps(trajectory(metrics), indent=2) + "\n", encoding="utf-8"
        )
    for key, value in sorted(metrics.items()):
        if key.startswith("_"):
            continue
        print(f"{key:36s} {value}")


if __name__ == "__main__":
    main()
