"""Geo benchmark: what partial replication buys at WAN prices.

PR 8's tentpole puts named sites, per-link WAN profiles and a
shard-to-site placement policy behind the cluster builder.  This module
measures the three claims that justify the machinery:

* **WAN bytes, partial vs full** — the same seeded write workload runs
  against placements with 1, 2 and 3 replicas per shard on a 3-site
  topology; partial replication (replicas=2) must put at most 0.6x the
  WAN payloads of full replication (replicas=3) on the inter-site
  links, with the 1-replica run as the "1/3-hosted" floor.
* **cross-DC read latency** — typed bounded-staleness reads issued from
  every site: the placement-aware read path serves site-locally when
  the site hosts the shard, so the latency distribution splits into a
  zero-WAN local mode and a one-link remote mode instead of paying the
  WAN on every read.
* **site-failover availability** — a scripted whole-site outage (the
  busiest site, no random chaos) while probes read from every site;
  with replicas=2 every shard keeps a live copy, so availability
  through the outage must stay at 1.0.

``benchmarks/perf_gate.py --max-wan-ratio/--min-failover-availability``
validates the committed artefact ``BENCH_geo.json``.

Usage::

    python benchmarks/bench_geo.py                  # full run
    python benchmarks/bench_geo.py --quick          # CI smoke
    python benchmarks/bench_geo.py --check-determinism
    python benchmarks/bench_geo.py --trajectory-out BENCH_geo.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.report import ExperimentReport  # noqa: E402
from repro.cluster import Cluster  # noqa: E402
from repro.core.consistency import ConsistencyLevel  # noqa: E402
from repro.core.readpath import ConsistencyUnavailable, ReadRequest  # noqa: E402

SITES = ("dc1", "dc2", "dc3")
SHARDS = 12
WAN_LATENCY = 30.0
WAN_LOSS = 0.0  # benches are loss-free; the chaos soak owns the lossy case
LAN_LATENCY = 2.0
SHIP_INTERVAL = 10.0
DURATION = 600.0
DRAIN = 300.0
KEYS = 48
#: ISSUE 8 acceptance bounds.
MAX_WAN_RATIO = 0.6
MIN_FAILOVER_AVAILABILITY = 1.0


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (0.0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


def build_cluster(replicas: int, seed: int = 0, site: str | None = None):
    """A 3-site geo cluster with ``replicas`` copies per shard."""
    builder = (
        Cluster.build(seed=seed)
        .with_tracing()
        .with_network(latency=LAN_LATENCY)
        .with_topology(SITES, wan_latency=WAN_LATENCY, wan_loss=WAN_LOSS)
        .with_placement(
            replicas=replicas, shards=SHARDS, ship_interval=SHIP_INTERVAL
        )
    )
    if site is not None:
        builder = builder.with_front_door(site=site)
    return builder.create()


def run_workload(
    replicas: int, seed: int = 0, duration: float = DURATION
) -> dict[str, Any]:
    """One seeded write workload; returns the WAN wire bill.

    Writes land on each key's coordinator in round-robin key order (the
    identical schedule for every placement width), the run drains until
    the ship loops and anti-entropy settle, and the per-link counters
    say what replication itself cost over the WAN.
    """
    cluster = build_cluster(replicas, seed=seed)
    sim, group = cluster.sim, cluster.replication
    keys = [f"k{index}" for index in range(KEYS)]
    writes = int(duration)  # one write per virtual time unit
    for index in range(writes):
        sim.schedule_at(
            float(index),
            lambda i=index: group.write_set_fields(
                "order", keys[i % len(keys)], {"n": i}
            ),
            label="geo-write",
        )
    sim.run(until=duration + DRAIN)
    rounds = 0
    while not group.is_converged() and rounds < 20:
        sim.run(until=sim.now + 5 * SHIP_INTERVAL)
        rounds += 1
    stats = cluster.network.stats
    return {
        "replicas": replicas,
        "writes": writes,
        "converged": group.is_converged(),
        "wan_frames": stats.wan_frames,
        "wan_payloads": stats.wan_payloads,
        "links": {
            link: row["payloads"] for link, row in stats.links_to_dict().items()
        },
        "spread": cluster.placement.spread(),
    }


def run_read_latency(seed: int = 0) -> dict[str, Any]:
    """Cross-DC bounded-staleness read latency on the replicas=2 cluster.

    After the workload converges, every site issues a typed
    BOUNDED_STALENESS read for every key; the cost charged per read is
    the WAN latency between the client's site and the site that served
    (zero when the placement let the read stay home).
    """
    cluster = build_cluster(2, seed=seed)
    sim, group = cluster.sim, cluster.replication
    keys = [f"k{index}" for index in range(KEYS)]
    for index, key in enumerate(keys):
        sim.schedule_at(
            float(index),
            lambda k=key, i=index: group.write_set_fields("order", k, {"n": i}),
            label="geo-write",
        )
    sim.run(until=float(KEYS) + DRAIN)
    latencies: list[float] = []
    local = 0
    request = ReadRequest(
        level=ConsistencyLevel.BOUNDED_STALENESS, max_staleness=10 * SHIP_INTERVAL
    )
    for site in SITES:
        for key in keys:
            result = group.read("order", key, request=request, site=site)
            cost = cluster.topology.latency_between(site, result.site)
            latencies.append(cost)
            if cost == 0.0:
                local += 1
    total = len(latencies)
    return {
        "reads": total,
        "site_local_fraction": round(local / total, 4),
        "latency_p50": percentile(latencies, 0.50),
        "latency_p95": percentile(latencies, 0.95),
        "latency_mean": round(sum(latencies) / total, 3),
        "latency_max": max(latencies),
    }


def run_failover(
    seed: int = 0, duration: float = DURATION
) -> dict[str, Any]:
    """Scripted whole-site outage: availability of typed reads from
    every site while the busiest datacenter is down (no random chaos —
    this is the controlled single-failure scenario the placement's
    ``replicas=2`` promise is about)."""
    cluster = build_cluster(2, seed=seed)
    sim, group = cluster.sim, cluster.replication
    placement = cluster.placement
    keys = [f"k{index}" for index in range(KEYS)]
    for index in range(int(duration)):
        sim.schedule_at(
            float(index),
            lambda i=index: group.write_set_fields(
                "order", keys[i % len(keys)], {"n": i}
            ),
            label="geo-write",
        )
    spread = placement.spread()
    busiest = min(SITES, key=lambda site: (-spread[site], site))
    outage_at, outage_until = 0.3 * duration, 0.7 * duration
    gateway = group.gateways[busiest]
    sim.schedule_at(outage_at, gateway.crash, label="geo-outage")
    sim.schedule_at(outage_until, gateway.recover, label="geo-outage-end")

    counts = {"attempted": 0, "served": 0, "window_attempted": 0, "window_served": 0}

    def probe() -> None:
        in_window = outage_at <= sim.now < outage_until
        for site in SITES:
            for key in keys[:6]:
                counts["attempted"] += 1
                if in_window:
                    counts["window_attempted"] += 1
                try:
                    group.read(
                        "order",
                        key,
                        request=ReadRequest.eventual(),
                        site=site,
                    )
                except ConsistencyUnavailable:
                    continue
                counts["served"] += 1
                if in_window:
                    counts["window_served"] += 1

    at = 10.0
    while at < duration:
        sim.schedule_at(at, probe, label="geo-probe")
        at += 10.0
    sim.run(until=duration + DRAIN)
    rounds = 0
    while not group.is_converged() and rounds < 20:
        sim.run(until=sim.now + 5 * SHIP_INTERVAL)
        rounds += 1
    availability = (
        counts["window_served"] / counts["window_attempted"]
        if counts["window_attempted"]
        else 1.0
    )
    return {
        "outage_site": busiest,
        "outage_at": outage_at,
        "outage_until": outage_until,
        "failover_availability": round(availability, 4),
        "overall_availability": round(counts["served"] / counts["attempted"], 4),
        "converged_after_recovery": group.is_converged(),
        **counts,
    }


def collect(quick: bool = False) -> dict[str, Any]:
    """Run all three measurements."""
    duration = 150.0 if quick else DURATION
    wire = {
        f"replicas_{replicas}": run_workload(replicas, duration=duration)
        for replicas in (1, 2, 3)
    }
    partial = wire["replicas_2"]["wan_payloads"]
    full = wire["replicas_3"]["wan_payloads"]
    return {
        "benchmark": "bench_geo",
        "config": {
            "duration": duration,
            "keys": KEYS,
            "lan_latency": LAN_LATENCY,
            "quick": quick,
            "shards": SHARDS,
            "ship_interval": SHIP_INTERVAL,
            "sites": list(SITES),
            "wan_latency": WAN_LATENCY,
        },
        "wire": wire,
        "wan_ratio": round(partial / full, 4) if full else 0.0,
        "read_latency": run_read_latency(),
        "failover": run_failover(duration=duration),
    }


def trajectory(metrics: dict[str, Any]) -> dict[str, Any]:
    """The committed artefact (``BENCH_geo.json``) with the acceptance
    block ``perf_gate.py check_geo`` reads."""
    failover = metrics["failover"]
    return {
        "benchmark": "bench_geo",
        "description": (
            "Geo-distributed partial replication on a 3-site topology "
            "(30.0 one-way WAN latency per link). wan_ratio is WAN "
            "payloads shipped by the replicas=2 placement divided by "
            "full replication (replicas=3) under the identical seeded "
            "write workload; replicas=1 is the no-cross-site floor. "
            "read_latency charges each typed BOUNDED_STALENESS read the "
            "WAN latency between the reading site and the serving site "
            "(site-local reads are free). failover_availability is the "
            "fraction of typed reads served from all three sites while "
            "the busiest site is crashed outright."
        ),
        "config": metrics["config"],
        "wire": metrics["wire"],
        "read_latency": metrics["read_latency"],
        "failover": failover,
        "acceptance": {
            "wan_ratio": metrics["wan_ratio"],
            "max_wan_ratio": MAX_WAN_RATIO,
            "failover_availability": failover["failover_availability"],
            "min_failover_availability": MIN_FAILOVER_AVAILABILITY,
            "converged_after_recovery": failover["converged_after_recovery"],
            "pass": (
                metrics["wan_ratio"] <= MAX_WAN_RATIO
                and failover["failover_availability"]
                >= MIN_FAILOVER_AVAILABILITY
                and failover["converged_after_recovery"]
            ),
        },
    }


def check_determinism() -> bool:
    """Two same-seed failover runs must be byte-identical."""
    first = json.dumps(run_failover(seed=7, duration=150.0), sort_keys=True)
    second = json.dumps(run_failover(seed=7, duration=150.0), sort_keys=True)
    ok = first == second
    print(f"determinism: {'PASS' if ok else 'FAIL'}")
    if not ok:
        print(f"  run 1: {first}")
        print(f"  run 2: {second}")
    return ok


def sweep() -> ExperimentReport:
    """The ``run_all.py`` entry point."""
    metrics = collect(quick=True)
    report = ExperimentReport(
        experiment_id="GEO",
        title="Geo placement: partial replication at WAN prices",
        claim=(
            "placing 2 of 3 sites per shard ships about half the WAN "
            "payloads of full replication while a whole-site outage "
            "leaves every shard readable (2.7-2.10)"
        ),
        headers=["replicas", "wan_payloads", "wan_frames", "converged"],
        notes=(
            f"wan_ratio {metrics['wan_ratio']} (gate <= {MAX_WAN_RATIO}); "
            f"failover availability "
            f"{metrics['failover']['failover_availability']}; "
            f"site-local read fraction "
            f"{metrics['read_latency']['site_local_fraction']}"
        ),
    )
    for replicas in (1, 2, 3):
        row = metrics["wire"][f"replicas_{replicas}"]
        report.add_row(
            replicas, row["wan_payloads"], row["wan_frames"], row["converged"]
        )
    return report


def test_partial_replication_halves_wan_bill(benchmark):
    partial = benchmark(run_workload, 2, 0, 150.0)
    full = run_workload(3, duration=150.0)
    assert partial["converged"] and full["converged"]
    # 2-of-3 placement must ship well under full replication's WAN bill.
    assert partial["wan_payloads"] <= MAX_WAN_RATIO * full["wan_payloads"]
    failover = run_failover(duration=150.0)
    assert failover["failover_availability"] >= MIN_FAILOVER_AVAILABILITY
    assert failover["converged_after_recovery"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small CI sizes")
    parser.add_argument("--check-determinism", action="store_true",
                        help="run the failover scenario twice and compare")
    parser.add_argument("--json-out", type=str, default="", metavar="PATH",
                        help="write raw metrics as JSON to PATH")
    parser.add_argument("--trajectory-out", type=str, default="", metavar="PATH",
                        help="write the artefact (BENCH_geo.json) to PATH")
    parser.add_argument("--label", type=str, default="run",
                        help="label stored in the JSON meta block")
    args = parser.parse_args()

    if args.check_determinism and not check_determinism():
        raise SystemExit(1)

    metrics = collect(quick=args.quick)
    payload = {
        "meta": {
            "label": args.label,
            "quick": args.quick,
            "python": sys.version.split()[0],
        },
        "metrics": metrics,
    }
    if args.json_out:
        pathlib.Path(args.json_out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.trajectory_out:
        pathlib.Path(args.trajectory_out).write_text(
            json.dumps(trajectory(metrics), indent=2) + "\n", encoding="utf-8"
        )
    for replicas in (1, 2, 3):
        row = metrics["wire"][f"replicas_{replicas}"]
        print(
            f"replicas={replicas}  wan_payloads {row['wan_payloads']:>7d}  "
            f"wan_frames {row['wan_frames']:>6d}  converged {row['converged']}"
        )
    print(f"wan_ratio (2-of-3 vs full): {metrics['wan_ratio']}")
    latency = metrics["read_latency"]
    print(
        f"bounded reads: site-local {latency['site_local_fraction']:.1%}  "
        f"latency p50 {latency['latency_p50']:g}  "
        f"p95 {latency['latency_p95']:g}  mean {latency['latency_mean']:g}"
    )
    failover = metrics["failover"]
    print(
        f"failover ({failover['outage_site']} down): availability "
        f"{failover['failover_availability']:.2%} in window, "
        f"{failover['overall_availability']:.2%} overall, "
        f"converged after recovery: {failover['converged_after_recovery']}"
    )


if __name__ == "__main__":
    main()
