"""E8 — Insert-only growth vs summarization & archival.

Paper claim (principle 2.7): insert-only storage preserves history and
enables eventual consistency, but "unlimited data growth may be an
issue, so the DMS should provide data summarization and archival
functionality, while still addressing regulatory requirements."

Scenario: a long inventory movement stream (``MOVEMENTS`` receipts and
issues over ``ITEMS`` items) runs against compaction policies from
"never compact" to aggressive periodic summarization.  We report the
live log length, the archive size, and verify two invariants after
every policy: the observable stock levels are unchanged, and every
regulatory movement record is still reachable (live or archived).
"""

from __future__ import annotations

from repro.apps.inventory import InventoryApp
from repro.bench.report import ExperimentReport
from repro.core.constraints import ConstraintManager
from repro.core.transaction import TransactionManager
from repro.lsdb.store import LSDBStore
from repro.sim.rng import SeededRNG

ITEMS = 10
MOVEMENTS = 2_000


def run_policy(compact_every: int, keep_recent: int, seed: int = 0) -> dict[str, float]:
    store = LSDBStore()
    constraints = ConstraintManager(store)
    inventory = InventoryApp(TransactionManager(store, constraints=constraints))
    rng = SeededRNG(seed)
    for index in range(ITEMS):
        inventory.add_item(f"item{index}", f"part-{index}", on_hand=100)
    peak_live = store.live_events
    for count in range(MOVEMENTS):
        item = f"item{rng.randint(0, ITEMS - 1)}"
        quantity = rng.randint(1, 5)
        if rng.coin(0.5):
            inventory.receive(item, quantity)
        else:
            inventory.issue(item, quantity)
        if compact_every and (count + 1) % compact_every == 0:
            store.compact(keep_recent=keep_recent)
        peak_live = max(peak_live, store.live_events)
    # Invariants: state preserved, regulatory trail reachable.
    for index in range(ITEMS):
        item = f"item{index}"
        expected = inventory.audit_on_hand(item, initial=100)
        assert inventory.on_hand(item) == expected
    regulatory_total = len(store.archive.regulatory_events()) + sum(
        1 for event in store.log.events() if "regulatory" in event.tags
    )
    return {
        "live_events": float(store.live_events),
        "peak_live_events": float(peak_live),
        "archived_events": float(len(store.archive)),
        "regulatory_reachable": float(regulatory_total),
    }


def sweep() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E8",
        title="Insert-only growth vs summarization policies",
        claim=(
            "without compaction the live log grows without bound; periodic "
            "summarization bounds it near the retention window while the "
            "archive keeps the regulatory trail intact (2.7)"
        ),
        headers=[
            "policy",
            "live_events",
            "peak_live",
            "archived",
            "regulatory_reachable",
        ],
        notes=(
            "every policy preserves observable stock levels exactly; "
            "movement entities are summarised in the live log but their "
            "raw regulatory records survive in the archive"
        ),
    )
    policies = [
        ("never compact", 0, 0),
        ("every 1000, keep 200", 1000, 200),
        ("every 500, keep 100", 500, 100),
        ("every 100, keep 20", 100, 20),
    ]
    for label, every, keep in policies:
        metrics = run_policy(every, keep)
        report.add_row(
            label,
            metrics["live_events"],
            metrics["peak_live_events"],
            metrics["archived_events"],
            metrics["regulatory_reachable"],
        )
    return report


def test_e08_insert_only_growth(benchmark):
    aggressive = benchmark(run_policy, 500, 100)
    unbounded = run_policy(0, 0)
    # Unbounded: two events per movement (record + delta) plus setup.
    assert unbounded["live_events"] >= 2 * MOVEMENTS
    # Compaction collapses each entity's run to one summary; the floor
    # is one live event per movement *entity* (insert-only identity),
    # i.e. roughly half the unbounded log here.
    assert aggressive["live_events"] < 0.6 * unbounded["live_events"]
    assert aggressive["peak_live_events"] < unbounded["peak_live_events"]
    # ...while archiving what it removed.
    assert aggressive["archived_events"] > 0
    # The regulatory record count matches the movement count under
    # every policy (one tagged record per movement).
    assert aggressive["regulatory_reachable"] == MOVEMENTS
    assert unbounded["regulatory_reachable"] == MOVEMENTS


if __name__ == "__main__":
    sweep().print()
