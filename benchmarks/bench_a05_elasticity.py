"""A5 — Elastic scale-out churn, throughput, and availability.

Design choice under test (principle 2.5): "Entity location is
determined dynamically."  Elasticity is that principle under membership
change: a cluster that doubles from 4 to 8 serialization units should
relocate only the keys that *must* move (consistent hashing's
``~1/(N+1)`` per added unit), keep serving reads and writes while the
handoff runs, and end with a compacted directory that routes purely by
ring position.

The scenario is the shared harness in ``repro.partition.elasticity``:
a staged 4 -> 8 scale-out under an open-loop write workload (optionally
with a chaos fault profile), reported as deterministic JSON.  This
driver layers on the benchmark-facing views:

* **churn** — keys moved by the ring vs the staged mod-N reshuffle the
  old ``HashRouter`` would have forced (the ablation baseline);
* **throughput** — relocations completed per unit of virtual time
  spent inside rebalance windows;
* **availability** — fraction of reads/writes that succeeded while a
  rebalance was in flight.

Run ``python benchmarks/bench_a05_elasticity.py --json-out FILE`` for
the machine-readable report; ``--quick`` is the CI smoke profile;
``--check-determinism`` runs the scenario twice and fails unless the
two reports are byte-identical.  Exit status is non-zero whenever an
invariant (no lost acknowledged writes, convergence, monotonic reads)
fails or the churn bound (<= 60% of mod-N) is violated.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.report import ExperimentReport
from repro.partition.elasticity import (
    ElasticityConfig,
    elasticity_report_json,
    run_elastic_scaleout,
)

#: Full benchmark scenario: 4 -> 8 under moderate chaos.
FULL = ElasticityConfig(seed=42, profile="moderate")

#: CI smoke scenario: smaller key population, no fault injection.
QUICK = ElasticityConfig(seed=3, keys=48, duration=300.0, quiesce_grace=100.0)


def make_config(args: argparse.Namespace) -> ElasticityConfig:
    base = QUICK if args.quick else FULL
    profile = base.profile if args.profile == "default" else (
        None if args.profile == "none" else args.profile
    )
    return ElasticityConfig(
        seed=base.seed if args.seed is None else args.seed,
        keys=base.keys,
        duration=base.duration,
        quiesce_grace=base.quiesce_grace,
        profile=profile,
    )


def headline(report: dict) -> dict[str, float]:
    """The benchmark-facing scalars, pulled out of the full report."""
    elasticity = report["elasticity"]
    availability = report["availability"]
    return {
        "keys_moved_fraction": round(
            elasticity["ring_keys_moved"] / max(1, report["config"]["keys"]), 4
        ),
        "churn_vs_modn": elasticity["churn_ratio"],
        "relocation_throughput": elasticity["relocation_throughput"],
        "read_availability": availability["reads_during_rebalance"],
        "write_availability": availability["writes_during_rebalance"],
        "overrides_final": float(elasticity["overrides_final"]),
    }


def sweep(config: ElasticityConfig = QUICK) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="A5",
        title="Elastic scale-out: ring churn vs mod-N reshuffle",
        claim=(
            "a staged 4->8 scale-out over the consistent-hash ring moves "
            "a small fraction of the keys a mod-N router would reshuffle, "
            "while reads and writes keep flowing (2.5)"
        ),
        headers=[
            "metric", "ring", "modn_baseline", "ratio",
        ],
        notes=(
            f"{config.keys} keys, seed {config.seed}, "
            f"profile {config.profile or 'none'}; staged "
            f"{config.start_units}->{config.end_units} scale-out under an "
            "open-loop write workload on the deterministic simulator"
        ),
    )
    result = run_elastic_scaleout(config)
    elasticity = result["elasticity"]
    report.add_row(
        "keys moved",
        float(elasticity["ring_keys_moved"]),
        float(elasticity["modn_keys_moved"]),
        elasticity["churn_ratio"],
    )
    report.add_row(
        "read availability during rebalance",
        result["availability"]["reads_during_rebalance"], 1.0,
        result["availability"]["reads_during_rebalance"],
    )
    report.add_row(
        "write availability during rebalance",
        result["availability"]["writes_during_rebalance"], 1.0,
        result["availability"]["writes_during_rebalance"],
    )
    return report


def test_a05_elasticity(benchmark):
    result = benchmark.pedantic(
        run_elastic_scaleout, args=(QUICK,), iterations=1, rounds=1
    )
    assert result["ok"], result["invariants"]
    assert result["elasticity"]["churn_ratio"] <= 0.6
    assert result["elasticity"]["overrides_final"] == 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small no-chaos scenario for CI smoke runs",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario seed",
    )
    parser.add_argument(
        "--profile", default="default",
        help="chaos profile name, 'none', or 'default' for the scenario's own",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="write the full deterministic JSON report to this path",
    )
    parser.add_argument(
        "--check-determinism", action="store_true",
        help="run twice and fail unless the reports are byte-identical",
    )
    args = parser.parse_args(argv)
    config = make_config(args)

    report = run_elastic_scaleout(config)
    payload = elasticity_report_json(report)
    if args.check_determinism:
        second = elasticity_report_json(run_elastic_scaleout(config))
        if payload != second:
            print("FAIL: report not byte-identical across two runs "
                  f"(seed {config.seed})", file=sys.stderr)
            return 2
        print(f"determinism: OK (seed {config.seed}, byte-identical)")
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"report written to {args.json_out}")

    print(json.dumps({"headline": headline(report)}, indent=2, sort_keys=True))
    if not report["ok"]:
        print("FAIL: invariant or churn-bound violation", file=sys.stderr)
        print(json.dumps(report["invariants"], indent=2, sort_keys=True),
              file=sys.stderr)
        return 1
    print("ok: invariants hold, churn within bound")
    return 0


if __name__ == "__main__":
    sys.exit(main())
