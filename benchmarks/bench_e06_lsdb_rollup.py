"""E6 — LSDB read cost: full rollup vs snapshot + suffix replay.

Paper claim (section 3.1): "What applications view as the current state
of the database would be a rollup aggregation of the contents of the
LSDB [...] This can be implemented efficiently using main memory
database techniques."

The naive rollup is linear in log length; snapshots bound the replayed
suffix.  We measure *wall-clock* read cost (this experiment exercises
real computation, not simulated time): a bank-style event log of
``log_length`` deltas over 50 accounts, read back (a) by folding the
whole log and (b) from the newest snapshot with interval ``interval``.
"""

from __future__ import annotations

import time

from repro.bench.report import ExperimentReport
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta
from repro.sim.rng import SeededRNG

ACCOUNTS = 50


def build_store(log_length: int, snapshot_interval: int, seed: int = 0) -> LSDBStore:
    store = LSDBStore(snapshot_interval=snapshot_interval)
    rng = SeededRNG(seed)
    for index in range(ACCOUNTS):
        store.insert("acct", f"a{index}", {"bal": 0})
    for _ in range(log_length):
        account = f"a{rng.randint(0, ACCOUNTS - 1)}"
        store.apply_delta("acct", account, Delta.add("bal", rng.randint(-5, 5)))
    return store


def time_full_rollup(store: LSDBStore, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        states = store.rollup_from_scratch()
        best = min(best, time.perf_counter() - start)
        assert states  # keep the fold honest
    return best * 1000.0  # milliseconds


def time_snapshot_read(store: LSDBStore, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        states = store.state_as_of(store.log.head_lsn)
        best = min(best, time.perf_counter() - start)
        assert states
    return best * 1000.0


def consistency_check(log_length: int = 2000, interval: int = 100) -> bool:
    """Both read paths must agree — the identity behind the optimization."""
    store = build_store(log_length, interval)
    full = store.rollup_from_scratch()
    fast = store.state_as_of(store.log.head_lsn)
    return all(
        full[ref].fields == fast[ref].fields for ref in full
    ) and set(full) == set(fast)


def sweep() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E6",
        title="LSDB read cost: full rollup vs snapshot + replay",
        claim=(
            "the current state is a rollup aggregation of the log; naive "
            "reads grow linearly with log length, snapshots flatten the "
            "curve to the suffix length (3.1)"
        ),
        headers=[
            "log_length",
            "full_rollup_ms",
            "snap_interval_1000_ms",
            "snap_interval_100_ms",
        ],
        notes=(
            "wall-clock milliseconds (best of 3); smaller snapshot "
            "intervals bound the replayed suffix more tightly"
        ),
    )
    for log_length in (1_000, 5_000, 20_000):
        plain = build_store(log_length, snapshot_interval=0)
        coarse = build_store(log_length, snapshot_interval=1_000)
        fine = build_store(log_length, snapshot_interval=100)
        report.add_row(
            log_length,
            time_full_rollup(plain),
            time_snapshot_read(coarse),
            time_snapshot_read(fine),
        )
    return report


def test_e06_lsdb_rollup(benchmark):
    assert consistency_check()
    store = build_store(10_000, snapshot_interval=100)
    fast = benchmark(lambda: store.state_as_of(store.log.head_lsn))
    assert fast  # states returned
    # The snapshot path beats the full fold on a long log.
    plain = build_store(10_000, snapshot_interval=0)
    assert time_snapshot_read(store) < time_full_rollup(plain)


if __name__ == "__main__":
    sweep().print()
