"""Run every experiment sweep (E1–E12) and print the full reports.

This is the script that regenerates the tables recorded in
EXPERIMENTS.md::

    python benchmarks/run_all.py
    python benchmarks/run_all.py --json-out experiments.json

Each experiment module also runs standalone
(``python benchmarks/bench_eNN_*.py``) and as a pytest-benchmark target
(``pytest benchmarks/ --benchmark-only``).  With ``--json-out`` the
reports are additionally written as machine-readable JSON, so CI and
trend tooling can diff results across commits.
"""

from __future__ import annotations

import argparse
import importlib
import json
import pathlib
import sys
import time

EXPERIMENTS = [
    "bench_core_hotpaths",
    "bench_e01_availability",
    "bench_e02_deferred_updates",
    "bench_e03_soups_vs_2pc",
    "bench_e04_solipsistic_cc",
    "bench_e05_apologies",
    "bench_e06_lsdb_rollup",
    "bench_e07_step_collapsing",
    "bench_e08_insert_only_growth",
    "bench_e09_out_of_order",
    "bench_e10_mixed_consistency",
    "bench_e11_ops_vs_state",
    "bench_e12_convergence",
    "bench_a01_idempotence_ablation",
    "bench_a02_propagation_modes",
    "bench_a03_reorder_buffer",
    "bench_a04_relocation",
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json-out", type=str, default="", metavar="PATH",
        help="also write every report as machine-readable JSON to PATH",
    )
    args = parser.parse_args()
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    started = time.perf_counter()
    reports = []
    for name in EXPERIMENTS:
        module = importlib.import_module(name)
        report = module.sweep()
        report.print()
        reports.append(report.to_dict())
    elapsed = time.perf_counter() - started
    if args.json_out:
        payload = {"elapsed_seconds": elapsed, "experiments": reports}
        pathlib.Path(args.json_out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    print(f"(all {len(EXPERIMENTS)} experiment sweeps completed in "
          f"{elapsed:.1f}s wall-clock)")


if __name__ == "__main__":
    main()
