"""Run every experiment sweep (E1–E12) and print the full reports.

This is the script that regenerates the tables recorded in
EXPERIMENTS.md::

    python benchmarks/run_all.py
    python benchmarks/run_all.py --json-out experiments.json
    python benchmarks/run_all.py --trace-out trace.json

Each experiment module also runs standalone
(``python benchmarks/bench_eNN_*.py``) and as a pytest-benchmark target
(``pytest benchmarks/ --benchmark-only``).  With ``--json-out`` the
reports are additionally written as machine-readable JSON, so CI and
trend tooling can diff results across commits.

The suite ends with a **traced demo write**: one asynchronously
replicated insert run under ``with_tracing()``, whose causal tree
(origin append → log ship → remote apply → secondary-index refresh) is
printed as a timeline together with the metrics report.  With
``--trace-out`` the trace is also exported as JSON, validated against
the checked-in ``benchmarks/trace_schema.json``.
"""

from __future__ import annotations

import argparse
import importlib
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import Cluster
from repro.obs.export import trace_json, validate_trace


def traced_demo(trace_out: str = "") -> None:
    """One traced async-replication write, timeline + metrics printed."""
    cluster = (
        Cluster.build(seed=7)
        .with_network(latency=5.0)
        .with_replicas(2, mode="async", ship_interval=10.0)
        .with_batching(max_batch=64)
        .with_tracing()
        .create()
    )
    # The backup maintains an asynchronously refreshed secondary index
    # (principle 2.3): its refresh spans chain onto the remote apply.
    index = cluster.replication.backup.store.register_index("order", "status")
    cluster.sim.schedule_at(30.0, index.refresh, label="index-refresh")
    cluster.replication.write_insert("order", "o-1", {"total": 9, "status": "new"})
    cluster.sim.run(until=40.0)

    print("\n== Traced demo write (async primary/backup) ==")
    print("one insert at the primary; every hop of its journey below is a")
    print("span in one causal trace, timed in virtual time:\n")
    print(cluster.timeline())
    print("\nmetrics registry after the run:")
    print(cluster.metrics_report().render())

    if trace_out:
        schema = json.loads(
            (REPO_ROOT / "benchmarks" / "trace_schema.json").read_text()
        )
        payload = cluster.trace_payload(demo="async-replicated-write", seed=7)
        problems = validate_trace(payload, schema)
        if problems:
            raise SystemExit(
                "exported trace violates benchmarks/trace_schema.json:\n  "
                + "\n  ".join(problems)
            )
        pathlib.Path(trace_out).write_text(
            trace_json(cluster.tracer, {"demo": "async-replicated-write", "seed": 7}),
            encoding="utf-8",
        )
        print(f"(trace exported to {trace_out}, schema-valid)")

EXPERIMENTS = [
    "bench_core_hotpaths",
    "bench_columnar",
    "bench_dataplane",
    "bench_frontdoor",
    "bench_geo",
    "bench_hotpath",
    "bench_isolation",
    "bench_e01_availability",
    "bench_e02_deferred_updates",
    "bench_e03_soups_vs_2pc",
    "bench_e04_solipsistic_cc",
    "bench_e05_apologies",
    "bench_e06_lsdb_rollup",
    "bench_e07_step_collapsing",
    "bench_e08_insert_only_growth",
    "bench_e09_out_of_order",
    "bench_e10_mixed_consistency",
    "bench_e11_ops_vs_state",
    "bench_e12_convergence",
    "bench_a01_idempotence_ablation",
    "bench_a02_propagation_modes",
    "bench_a03_reorder_buffer",
    "bench_a04_relocation",
    "bench_a05_elasticity",
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json-out", type=str, default="", metavar="PATH",
        help="also write every report as machine-readable JSON to PATH",
    )
    parser.add_argument(
        "--trace-out", type=str, default="", metavar="PATH",
        help="export the demo write's trace as schema-validated JSON",
    )
    args = parser.parse_args()
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    started = time.perf_counter()
    reports = []
    for name in EXPERIMENTS:
        module = importlib.import_module(name)
        report = module.sweep()
        report.print()
        reports.append(report.to_dict())
    elapsed = time.perf_counter() - started
    if args.json_out:
        payload = {"elapsed_seconds": elapsed, "experiments": reports}
        pathlib.Path(args.json_out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    traced_demo(trace_out=args.trace_out)
    print(f"\n(all {len(EXPERIMENTS)} experiment sweeps completed in "
          f"{elapsed:.1f}s wall-clock)")


if __name__ == "__main__":
    main()
