"""A3 (ablation) — The remote-apply reorder buffer.

Design choice under test: :meth:`LSDBStore.apply_remote` buffers events
that arrive ahead of a gap in their origin's sequence and drains the
buffer when the gap fills.  The ablated alternative — apply in-order
events, *drop* anything out of order — is what a naive implementation
does, and on a network that reorders (variable latency) it silently
loses every event behind a reordering.

Scenario: one origin emits ``EVENTS`` unit deltas; delivery shuffles
them within a window (modelling variable network latency).  We apply
the same shuffled stream to a buffering store and to a naive
drop-on-gap store and compare final values against the truth.
"""

from __future__ import annotations

from repro.bench.report import ExperimentReport
from repro.lsdb.events import EventKind, LogEvent
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta
from repro.bench.workloads import shuffled_within_window
from repro.sim.rng import SeededRNG

EVENTS = 300


def _event_stream() -> list[LogEvent]:
    return [
        LogEvent(
            lsn=0, timestamp=float(seq), entity_type="acct", entity_key="a",
            kind=EventKind.DELTA, payload=Delta.add("balance", 1).to_payload(),
            origin="origin-1", origin_seq=seq,
        )
        for seq in range(1, EVENTS + 1)
    ]


def apply_with_buffer(shuffled: list[LogEvent]) -> float:
    store = LSDBStore(origin="replica")
    for event in shuffled:
        store.apply_remote(event)
    state = store.get("acct", "a")
    return float(state.fields["balance"]) if state else 0.0


def apply_naive_drop(shuffled: list[LogEvent]) -> float:
    """The ablation: in-order or dropped — no buffer."""
    store = LSDBStore(origin="replica")
    next_seq = 1
    for event in shuffled:
        if event.origin_seq == next_seq:
            store.log.append(event.with_lsn(0))
            next_seq += 1
        # else: gap — the naive receiver discards the event
    state = store.get("acct", "a")
    return float(state.fields["balance"]) if state else 0.0


def run_window(window: int, seed: int = 0) -> dict[str, float]:
    shuffled = shuffled_within_window(SeededRNG(seed), _event_stream(), window)
    buffered = apply_with_buffer(shuffled)
    naive = apply_naive_drop(shuffled)
    return {
        "buffered_final": buffered,
        "naive_final": naive,
        "naive_lost": float(EVENTS) - naive,
    }


def sweep() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="A3",
        title="Ablation: out-of-order apply buffer",
        claim=(
            "with the reorder buffer, any delivery order yields the exact "
            "state; a drop-on-gap receiver loses everything behind the "
            "first reordering, worsening with network jitter"
        ),
        headers=[
            "reorder_window",
            "true_total",
            "buffered_final",
            "naive_final",
            "naive_lost",
        ],
        notes=(
            "reorder window models delivery jitter: events may arrive up "
            "to window-1 positions early or late"
        ),
    )
    for window in (1, 2, 4, 8, 16, 32):
        metrics = run_window(window)
        report.add_row(
            window,
            EVENTS,
            metrics["buffered_final"],
            metrics["naive_final"],
            metrics["naive_lost"],
        )
    return report


def test_a03_reorder_buffer(benchmark):
    jittered = benchmark(run_window, 8)
    in_order = run_window(1)
    # The buffer is exact at every jitter level.
    assert jittered["buffered_final"] == EVENTS
    assert in_order["buffered_final"] == EVENTS
    # The naive receiver is exact only on in-order delivery.
    assert in_order["naive_final"] == EVENTS
    assert jittered["naive_lost"] > 0
    # Loss saturates near-total at any real jitter: almost everything
    # behind the first reordering is gone.
    assert run_window(32)["naive_lost"] > 0.9 * EVENTS


if __name__ == "__main__":
    sweep().print()
