"""E12 — Eventual consistency: convergence time vs anti-entropy tuning.

Paper claim (section 1): eventual consistency means "convergence to
equivalent states at all replicas if there were no further
transactions".  How *soon* replicas converge is an engineering knob:
the anti-entropy interval and fanout.

Scenario: five active/active replicas on a lossy network (20% message
loss, so eager propagation alone cannot converge).  A burst of writes
lands across all replicas; after the last write we step the simulation
and record the first time every replica exposes identical state.  We
sweep the gossip interval and fanout.
"""

from __future__ import annotations

from repro.bench.report import ExperimentReport
from repro.merge.deltas import Delta
from repro.replication import ActiveActiveGroup
from repro.sim.network import Network
from repro.sim.scheduler import Simulator

REPLICAS = ["r1", "r2", "r3", "r4", "r5"]
WRITES = 50
WRITE_WINDOW = 50.0
LOSS = 0.2
MAX_WAIT = 5_000.0


def run_gossip(interval: float, fanout: int, seed: int = 0) -> dict[str, float]:
    sim = Simulator(seed=seed)
    net = Network(sim, latency=2.0, loss_probability=LOSS)
    group = ActiveActiveGroup(
        sim, net, list(REPLICAS),
        anti_entropy_interval=interval, gossip_fanout=fanout,
    )
    rng = sim.fork_rng()
    for index in range(WRITES):
        at = WRITE_WINDOW * index / WRITES
        replica = REPLICAS[rng.randint(0, len(REPLICAS) - 1)]
        key = f"k{rng.randint(0, 9)}"

        def write(bound_replica=replica, bound_key=key):
            group.write_delta(
                bound_replica, "stock", bound_key, Delta.add("n", 1)
            )

        sim.schedule_at(at, write)
    sim.run(until=WRITE_WINDOW)
    last_write_at = sim.now
    # Step until converged (or give up at MAX_WAIT).
    while sim.now < last_write_at + MAX_WAIT:
        if group.is_converged():
            break
        sim.run(until=sim.now + 1.0)
    converged = group.is_converged()
    return {
        "converged": 1.0 if converged else 0.0,
        "convergence_time": (sim.now - last_write_at) if converged else float("inf"),
        "gossip_rounds": float(group.anti_entropy.rounds if group.anti_entropy else 0),
        "divergence_left": float(group.divergence()),
    }


def run_no_gossip(seed: int = 0) -> dict[str, float]:
    """Degenerate case: eager-only propagation on a lossy network."""
    sim = Simulator(seed=seed)
    net = Network(sim, latency=2.0, loss_probability=LOSS)
    group = ActiveActiveGroup(sim, net, list(REPLICAS), anti_entropy_interval=0)
    rng = sim.fork_rng()
    for index in range(WRITES):
        replica = REPLICAS[rng.randint(0, len(REPLICAS) - 1)]
        sim.schedule_at(
            index,
            lambda bound=replica: group.write_delta(
                bound, "stock", "k0", Delta.add("n", 1)
            ),
        )
    sim.run(until=MAX_WAIT)
    return {
        "converged": 1.0 if group.is_converged() else 0.0,
        "divergence_left": float(group.divergence()),
    }


def sweep() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E12",
        title="Convergence time vs anti-entropy interval and fanout",
        claim=(
            "replicas converge once quiescent; shorter gossip intervals "
            "and larger fanout shrink the convergence window, and with no "
            "repair loop a lossy network never converges (section 1)"
        ),
        headers=[
            "gossip_interval",
            "fanout",
            "converged",
            "convergence_time",
            "gossip_rounds",
        ],
        notes=(
            "20% message loss; convergence time measured from the last "
            "write to the first instant all five replicas expose "
            "identical state"
        ),
    )
    for interval in (5.0, 10.0, 25.0, 50.0, 100.0):
        for fanout in (1, 2):
            metrics = run_gossip(interval, fanout)
            report.add_row(
                interval,
                fanout,
                bool(metrics["converged"]),
                metrics["convergence_time"],
                metrics["gossip_rounds"],
            )
    baseline = run_no_gossip()
    report.notes += (
        f"; eager-only baseline converged={bool(baseline['converged'])} "
        f"with divergence {baseline['divergence_left']:.0f} after "
        f"{MAX_WAIT:.0f} time units"
    )
    return report


def test_e12_convergence(benchmark):
    fast = benchmark(run_gossip, 10.0, 2)
    slow = run_gossip(100.0, 1)
    assert fast["converged"] == 1.0
    assert slow["converged"] == 1.0
    # Tighter gossip converges sooner.
    assert fast["convergence_time"] <= slow["convergence_time"]
    # Without repair, a lossy network stays divergent.
    assert run_no_gossip()["converged"] == 0.0


if __name__ == "__main__":
    sweep().print()
