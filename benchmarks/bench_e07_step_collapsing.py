"""E7 — Vertical and horizontal step collapsing.

Paper claim (section 3.1): "Infrastructure could collapse steps
vertically, turning multiple process steps in the same process into a
single sequential process step [...] Infrastructure could also collapse
process steps horizontally, turning multiple transactions for different
processes into a single transaction. [...] Having small transaction
granularity in the programming model allows smart implementations to
'right-size' execution to optimize throughput, or trade off throughput
for response time."

Scenario A (vertical): ``TRANSFERS`` HR employee-transfer processes run
through the four-step chain either as queued steps (each step pays a
queue hop + its own commit) or as one fused transaction.  Metric:
end-to-end process latency and transactions committed.

Scenario B (horizontal): a tally step processes ``EVENTS`` events either
one-per-transaction or in batches of ``batch``.  Metric: transactions
committed (commit overhead saved) and mean event-to-commit latency
(the response-time cost of waiting for a batch to fill).
"""

from __future__ import annotations

from repro.apps.hr import HRApp
from repro.bench.metrics import LatencyRecorder
from repro.bench.report import ExperimentReport
from repro.core.process import ProcessEngine, ProcessStep
from repro.core.transaction import TransactionManager
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta
from repro.queues.reliable import ReliableQueue
from repro.sim.scheduler import Simulator

TRANSFERS = 30
EVENTS = 120
QUEUE_HOP = 2.0
COMMIT_COST = 1.0


def run_vertical(collapsed: bool, seed: int = 0) -> dict[str, float]:
    sim = Simulator(seed=seed)
    queue = ReliableQueue(sim, delivery_delay=QUEUE_HOP)
    store = LSDBStore(clock=lambda: sim.now)
    manager = TransactionManager(store, sim=sim, queue=queue, commit_cost=COMMIT_COST)
    engine = ProcessEngine(manager, queue)
    hr = HRApp(engine, collapsed=collapsed)
    latency = LatencyRecorder()
    start_times: dict[str, float] = {}

    for index in range(TRANSFERS):
        employee = f"emp{index}"
        hr.hire(employee, "sales", "bundle")
    transfer_ids = {}
    for index in range(TRANSFERS):
        employee = f"emp{index}"
        at = 5.0 * index

        def kick_off(bound_employee=employee):
            start_times[bound_employee] = sim.now
            transfer_ids[bound_employee] = hr.start_transfer(
                bound_employee, "marketing", "delegate"
            )

        sim.schedule_at(at, kick_off)
    sim.run()
    for employee, started in start_times.items():
        status = hr.status(employee, transfer_ids[employee])
        assert status.complete, f"transfer for {employee} did not finish"
        notice = store.get(
            "payroll_notice", f"notice-{employee}-{transfer_ids[employee]}"
        )
        latency.record(notice.last_timestamp - started)
    return {
        "mean_process_latency": latency.mean,
        "transactions": float(manager.commits),
        "steps_run": float(engine.stats.steps_run),
    }


def run_horizontal(batch: int, seed: int = 0) -> dict[str, float]:
    sim = Simulator(seed=seed)
    queue = ReliableQueue(sim, delivery_delay=QUEUE_HOP)
    store = LSDBStore(clock=lambda: sim.now)
    manager = TransactionManager(store, sim=sim, queue=queue, commit_cost=COMMIT_COST)
    engine = ProcessEngine(manager, queue)
    latency = LatencyRecorder()

    def tally(ctx):
        ctx.apply_delta("stats", "totals", Delta.add("n", 1))
        latency.record(sim.now - ctx.message.payload["at"])

    step = ProcessStep("tally", "tick", tally)
    if batch <= 1:
        engine.register_step(step)
    else:
        engine.collapse_horizontal("tally-batched", step, batch_size=batch)

    for index in range(EVENTS):
        at = 1.0 * index
        sim.schedule_at(
            at, lambda bound_at=at: engine.start_process("tick", {"at": bound_at})
        )
    sim.run()
    total = store.get("stats", "totals")
    return {
        "processed": float(total.fields["n"]) if total else 0.0,
        "transactions": float(manager.commits),
        "mean_event_latency": latency.mean,
    }


def sweep() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E7",
        title="Vertical & horizontal step collapsing",
        claim=(
            "collapsing trades the programming model's small steps for "
            "execution efficiency: vertical collapse removes queue hops "
            "and per-step commits (lower latency, fewer transactions); "
            "horizontal collapse amortizes commits across events at the "
            "price of batching delay (3.1)"
        ),
        headers=["configuration", "transactions", "mean_latency", "detail"],
        notes=(
            "vertical rows: latency is end-to-end per process; horizontal "
            "rows: latency is event-to-commit, which grows as events wait "
            "for their batch to fill"
        ),
    )
    queued = run_vertical(collapsed=False)
    fused = run_vertical(collapsed=True)
    report.add_row(
        "vertical: 4 queued steps", queued["transactions"],
        queued["mean_process_latency"], f"{queued['steps_run']:.0f} steps run",
    )
    report.add_row(
        "vertical: collapsed", fused["transactions"],
        fused["mean_process_latency"], f"{fused['steps_run']:.0f} steps run",
    )
    for batch in (1, 4, 16):
        horizontal = run_horizontal(batch)
        report.add_row(
            f"horizontal: batch={batch}", horizontal["transactions"],
            horizontal["mean_event_latency"],
            f"{horizontal['processed']:.0f} events",
        )
    return report


def test_e07_step_collapsing(benchmark):
    fused = benchmark(run_vertical, True)
    queued = run_vertical(False)
    # Collapsing removes queue hops: lower latency, fewer transactions.
    assert fused["mean_process_latency"] < queued["mean_process_latency"]
    assert fused["transactions"] < queued["transactions"]
    # Horizontal batching: fewer commits, higher event latency.  Use a
    # batch size that divides EVENTS so no partial batch is left
    # waiting (the sweep's batch=16 row shows that caveat).
    single = run_horizontal(1)
    batched = run_horizontal(4)
    assert batched["transactions"] < single["transactions"]
    assert batched["mean_event_latency"] > single["mean_event_latency"]
    assert batched["processed"] == single["processed"] == EVENTS


if __name__ == "__main__":
    sweep().print()
