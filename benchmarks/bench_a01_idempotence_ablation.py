"""A1 (ablation) — At-least-once delivery *without* idempotent receivers.

Design choice under test (principle 2.4): "For unreliable messaging,
at-least-once delivery can be used with idempotence."  The library
always pairs the two; this ablation removes the idempotent receiver and
counts the duplicate business effects that leak through.

Scenario: ``EVENTS`` payment events on a queue whose acks are lost with
probability ``ack_loss``; the handler credits an account by 1 per event.
With the receiver, the final balance equals ``EVENTS`` exactly; without
it, every redelivery double-credits.
"""

from __future__ import annotations

from repro.bench.report import ExperimentReport
from repro.core.policy import RetryPolicy
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta
from repro.queues.idempotence import IdempotentReceiver
from repro.queues.reliable import ReliableQueue
from repro.sim.scheduler import Simulator

EVENTS = 200


def run_queue(ack_loss: float, idempotent: bool, seed: int = 0) -> dict[str, float]:
    sim = Simulator(seed=seed)
    queue = ReliableQueue(
        sim, ack_loss_probability=ack_loss, retry=RetryPolicy(max_attempts=50, base_delay=1.0)
    )
    store = LSDBStore(clock=lambda: sim.now)
    store.insert("account", "a", {"balance": 0})

    def credit(message) -> bool:
        store.apply_delta("account", "a", Delta.add("balance", 1))
        return True

    handler = IdempotentReceiver(credit) if idempotent else credit
    queue.subscribe("payment", handler)
    for _ in range(EVENTS):
        queue.enqueue("payment", {})
    sim.run()
    balance = store.get("account", "a").fields["balance"]
    return {
        "final_balance": float(balance),
        "duplicate_effects": float(balance - EVENTS),
        "redeliveries": float(queue.stats.redelivered),
    }


def sweep() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="A1",
        title="Ablation: at-least-once without idempotence",
        claim=(
            "at-least-once delivery alone double-applies effects exactly "
            "once per lost ack; the idempotent receiver restores "
            "exactly-once effects at any loss rate (2.4)"
        ),
        headers=[
            "ack_loss",
            "with_receiver_balance",
            "without_receiver_balance",
            "duplicate_effects_leaked",
            "redeliveries",
        ],
        notes=f"correct balance is exactly {EVENTS} in every row",
    )
    for ack_loss in (0.0, 0.1, 0.3, 0.5):
        safe = run_queue(ack_loss, idempotent=True)
        unsafe = run_queue(ack_loss, idempotent=False)
        report.add_row(
            ack_loss,
            safe["final_balance"],
            unsafe["final_balance"],
            unsafe["duplicate_effects"],
            unsafe["redeliveries"],
        )
    return report


def test_a01_idempotence_ablation(benchmark):
    safe = benchmark(run_queue, 0.3, True)
    unsafe = run_queue(0.3, False)
    assert safe["final_balance"] == EVENTS  # exactly-once effects
    assert unsafe["duplicate_effects"] > 0  # the leak the receiver plugs
    # Duplicates equal redeliveries: each lost ack re-runs the handler.
    assert unsafe["duplicate_effects"] == unsafe["redeliveries"]
    # Lossless delivery needs no protection either way.
    assert run_queue(0.0, False)["duplicate_effects"] == 0


if __name__ == "__main__":
    sweep().print()
