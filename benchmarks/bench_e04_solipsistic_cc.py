"""E4 — Solipsistic transactions vs pessimistic (2PL) and optimistic CC.

Paper claim (principle 2.10): "Solipsists aren't inconvenienced by
pessimistic concurrency control (which can cause waits, timeouts,
deadlocks), nor by optimistic concurrency control (which can cause
rollback if data changed since it was read).  Instead, solipsistic
transactions commit and expect system infrastructure to handle
conflicts."

Scenario: ``clients`` concurrent clients run transfer-style
transactions, each touching two Zipf-hot entities with a fixed work
time between first access and commit.

* **2PL** clients lock both entities (in access order, so deadlocks are
  possible), wait in FIFO queues, and retry as deadlock victims.
* **OCC** clients run, then validate read sets at commit and retry on
  validation failure.
* **Solipsistic** clients record commutative deltas and always commit;
  the convergent rollup composes concurrent updates, so there is
  nothing to wait for and nothing to abort.

Metrics over a fixed horizon: committed transactions (throughput), mean
latency from start to commit, and the conflict events each discipline
produced (waits+deadlocks, validation aborts, or none).
"""

from __future__ import annotations

from repro.bench.metrics import LatencyRecorder
from repro.bench.report import ExperimentReport
from repro.errors import DeadlockDetected, ValidationFailed
from repro.locks.optimistic import OCCValidator
from repro.locks.two_phase import LockManager2PL
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta
from repro.sim.rng import ZipfGenerator
from repro.sim.scheduler import Simulator

HORIZON = 2000.0
WORK_TIME = 2.0
THINK_TIME = 1.0
ENTITY_COUNT = 8
ZIPF_THETA = 0.99
RETRY_BACKOFF = 1.0


class _Stats:
    def __init__(self):
        self.committed = 0
        self.conflicts = 0
        self.latency = LatencyRecorder()


def _pick_two(zipf: ZipfGenerator) -> tuple[str, str]:
    first = zipf.draw()
    second = zipf.draw()
    while second == first:
        second = zipf.draw()
    return f"e{first}", f"e{second}"


def run_solipsistic(clients: int, seed: int = 0) -> dict[str, float]:
    sim = Simulator(seed=seed)
    store = LSDBStore(clock=lambda: sim.now)
    for index in range(ENTITY_COUNT):
        store.insert("acct", f"e{index}", {"v": 0})
    stats = _Stats()

    def client_loop(zipf: ZipfGenerator) -> None:
        if sim.now >= HORIZON:
            return
        started = sim.now
        key_a, key_b = _pick_two(zipf)

        def commit():
            # Record what the transaction did; composition is automatic.
            store.apply_delta("acct", key_a, Delta.add("v", -1))
            store.apply_delta("acct", key_b, Delta.add("v", 1))
            stats.committed += 1
            stats.latency.record(sim.now - started)
            sim.schedule(THINK_TIME, lambda: client_loop(zipf))

        sim.schedule(WORK_TIME, commit)

    for client in range(clients):
        zipf = ZipfGenerator(sim.fork_rng(), ENTITY_COUNT, ZIPF_THETA)
        sim.schedule(0.01 * client, lambda bound=zipf: client_loop(bound))
    sim.run(until=HORIZON + 50.0)
    return _summarise(stats)


def run_occ(clients: int, seed: int = 0) -> dict[str, float]:
    sim = Simulator(seed=seed)
    occ = OCCValidator()
    stats = _Stats()
    tx_counter = {"n": 0}

    def client_loop(zipf: ZipfGenerator) -> None:
        if sim.now >= HORIZON:
            return
        started = sim.now
        key_a, key_b = _pick_two(zipf)
        tx_counter["n"] += 1
        tx_id = f"tx-{tx_counter['n']}"
        occ.begin(tx_id)

        def try_commit():
            try:
                occ.commit(tx_id, [key_a, key_b], [key_a, key_b])
            except ValidationFailed:
                stats.conflicts += 1
                sim.schedule(RETRY_BACKOFF, lambda: client_loop(zipf))
                return
            stats.committed += 1
            stats.latency.record(sim.now - started)
            sim.schedule(THINK_TIME, lambda: client_loop(zipf))

        sim.schedule(WORK_TIME, try_commit)

    for client in range(clients):
        zipf = ZipfGenerator(sim.fork_rng(), ENTITY_COUNT, ZIPF_THETA)
        sim.schedule(0.01 * client, lambda bound=zipf: client_loop(bound))
    sim.run(until=HORIZON + 50.0)
    return _summarise(stats)


def run_2pl(clients: int, seed: int = 0) -> dict[str, float]:
    sim = Simulator(seed=seed)
    manager = LockManager2PL()
    stats = _Stats()
    tx_counter = {"n": 0}

    def client_loop(zipf: ZipfGenerator) -> None:
        if sim.now >= HORIZON:
            return
        started = sim.now
        key_a, key_b = _pick_two(zipf)
        tx_counter["n"] += 1
        tx_id = f"tx-{tx_counter['n']}"

        def restart():
            manager.release_all(tx_id)
            stats.conflicts += 1
            sim.schedule(RETRY_BACKOFF, lambda: client_loop(zipf))

        def work_then_commit():
            def commit():
                manager.release_all(tx_id)
                stats.committed += 1
                stats.latency.record(sim.now - started)
                sim.schedule(THINK_TIME, lambda: client_loop(zipf))

            sim.schedule(WORK_TIME, commit)

        def acquire_second():
            try:
                granted = manager.acquire(
                    tx_id, key_b,
                    on_grant=lambda: sim.call_soon(work_then_commit),
                )
            except DeadlockDetected:
                restart()
                return
            if granted:
                work_then_commit()

        try:
            granted = manager.acquire(
                tx_id, key_a, on_grant=lambda: sim.call_soon(acquire_second)
            )
        except DeadlockDetected:
            restart()
            return
        if granted:
            acquire_second()

    for client in range(clients):
        zipf = ZipfGenerator(sim.fork_rng(), ENTITY_COUNT, ZIPF_THETA)
        sim.schedule(0.01 * client, lambda bound=zipf: client_loop(bound))
    sim.run(until=HORIZON + 200.0)
    return _summarise(stats)


def _summarise(stats: _Stats) -> dict[str, float]:
    return {
        "throughput": stats.committed / HORIZON,
        "mean_latency": stats.latency.mean,
        "conflicts": float(stats.conflicts),
    }


def sweep() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E4",
        title="Solipsistic transactions vs 2PL and OCC under contention",
        claim=(
            "solipsistic commits never wait, deadlock, or abort; 2PL pays "
            "waits and deadlocks, OCC pays validation aborts, and both "
            "gaps widen with contention (2.10)"
        ),
        headers=[
            "clients",
            "soli_tput", "soli_lat", "soli_conf",
            "2pl_tput", "2pl_lat", "2pl_conf",
            "occ_tput", "occ_lat", "occ_conf",
        ],
        notes=(
            "conflicts = deadlock victims (2PL) or validation aborts (OCC); "
            "solipsistic conflicts are composed by the merge infrastructure "
            "instead of surfacing as failures"
        ),
    )
    for clients in (2, 4, 8, 16):
        solipsistic = run_solipsistic(clients)
        pessimistic = run_2pl(clients)
        optimistic = run_occ(clients)
        report.add_row(
            clients,
            solipsistic["throughput"], solipsistic["mean_latency"],
            solipsistic["conflicts"],
            pessimistic["throughput"], pessimistic["mean_latency"],
            pessimistic["conflicts"],
            optimistic["throughput"], optimistic["mean_latency"],
            optimistic["conflicts"],
        )
    return report


def test_e04_solipsistic_cc(benchmark):
    solipsistic = benchmark(run_solipsistic, 8)
    pessimistic = run_2pl(8)
    optimistic = run_occ(8)
    assert solipsistic["conflicts"] == 0
    assert solipsistic["throughput"] >= pessimistic["throughput"]
    assert solipsistic["throughput"] >= optimistic["throughput"]
    assert pessimistic["conflicts"] > 0 or pessimistic["mean_latency"] > WORK_TIME
    assert optimistic["conflicts"] > 0


if __name__ == "__main__":
    sweep().print()
