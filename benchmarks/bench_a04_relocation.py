"""A4 (ablation) — Dynamic entity relocation under a hot unit.

Design choice under test (principle 2.5): "Entity location is
determined dynamically."  When one serialization unit ends up owning
all the hot entities, every commit serializes on its single log; moving
half the hot keys to a second unit restores parallelism.

Scenario: ``KEYS`` hot entities all placed on unit ``u1`` (a skewed
initial placement); ``COMMITS`` single-entity transactions arrive
back-to-back.  Each commit occupies its owning unit's log for
``COMMIT_COST`` time units, so the *makespan* (virtual time until the
last commit) measures serialization.  The ablated system keeps the
placement; the dynamic system relocates half the keys to ``u2`` first.
"""

from __future__ import annotations

from repro.bench.report import ExperimentReport
from repro.partition.relocation import EntityMover
from repro.partition.router import DynamicDirectory, RangeRouter
from repro.partition.units import SerializationUnit
from repro.sim.rng import SeededRNG
from repro.sim.scheduler import Simulator

KEYS = 8
COMMITS = 400
COMMIT_COST = 1.0


def run_placement(rebalance: bool, seed: int = 0) -> dict[str, float]:
    sim = Simulator(seed=seed)
    units = {
        "u1": SerializationUnit("u1", sim, local_commit_cost=COMMIT_COST),
        "u2": SerializationUnit("u2", sim, local_commit_cost=COMMIT_COST),
    }
    # Skewed base placement: every key below "zzz" lands on u1.
    directory = DynamicDirectory(RangeRouter([("zzz", "u1")], default_unit="u2"))
    mover = EntityMover(units, directory)
    keys = [f"hot-{index}" for index in range(KEYS)]
    for key in keys:
        units[directory.unit_for("order", key)].store.insert(
            "order", key, {"n": 0}
        )
    if rebalance:
        mover.rebalance_hot_keys("order", keys[: KEYS // 2], "u2")
    rng = SeededRNG(seed)
    makespan = 0.0
    per_unit: dict[str, int] = {"u1": 0, "u2": 0}
    for _ in range(COMMITS):
        key = keys[rng.randint(0, KEYS - 1)]
        unit_name = directory.unit_for("order", key)
        unit = units[unit_name]
        done_at = unit.next_commit_slot()
        per_unit[unit_name] += 1
        makespan = max(makespan, done_at)
    return {
        "makespan": makespan,
        "u1_commits": float(per_unit["u1"]),
        "u2_commits": float(per_unit["u2"]),
        "moves": float(mover.moves_completed),
    }


def sweep() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="A4",
        title="Ablation: dynamic entity relocation under a hot unit",
        claim=(
            "with every hot entity on one unit, commits serialize on one "
            "log; relocating half the keys restores parallel commit slots "
            "and roughly halves the makespan (2.5)"
        ),
        headers=["placement", "makespan", "u1_commits", "u2_commits", "moves"],
        notes=(
            f"{COMMITS} single-entity commits of cost {COMMIT_COST} over "
            f"{KEYS} hot keys; makespan is virtual time until the last "
            "commit completes"
        ),
    )
    skewed = run_placement(rebalance=False)
    balanced = run_placement(rebalance=True)
    report.add_row("all keys on u1", skewed["makespan"],
                   skewed["u1_commits"], skewed["u2_commits"], skewed["moves"])
    report.add_row("half relocated to u2", balanced["makespan"],
                   balanced["u1_commits"], balanced["u2_commits"],
                   balanced["moves"])
    return report


def test_a04_relocation(benchmark):
    balanced = benchmark(run_placement, True)
    skewed = run_placement(False)
    # Skewed placement fully serializes.
    assert skewed["makespan"] == COMMITS * COMMIT_COST
    assert skewed["u2_commits"] == 0
    # Relocation spreads the load and cuts the makespan substantially.
    assert balanced["u2_commits"] > 0
    assert balanced["makespan"] < 0.7 * skewed["makespan"]
    assert balanced["moves"] == KEYS // 2


if __name__ == "__main__":
    sweep().print()
