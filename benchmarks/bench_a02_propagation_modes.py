"""A2 (ablation) — Eager propagation, anti-entropy, or both?

Design choice under test: the active/active group ships every event to
every peer eagerly *and* runs periodic anti-entropy.  Each half can be
ablated:

* **eager-only** — lowest latency to peers, but any lost message is a
  permanent divergence on a lossy network;
* **gossip-only** — always converges, but freshness is bounded by the
  gossip interval and repair traffic;
* **both** (the library default) — eager gives the common-case
  freshness, gossip guarantees convergence.

Metric: converged? / convergence time after the last write / messages
sent on the network (the cost axis).
"""

from __future__ import annotations

from repro.bench.report import ExperimentReport
from repro.merge.deltas import Delta
from repro.replication import ActiveActiveGroup
from repro.sim.network import Network
from repro.sim.scheduler import Simulator

REPLICAS = ["r1", "r2", "r3"]
WRITES = 40
WRITE_WINDOW = 40.0
LOSS = 0.15
GOSSIP_INTERVAL = 10.0
MAX_WAIT = 3_000.0


def run_mode(eager: bool, gossip: bool, seed: int = 3) -> dict[str, float]:
    sim = Simulator(seed=seed)
    net = Network(sim, latency=2.0, loss_probability=LOSS)
    group = ActiveActiveGroup(
        sim, net, list(REPLICAS),
        eager=eager,
        anti_entropy_interval=GOSSIP_INTERVAL if gossip else 0,
    )
    rng = sim.fork_rng()
    for index in range(WRITES):
        at = WRITE_WINDOW * index / WRITES
        replica = REPLICAS[rng.randint(0, len(REPLICAS) - 1)]
        sim.schedule_at(
            at,
            lambda bound=replica: group.write_delta(
                bound, "stock", "k", Delta.add("n", 1)
            ),
        )
    sim.run(until=WRITE_WINDOW)
    last_write_at = sim.now
    while sim.now < last_write_at + MAX_WAIT:
        if group.is_converged():
            break
        sim.run(until=sim.now + 1.0)
    converged = group.is_converged()
    return {
        "converged": 1.0 if converged else 0.0,
        "convergence_time": (sim.now - last_write_at) if converged else float("inf"),
        "messages_sent": float(net.stats.sent),
        "divergence_left": float(group.divergence()),
    }


def sweep() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="A2",
        title="Ablation: eager propagation vs anti-entropy vs both",
        claim=(
            "eager propagation alone cannot converge on a lossy network; "
            "gossip alone converges but slowly; the combination converges "
            "fast at moderate extra message cost"
        ),
        headers=[
            "mode",
            "converged",
            "convergence_time",
            "messages_sent",
            "divergence_left",
        ],
        notes=f"{LOSS:.0%} message loss; gossip interval {GOSSIP_INTERVAL}",
    )
    for label, eager, gossip in (
        ("eager-only", True, False),
        ("gossip-only", False, True),
        ("both (default)", True, True),
    ):
        metrics = run_mode(eager, gossip)
        report.add_row(
            label,
            bool(metrics["converged"]),
            metrics["convergence_time"],
            metrics["messages_sent"],
            metrics["divergence_left"],
        )
    return report


def test_a02_propagation_modes(benchmark):
    both = benchmark(run_mode, True, True)
    gossip_only = run_mode(False, True)
    eager_only = run_mode(True, False)
    assert both["converged"] == 1.0
    assert gossip_only["converged"] == 1.0
    assert eager_only["converged"] == 0.0  # loss is permanent without repair
    # The default combination converges at least as fast as gossip alone.
    assert both["convergence_time"] <= gossip_only["convergence_time"]


if __name__ == "__main__":
    sweep().print()
