"""E3 — Focused (single-entity) transactions vs distributed 2PC.

Paper claim (principles 2.5/2.6): "When entities from two different
organizational units are accessed in the same transaction, a
distributed (two-phase commit) transaction is required, which impacts
performance and availability"; following SOUPS "avoids commits across
multiple units".

Scenario: two serialization units behind a network.  A stream of order
transactions arrives; a fraction ``cross_fraction`` of them touch
entities on both units.  Single-unit transactions commit locally (one
log slot); cross-unit transactions run textbook 2PC over the network.
We sweep the cross-unit fraction and report mean commit latency and
throughput; the 2PC path also reports in-doubt blocking when a crash is
injected.
"""

from __future__ import annotations

from repro.bench.metrics import LatencyRecorder
from repro.bench.report import ExperimentReport
from repro.locks.two_pc import TwoPCCoordinator, TwoPCParticipant
from repro.partition.units import SerializationUnit
from repro.sim.network import Network
from repro.sim.scheduler import Simulator

TRANSACTIONS = 200
ARRIVAL_INTERVAL = 2.0
NETWORK_LATENCY = 5.0
LOCAL_COMMIT_COST = 1.0


def run_mix(cross_fraction: float, seed: int = 0) -> dict[str, float]:
    sim = Simulator(seed=seed)
    net = Network(sim, latency=NETWORK_LATENCY)
    units = [
        SerializationUnit("u1", sim, local_commit_cost=LOCAL_COMMIT_COST),
        SerializationUnit("u2", sim, local_commit_cost=LOCAL_COMMIT_COST),
    ]
    coordinator = net.register(TwoPCCoordinator("coord"))
    for unit in units:
        net.register(TwoPCParticipant(f"{unit.name}-rm"))
    rng = sim.fork_rng()
    latency = LatencyRecorder()
    completed = {"count": 0, "last_at": 0.0}

    def finish(started_at: float) -> None:
        latency.record(sim.now - started_at)
        completed["count"] += 1
        completed["last_at"] = sim.now

    for index in range(TRANSACTIONS):
        at = ARRIVAL_INTERVAL * index
        is_cross = rng.random() < cross_fraction

        def submit(bound_index=index, bound_cross=is_cross):
            started = sim.now
            if bound_cross:
                coordinator.begin(
                    f"tx-{bound_index}",
                    ["u1-rm", "u2-rm"],
                    on_complete=lambda _result: finish(started),
                )
            else:
                unit = units[bound_index % 2]
                unit.store.insert("order", f"o{bound_index}", {"n": 1})
                done_at = unit.next_commit_slot()
                sim.schedule_at(done_at, lambda: finish(started))

        sim.schedule_at(at, submit)
    sim.run()
    duration = completed["last_at"] or 1.0
    return {
        "mean_latency": latency.mean,
        "p99_latency": latency.p99,
        "throughput": completed["count"] / duration,
    }


def run_blocking_probe() -> float:
    """Crash the coordinator mid-protocol and report how long a
    prepared participant stays in doubt (the availability impact)."""
    sim = Simulator()
    net = Network(sim, latency=NETWORK_LATENCY)
    coordinator = net.register(TwoPCCoordinator("coord"))
    participant = net.register(TwoPCParticipant("u1-rm"))
    net.register(TwoPCParticipant("u2-rm"))
    coordinator.begin("tx-blocked", ["u1-rm", "u2-rm"])
    # Crash after prepares land but before the decision does.
    sim.schedule_at(NETWORK_LATENCY + 1.0, coordinator.crash)
    sim.run(until=500.0)
    became_in_doubt = participant.in_doubt.get("tx-blocked")
    return sim.now - became_in_doubt if became_in_doubt is not None else 0.0


def sweep() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E3",
        title="SOUPS single-entity commits vs distributed 2PC",
        claim=(
            "cross-unit transactions pay two network round trips per "
            "commit and can block in doubt; single-entity transactions "
            "commit in one local log slot (2.5/2.6)"
        ),
        headers=[
            "cross_fraction",
            "mean_latency",
            "p99_latency",
            "throughput",
        ],
        notes=(
            "latency climbs with the cross-unit fraction toward the 2PC "
            "floor of 4x network latency; at fraction 0 the workload runs "
            "at the local commit cost"
        ),
    )
    for cross_fraction in (0.0, 0.1, 0.2, 0.5, 1.0):
        metrics = run_mix(cross_fraction)
        report.add_row(
            cross_fraction,
            metrics["mean_latency"],
            metrics["p99_latency"],
            metrics["throughput"],
        )
    blocked = run_blocking_probe()
    report.notes += (
        f"; coordinator crash left a prepared participant in doubt for "
        f"{blocked:.0f} time units (availability impact)"
    )
    return report


def test_e03_soups_vs_2pc(benchmark):
    all_local = benchmark(run_mix, 0.0)
    all_cross = run_mix(1.0)
    # Local commits cost one log slot; 2PC pays 4 network hops.
    assert all_local["mean_latency"] <= LOCAL_COMMIT_COST + 1e-9
    assert all_cross["mean_latency"] >= 4 * NETWORK_LATENCY - 1e-9
    # And the blocking hazard is real:
    assert run_blocking_probe() > 100.0


if __name__ == "__main__":
    sweep().print()
