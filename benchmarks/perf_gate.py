"""Perf gate: fail loudly when a hot path regresses.

Two modes over the committed trajectory file ``BENCH_core_hotpaths.json``
at the repo root:

* **check** (default): validate the recorded before/after numbers — the
  optimization claims this repo ships must hold in the artefact itself
  (≥ ``--min-speedup`` on at least ``--min-wins`` of the key hot-path
  metrics).
* **--rerun**: re-run the microbenchmarks now (``--quick`` sizes by
  default) and compare against the recorded *after* numbers; a live
  throughput below ``--tolerance`` × recorded is a regression.  Use in
  CI on hardware comparable to the recording machine, or locally before
  committing changes to ``sim/``/``lsdb/``.

Exit code 0 means the gate passed; 1 means a regression / broken claim.

Usage::

    python benchmarks/perf_gate.py
    python benchmarks/perf_gate.py --rerun --tolerance 0.3
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
TRAJECTORY = ROOT / "BENCH_core_hotpaths.json"
DATAPLANE = ROOT / "BENCH_dataplane.json"
COLUMNAR = ROOT / "BENCH_columnar.json"
FRONTDOOR = ROOT / "BENCH_frontdoor.json"
GEO = ROOT / "BENCH_geo.json"
ISOLATION = ROOT / "BENCH_isolation.json"
HOTPATH = ROOT / "BENCH_hotpath.json"

#: The metrics the PR's speedup claim is made on (ISSUE 1 acceptance:
#: >= 3x on at least two of these).
KEY_METRICS = (
    "fold_throughput_eps",
    "feed_events_from_origin_ops",
    "scheduler_eps_largest",
)


def load_trajectory(path: pathlib.Path = TRAJECTORY) -> dict:
    if not path.exists():
        print(f"perf gate: missing {path}", file=sys.stderr)
        raise SystemExit(1)
    return json.loads(path.read_text(encoding="utf-8"))


def check_claims(data: dict, min_speedup: float, min_wins: int) -> bool:
    """Validate the recorded speedup claims."""
    speedup = data.get("speedup", {})
    wins = 0
    print(f"perf gate: recorded speedups (claim: >= {min_speedup:g}x on "
          f">= {min_wins} of {len(KEY_METRICS)} key metrics)")
    for metric in KEY_METRICS:
        factor = speedup.get(metric)
        verdict = "missing"
        if factor is not None:
            verdict = f"{factor:g}x " + ("PASS" if factor >= min_speedup else "below")
            if factor >= min_speedup:
                wins += 1
        print(f"  {metric:32s} {verdict}")
    ok = wins >= min_wins
    print(f"perf gate: {wins}/{len(KEY_METRICS)} key metrics at or above "
          f"{min_speedup:g}x -> {'PASS' if ok else 'FAIL'}")
    return ok


def check_dataplane(
    data: dict,
    min_ship_speedup: float,
    min_wire_reduction: float,
    max_recovery_ratio: float,
) -> bool:
    """Validate the recorded data-plane claims (PR 5 acceptance).

    Three gates over ``BENCH_dataplane.json``'s ``speedup`` block:
    frame-64 shipping must beat unbatched by ``min_ship_speedup``, put
    ``min_wire_reduction`` times fewer messages on the wire, and
    checkpointed recovery time must be independent of log length
    (long/short ratio at most ``max_recovery_ratio``).
    """
    speedup = data.get("speedup", {})
    gates = (
        ("ship_throughput_eps", speedup.get("ship_throughput_eps"),
         min_ship_speedup, True),
        ("wire_message_reduction", speedup.get("wire_message_reduction"),
         min_wire_reduction, True),
        ("recovery_independence_ratio",
         speedup.get("recovery_independence_ratio"),
         max_recovery_ratio, False),
    )
    ok = True
    print("perf gate: data plane (BENCH_dataplane.json)")
    for name, value, bound, higher_is_better in gates:
        if value is None:
            print(f"  {name:32s} missing FAIL")
            ok = False
            continue
        passed = value >= bound if higher_is_better else value <= bound
        relation = ">=" if higher_is_better else "<="
        print(f"  {name:32s} {value:g} (must be {relation} {bound:g}) "
              f"{'PASS' if passed else 'FAIL'}")
        ok = ok and passed
    print(f"perf gate: data plane -> {'PASS' if ok else 'FAIL'}")
    return ok


def check_columnar(
    data: dict,
    min_create_speedup: float,
    min_fold_speedup: float,
) -> bool:
    """Validate the recorded columnar-log claims (PR 6 acceptance).

    Three gates over ``BENCH_columnar.json``'s ``speedup`` block:
    column-arena event creation must beat object construction by
    ``min_create_speedup``, the fused slice fold must beat the
    per-event loop by ``min_fold_speedup``, and the frame codec
    round-trip must have reproduced every event byte-for-byte.
    """
    speedup = data.get("speedup", {})
    ok = True
    print("perf gate: columnar log (BENCH_columnar.json)")
    for name, bound in (
        ("event_create", min_create_speedup),
        ("fold_throughput", min_fold_speedup),
    ):
        value = speedup.get(name)
        if value is None:
            print(f"  {name:32s} missing FAIL")
            ok = False
            continue
        passed = value >= bound
        print(f"  {name:32s} {value:g}x (must be >= {bound:g}x) "
              f"{'PASS' if passed else 'FAIL'}")
        ok = ok and passed
    equal = speedup.get("frame_codec_roundtrip_equal")
    passed = equal is True
    print(f"  {'frame_codec_roundtrip_equal':32s} {equal} "
          f"{'PASS' if passed else 'FAIL'}")
    ok = ok and passed
    print(f"perf gate: columnar log -> {'PASS' if ok else 'FAIL'}")
    return ok


def check_frontdoor(
    data: dict,
    min_goodput_ratio: float,
    max_reject_ratio: float,
) -> bool:
    """Validate the recorded overload frontier (PR 7 acceptance).

    Two gates over ``BENCH_frontdoor.json``'s ``acceptance`` block, at
    the 2x-overload point: goodput (served/offered, degraded serves
    count) must be at least ``min_goodput_ratio`` and hard rejects at
    most ``max_reject_ratio``.  The strict baseline is printed for
    context — it is what goodput looks like without the degrade ladder.
    """
    acceptance = data.get("acceptance", {})
    ok = True
    print("perf gate: front door (BENCH_frontdoor.json)")
    for name, bound, higher_is_better in (
        ("goodput_ratio", min_goodput_ratio, True),
        ("reject_ratio", max_reject_ratio, False),
    ):
        value = acceptance.get(name)
        if value is None:
            print(f"  {name:32s} missing FAIL")
            ok = False
            continue
        passed = value >= bound if higher_is_better else value <= bound
        relation = ">=" if higher_is_better else "<="
        print(f"  {name:32s} {value:g} at {acceptance.get('multiplier', '?')}x "
              f"(must be {relation} {bound:g}) {'PASS' if passed else 'FAIL'}")
        ok = ok and passed
    strict = acceptance.get("strict_goodput_ratio")
    if strict is not None:
        print(f"  {'strict_goodput_ratio':32s} {strict:g} "
              "(context: same load, allow_degraded=False)")
    print(f"perf gate: front door -> {'PASS' if ok else 'FAIL'}")
    return ok


def check_geo(
    data: dict,
    max_wan_ratio: float,
    min_failover_availability: float,
) -> bool:
    """Validate the recorded geo-replication claims (PR 8 acceptance).

    Three gates over ``BENCH_geo.json``'s ``acceptance`` block: the
    2-of-3 partial placement must ship at most ``max_wan_ratio`` times
    the WAN payloads of full replication under the identical workload,
    typed reads during a whole-site outage must stay available at
    ``min_failover_availability`` or better, and the group must have
    reconverged after the site came back.
    """
    acceptance = data.get("acceptance", {})
    ok = True
    print("perf gate: geo replication (BENCH_geo.json)")
    for name, bound, higher_is_better in (
        ("wan_ratio", max_wan_ratio, False),
        ("failover_availability", min_failover_availability, True),
    ):
        value = acceptance.get(name)
        if value is None:
            print(f"  {name:32s} missing FAIL")
            ok = False
            continue
        passed = value >= bound if higher_is_better else value <= bound
        relation = ">=" if higher_is_better else "<="
        print(f"  {name:32s} {value:g} (must be {relation} {bound:g}) "
              f"{'PASS' if passed else 'FAIL'}")
        ok = ok and passed
    converged = acceptance.get("converged_after_recovery")
    passed = converged is True
    print(f"  {'converged_after_recovery':32s} {converged} "
          f"{'PASS' if passed else 'FAIL'}")
    ok = ok and passed
    print(f"perf gate: geo replication -> {'PASS' if ok else 'FAIL'}")
    return ok


#: The ISSUE 9 acceptance cells, re-derived here so the gate does not
#: trust the artefact's own ``matches_theory`` verdict alone:
#: serializable admits nothing; SI forbids lost updates and long forks
#: but admits write skew; NMSI additionally admits long forks and
#: non-monotonic snapshots while still forbidding lost updates;
#: solipsistic admits lost updates.
REQUIRED_MATRIX_CELLS = (
    ("serializable", "dirty_read", False),
    ("serializable", "read_skew", False),
    ("serializable", "lost_update", False),
    ("serializable", "write_skew", False),
    ("serializable", "long_fork", False),
    ("serializable", "non_monotonic_snapshot", False),
    ("snapshot", "lost_update", False),
    ("snapshot", "long_fork", False),
    ("snapshot", "write_skew", True),
    ("nmsi", "lost_update", False),
    ("nmsi", "long_fork", True),
    ("nmsi", "non_monotonic_snapshot", True),
    ("solipsistic", "lost_update", True),
)


def check_isolation(
    data: dict,
    max_si_abort_ratio: float,
    max_si_latency_ratio: float,
) -> bool:
    """Validate the recorded anomaly scorecard (ISSUE 9 acceptance).

    Three gates over ``BENCH_isolation.json``: the executed anomaly
    matrix must match theory exactly (both the artefact's own diff and
    the :data:`REQUIRED_MATRIX_CELLS` re-derived here), SI's abort rate
    and p95 commit latency under the open-loop load must stay within
    the given ratios of serializable's, and the lost-update ledger must
    show solipsism actually losing updates while every snapshot level
    loses none.
    """
    acceptance = data.get("acceptance", {})
    matrix = data.get("matrix", {})
    ok = True
    print("perf gate: isolation spectrum (BENCH_isolation.json)")
    matches = acceptance.get("matches_theory")
    passed = matches is True
    print(f"  {'matches_theory':32s} {matches} {'PASS' if passed else 'FAIL'}")
    for mismatch in acceptance.get("mismatches", []):
        print(f"    mismatch: {mismatch}")
    ok = ok and passed
    for mode, anomaly, expected in REQUIRED_MATRIX_CELLS:
        cell = matrix.get(mode, {}).get(anomaly, {})
        observed = cell.get("materialized")
        passed = observed is expected
        if not passed:
            print(f"  matrix[{mode}][{anomaly}] = {observed} "
                  f"(must be {expected}) FAIL")
        ok = ok and passed
    print(f"  {'required_matrix_cells':32s} "
          f"{len(REQUIRED_MATRIX_CELLS)} cells checked "
          f"{'PASS' if ok else 'FAIL'}")
    for name, bound in (
        ("si_abort_ratio", max_si_abort_ratio),
        ("si_latency_ratio", max_si_latency_ratio),
    ):
        value = acceptance.get(name)
        if value is None:
            print(f"  {name:32s} missing FAIL")
            ok = False
            continue
        passed = value <= bound
        print(f"  {name:32s} {value:g} (must be <= {bound:g}) "
              f"{'PASS' if passed else 'FAIL'}")
        ok = ok and passed
    lost = acceptance.get("lost_updates", {})
    for mode, bad in (("solipsistic", False), ("nmsi", True),
                      ("snapshot", True), ("serializable", True)):
        value = lost.get(mode)
        if value is None:
            print(f"  lost_updates[{mode}] missing FAIL")
            ok = False
            continue
        passed = value == 0 if bad else value > 0
        relation = "== 0" if bad else "> 0"
        label = f"lost_updates[{mode}]"
        print(f"  {label:32s} {value} (must be {relation}) "
              f"{'PASS' if passed else 'FAIL'}")
        ok = ok and passed
    print(f"perf gate: isolation spectrum -> {'PASS' if ok else 'FAIL'}")
    return ok


def check_hotpath(
    data: dict,
    min_speedup: float,
    min_hit_ratio: float,
) -> bool:
    """Validate the recorded skew-aware hot path (ISSUE 10 acceptance).

    Three gates over ``BENCH_hotpath.json``'s ``acceptance`` block, on
    the θ=0.99 headline scenario: cached read throughput must beat
    fold-on-read by ``min_speedup``, the hot-set hit ratio must reach
    ``min_hit_ratio``, and — summed over **every** scenario — zero
    cache answers may have exceeded their requested staleness bound.
    """
    acceptance = data.get("acceptance", {})
    ok = True
    print("perf gate: hot path (BENCH_hotpath.json)")
    for name, bound in (
        ("read_speedup", min_speedup),
        ("hot_hit_ratio", min_hit_ratio),
    ):
        value = acceptance.get(name)
        if value is None:
            print(f"  {name:32s} missing FAIL")
            ok = False
            continue
        passed = value >= bound
        print(f"  {name:32s} {value:g} on "
              f"{acceptance.get('gate_scenario', '?')} "
              f"(must be >= {bound:g}) {'PASS' if passed else 'FAIL'}")
        ok = ok and passed
    violations = acceptance.get("stale_beyond_bound_serves")
    passed = violations == 0
    print(f"  {'stale_beyond_bound_serves':32s} {violations} "
          f"(must be == 0, all scenarios) {'PASS' if passed else 'FAIL'}")
    ok = ok and passed
    print(f"perf gate: hot path -> {'PASS' if ok else 'FAIL'}")
    return ok


def check_live(data: dict, tolerance: float, quick: bool) -> bool:
    """Re-run the bench and compare against the recorded after-numbers."""
    sys.path.insert(0, str(ROOT / "benchmarks"))
    from bench_core_hotpaths import collect

    recorded = data.get("after", {})
    live_raw = collect(quick=quick)
    live: dict[str, float] = {}
    for key, value in live_raw.items():
        if isinstance(value, dict):
            live.update({f"{key}_{size}": v for size, v in value.items()})
        elif not key.startswith("_"):
            live[key] = value

    ok = True
    print(f"perf gate: live rerun vs recorded (tolerance {tolerance:g}x, "
          f"{'quick' if quick else 'full'} sizes)")
    for metric in KEY_METRICS:
        have, want = live.get(metric), recorded.get(metric)
        if have is None or want is None:
            print(f"  {metric:32s} skipped (not measured at these sizes)")
            continue
        ratio = have / want
        passed = ratio >= tolerance
        ok = ok and passed
        print(f"  {metric:32s} {have:14.0f} vs {want:14.0f} "
              f"({ratio:5.2f}x) {'PASS' if passed else 'REGRESSION'}")
    print(f"perf gate: live comparison -> {'PASS' if ok else 'FAIL'}")
    return ok


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rerun", action="store_true",
                        help="re-run the bench and compare to the recording")
    parser.add_argument("--full", action="store_true",
                        help="with --rerun: use full (non-quick) sizes")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="with --rerun: min live/recorded ratio (hardware "
                             "varies; default 0.25)")
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument("--min-wins", type=int, default=2)
    parser.add_argument("--min-ship-speedup", type=float, default=5.0,
                        help="frame-64 shipping vs unbatched (recorded)")
    parser.add_argument("--min-wire-reduction", type=float, default=10.0,
                        help="wire messages saved at frame 64 (recorded)")
    parser.add_argument("--max-recovery-ratio", type=float, default=3.0,
                        help="checkpointed recovery time, long/short log")
    parser.add_argument("--min-create-speedup", type=float, default=3.0,
                        help="columnar event creation vs object path (recorded)")
    parser.add_argument("--min-fold-speedup", type=float, default=2.0,
                        help="fused slice fold vs per-event loop (recorded)")
    parser.add_argument("--min-goodput-ratio", type=float, default=0.9,
                        help="front-door goodput at 2x overload (recorded)")
    parser.add_argument("--max-reject-ratio", type=float, default=0.05,
                        help="front-door hard rejects at 2x overload (recorded)")
    parser.add_argument("--max-wan-ratio", type=float, default=0.6,
                        help="partial vs full replication WAN payloads (recorded)")
    parser.add_argument("--min-failover-availability", type=float, default=0.99,
                        help="typed-read availability during a site outage "
                             "(recorded)")
    parser.add_argument("--max-si-abort-ratio", type=float, default=1.0,
                        help="SI vs serializable abort rate under the "
                             "open-loop load (recorded)")
    parser.add_argument("--max-si-latency-ratio", type=float, default=1.25,
                        help="SI vs serializable p95 commit latency (recorded)")
    parser.add_argument("--min-hotpath-speedup", type=float, default=5.0,
                        help="cached vs fold-on-read throughput at "
                             "theta=0.99 (recorded)")
    parser.add_argument("--min-hotpath-hit-ratio", type=float, default=0.8,
                        help="cache hit ratio on the instantaneous hot set "
                             "(recorded)")
    args = parser.parse_args()

    data = load_trajectory()
    ok = check_claims(data, args.min_speedup, args.min_wins)
    ok = check_dataplane(
        load_trajectory(DATAPLANE),
        args.min_ship_speedup,
        args.min_wire_reduction,
        args.max_recovery_ratio,
    ) and ok
    ok = check_columnar(
        load_trajectory(COLUMNAR),
        args.min_create_speedup,
        args.min_fold_speedup,
    ) and ok
    ok = check_frontdoor(
        load_trajectory(FRONTDOOR),
        args.min_goodput_ratio,
        args.max_reject_ratio,
    ) and ok
    ok = check_geo(
        load_trajectory(GEO),
        args.max_wan_ratio,
        args.min_failover_availability,
    ) and ok
    ok = check_isolation(
        load_trajectory(ISOLATION),
        args.max_si_abort_ratio,
        args.max_si_latency_ratio,
    ) and ok
    ok = check_hotpath(
        load_trajectory(HOTPATH),
        args.min_hotpath_speedup,
        args.min_hotpath_hit_ratio,
    ) and ok
    if args.rerun:
        ok = check_live(data, args.tolerance, quick=not args.full) and ok
    raise SystemExit(0 if ok else 1)


if __name__ == "__main__":
    main()
