#!/usr/bin/env python
"""Deterministic chaos soak: faults + workload + invariants, one verdict.

Runs the :mod:`repro.chaos` soak harness with a fixed seed and prints
the canonical JSON report.  Exit status is 0 only when every invariant
held AND at least four distinct fault kinds were injected — the CI
chaos step fails the build otherwise.

Usage::

    PYTHONPATH=src python benchmarks/chaos_soak.py --seed 42
    PYTHONPATH=src python benchmarks/chaos_soak.py --profile heavy \
        --duration 3000 --check-determinism
    PYTHONPATH=src python benchmarks/chaos_soak.py --geo --seed 42 \
        --check-determinism

``--check-determinism`` runs the soak twice and additionally fails if
the two reports are not byte-identical (the seeded-chaos contract).
``--geo`` runs the geo-distributed soak instead: a 3-site partial
placement under site-level faults plus a scripted whole-site outage.
"""

from __future__ import annotations

import argparse
import sys

from repro.chaos import (
    PROFILES,
    GeoSoakConfig,
    SoakConfig,
    report_json,
    run_geo_soak,
    run_soak,
)

#: The acceptance floor: a soak that exercised fewer distinct fault
#: kinds than this is not considered a chaos run at all.
MIN_FAULT_KINDS = 4


def build_config(args: argparse.Namespace) -> "SoakConfig | GeoSoakConfig":
    if args.geo:
        return GeoSoakConfig(
            seed=args.seed,
            profile=args.profile,
            sites=args.sites,
            replicas=args.geo_replicas,
            duration=args.duration,
            quiesce_grace=args.grace,
            write_rate=args.rate,
        )
    return SoakConfig(
        seed=args.seed,
        profile=args.profile,
        replicas=args.replicas,
        duration=args.duration,
        quiesce_grace=args.grace,
        write_rate=args.rate,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--seed", type=int, default=42, help="simulator seed")
    parser.add_argument(
        "--profile", default="moderate", choices=sorted(PROFILES),
        help="chaos intensity profile",
    )
    parser.add_argument("--replicas", type=int, default=4)
    parser.add_argument(
        "--geo", action="store_true",
        help="run the geo soak: 3-site partial placement, site-level "
             "faults, scripted whole-site outage",
    )
    parser.add_argument(
        "--sites", type=int, default=3, help="datacenters (with --geo)"
    )
    parser.add_argument(
        "--geo-replicas", type=int, default=2,
        help="hosting sites per shard (with --geo)",
    )
    parser.add_argument(
        "--duration", type=float, default=2000.0,
        help="virtual time of the chaos+workload window",
    )
    parser.add_argument(
        "--grace", type=float, default=500.0,
        help="quiet repair time after the chaos stops",
    )
    parser.add_argument(
        "--rate", type=float, default=0.4, help="mean writes per time unit"
    )
    parser.add_argument(
        "--check-determinism", action="store_true",
        help="run twice and require byte-identical reports",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only the verdict line"
    )
    args = parser.parse_args(argv)

    config = build_config(args)
    soak = run_geo_soak if args.geo else run_soak
    report = soak(config)
    rendered = report_json(report)
    if not args.quiet:
        print(rendered)

    ok = True
    kinds = report["fault_kinds"]
    if len(kinds) < MIN_FAULT_KINDS:
        print(
            f"FAIL: only {len(kinds)} fault kinds injected "
            f"({', '.join(kinds)}); need >= {MIN_FAULT_KINDS}",
            file=sys.stderr,
        )
        ok = False
    if not report["invariants"]["ok"]:
        failed = [
            result["name"]
            for result in report["invariants"]["results"]
            if not result["passed"]
        ]
        print(f"FAIL: invariants violated: {', '.join(failed)}", file=sys.stderr)
        ok = False

    if args.check_determinism:
        second = report_json(soak(config))
        if second != rendered:
            print("FAIL: report is not byte-deterministic", file=sys.stderr)
            ok = False
        elif not args.quiet:
            print("determinism: byte-identical across two runs", file=sys.stderr)

    verdict = "PASS" if ok else "FAIL"
    print(
        f"{verdict}: seed={config.seed} profile={report['config']['profile']} "
        f"kinds={len(kinds)} acked={report['workload']['writes_acked']} "
        f"invariants_ok={report['invariants']['ok']}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
