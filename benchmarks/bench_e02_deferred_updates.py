"""E2 — Deferred vs synchronous secondary updates (the SAP model).

Paper claim (principle 2.3, section 3.2): completing a transaction when
the pending-actions descriptor commits "reduces user wait times", at the
price of a window in which an immediate query "may not yet [see] the
result of the transaction"; synchronous updates at commit avoid the
inconsistency but increase response time.

Scenario: order postings, each with one deferred secondary update (the
revenue aggregate) of configurable cost.  We sweep the action cost and
report user response time and the read-your-writes staleness window for
both update modes, plus whether a probe read issued right at the ack
sees the aggregate.
"""

from __future__ import annotations

from repro.bench.metrics import LatencyRecorder
from repro.bench.report import ExperimentReport
from repro.core.transaction import TransactionManager, UpdateMode
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta
from repro.sim.scheduler import Simulator

TRANSACTIONS = 50
COMMIT_COST = 1.0
DEFER_LAG = 1.0


def run_mode(update_mode: UpdateMode, action_cost: float) -> dict[str, float]:
    sim = Simulator(seed=1)
    store = LSDBStore(clock=lambda: sim.now)
    manager = TransactionManager(
        store, sim=sim, update_mode=update_mode,
        commit_cost=COMMIT_COST, defer_lag=DEFER_LAG,
    )
    response = LatencyRecorder("response")
    staleness = LatencyRecorder("staleness")
    stale_probe_hits = 0

    for index in range(TRANSACTIONS):
        tx = manager.begin()
        tx.insert("order", f"o{index}", {"total": 10})
        tx.defer(
            "aggregate",
            lambda s: s.apply_delta("revenue", "day", Delta.add("amount", 10)),
            cost=action_cost,
        )
        receipt = tx.commit()
        response.record(receipt.response_time)
        staleness.record(receipt.staleness_window)
        # Probe: does a read issued right at the ack see this
        # transaction's aggregate contribution?
        sim.run(until=receipt.acked_at)
        aggregate = store.get("revenue", "day")
        seen = aggregate.fields["amount"] if aggregate else 0
        if seen < 10 * (index + 1):
            stale_probe_hits += 1
        sim.run()  # drain the deferred actions before the next user op

    return {
        "mean_response": response.mean,
        "p99_response": response.p99,
        "mean_staleness_window": staleness.mean,
        "stale_read_fraction": stale_probe_hits / TRANSACTIONS,
    }


def sweep() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E2",
        title="Deferred vs synchronous secondary updates",
        claim=(
            "deferred updates cut user response time to the descriptor "
            "commit but open a read-your-writes staleness window; "
            "synchronous updates invert the tradeoff (2.3, 3.2)"
        ),
        headers=[
            "action_cost",
            "deferred_resp",
            "sync_resp",
            "deferred_staleness",
            "deferred_stale_reads",
            "sync_stale_reads",
        ],
        notes=(
            "deferred response time is flat in action cost; synchronous "
            "response grows linearly; stale reads occur only in deferred mode"
        ),
    )
    for action_cost in (1.0, 2.0, 5.0, 10.0, 20.0):
        deferred = run_mode(UpdateMode.DEFERRED, action_cost)
        synchronous = run_mode(UpdateMode.SYNCHRONOUS, action_cost)
        report.add_row(
            action_cost,
            deferred["mean_response"],
            synchronous["mean_response"],
            deferred["mean_staleness_window"],
            deferred["stale_read_fraction"],
            synchronous["stale_read_fraction"],
        )
    return report


def test_e02_deferred_updates(benchmark):
    deferred = benchmark(run_mode, UpdateMode.DEFERRED, 10.0)
    synchronous = run_mode(UpdateMode.SYNCHRONOUS, 10.0)
    # Deferred mode responds faster...
    assert deferred["mean_response"] < synchronous["mean_response"]
    # ...but exposes stale reads, which synchronous mode never does.
    assert deferred["stale_read_fraction"] == 1.0
    assert synchronous["stale_read_fraction"] == 0.0
    assert deferred["mean_staleness_window"] > 0


if __name__ == "__main__":
    sweep().print()
