"""Isolation benchmark: the anomaly scorecard, executed.

ISSUE 9's tentpole adds ``IsolationLevel.{SNAPSHOT, NMSI}`` between
solipsistic commits and serializable OCC.  This module runs the
``repro.isolation`` harness and records the two claims that justify
the spectrum:

* **The anomaly matrix matches theory exactly** — every canned history
  (dirty read, read skew, lost update, write skew, long fork,
  non-monotonic snapshot) runs under every mode; the
  ``AnomalyDetector``'s verdicts must equal
  ``repro.isolation.scorecard.THEORY`` cell for cell.  Serializable
  admits nothing; SI admits exactly write skew; NMSI additionally
  admits long forks and non-monotonic snapshots while still forbidding
  lost updates; solipsistic loses updates outright.
* **SI is cheaper than serializable under load** — the open-loop
  arrival schedule (hot key + read-only mix) prices each mode: SI's
  abort rate and commit latency must stay within bounds relative to
  serializable, solipsistic must demonstrably lose updates (that is
  what "no aborts" costs), and no snapshot level may lose any.

``benchmarks/perf_gate.py`` validates the committed artefact
``BENCH_isolation.json``; the artefact is byte-deterministic, so CI
also double-runs the scorecard and diffs (``--check-determinism``).

Usage::

    python benchmarks/bench_isolation.py                  # full run
    python benchmarks/bench_isolation.py --quick          # CI smoke
    python benchmarks/bench_isolation.py --check-determinism
    python benchmarks/bench_isolation.py --trajectory-out BENCH_isolation.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.report import ExperimentReport  # noqa: E402
from repro.isolation import scorecard  # noqa: E402
from repro.isolation.scorecard import ANOMALIES, MODES  # noqa: E402

#: ISSUE 9 acceptance bounds: SI must not abort *more* than serializable
#: under the same load (that is the point of giving up write-skew
#: freedom), and its commit latency must stay comparable.
MAX_SI_ABORT_RATIO = 1.0
MAX_SI_LATENCY_RATIO = 1.25
TRANSACTIONS = 400
QUICK_TRANSACTIONS = 120


def _ratio(numerator: float, denominator: float) -> float:
    """Bounded-ratio helper: 0/0 counts as 0 (vacuously cheap), x/0 as
    infinity (never acceptable)."""
    if denominator == 0.0:
        return 0.0 if numerator == 0.0 else float("inf")
    return round(numerator / denominator, 6)


def collect(quick: bool = False) -> dict[str, Any]:
    """Run the full scorecard (matrix + per-mode load)."""
    metrics = scorecard(quick=quick)
    load = metrics["load"]
    si, serializable = load["snapshot"], load["serializable"]
    metrics["benchmark"] = "bench_isolation"
    metrics["si_vs_serializable"] = {
        "abort_ratio": _ratio(si["abort_rate"], serializable["abort_rate"]),
        "latency_ratio": _ratio(
            si["commit_latency_p95"], serializable["commit_latency_p95"]
        ),
    }
    return metrics


def trajectory(metrics: dict[str, Any]) -> dict[str, Any]:
    """The committed artefact (``BENCH_isolation.json``) with the
    acceptance block ``perf_gate.py check_isolation`` reads."""
    load = metrics["load"]
    ratios = metrics["si_vs_serializable"]
    lost = {mode: load[mode]["lost_updates"] for mode in load}
    gate_pass = (
        bool(metrics["matches_theory"])
        and ratios["abort_ratio"] <= MAX_SI_ABORT_RATIO
        and ratios["latency_ratio"] <= MAX_SI_LATENCY_RATIO
        and lost["solipsistic"] > 0
        and lost["nmsi"] == 0
        and lost["snapshot"] == 0
        and lost["serializable"] == 0
    )
    return {
        "benchmark": "bench_isolation",
        "description": (
            "The isolation spectrum, executed. matrix[mode][anomaly] "
            "records whether each canned anomaly history materialized "
            "under each IsolationLevel (with the detector's evidence); "
            "matrix must equal the published THEORY cell for cell. "
            "load prices each mode under an identical open-loop "
            "hot-key schedule: abort rate, commit latency, snapshot "
            "age, and lost_updates = committed increments minus "
            "increments reflected in final state (solipsistic's zero "
            "abort rate is paid for in lost updates; no snapshot level "
            "may lose any)."
        ),
        "config": metrics["config"],
        "matrix": metrics["matrix"],
        "theory": metrics["theory"],
        "load": load,
        "acceptance": {
            "matches_theory": metrics["matches_theory"],
            "mismatches": metrics["mismatches"],
            "si_abort_ratio": ratios["abort_ratio"],
            "max_si_abort_ratio": MAX_SI_ABORT_RATIO,
            "si_latency_ratio": ratios["latency_ratio"],
            "max_si_latency_ratio": MAX_SI_LATENCY_RATIO,
            "lost_updates": lost,
            "pass": gate_pass,
        },
    }


def check_determinism() -> bool:
    """Two quick scorecard runs must serialize byte-identically."""
    first = json.dumps(collect(quick=True), sort_keys=True)
    second = json.dumps(collect(quick=True), sort_keys=True)
    ok = first == second
    print(f"determinism: {'PASS' if ok else 'FAIL'}")
    if not ok:
        print(f"  run 1: {first[:400]}...")
        print(f"  run 2: {second[:400]}...")
    return ok


def sweep() -> ExperimentReport:
    """The ``run_all.py`` entry point."""
    metrics = collect(quick=True)
    ratios = metrics["si_vs_serializable"]
    report = ExperimentReport(
        experiment_id="ISO",
        title="Isolation spectrum: anomalies admitted vs price paid",
        claim=(
            "between solipsistic commits and serializability sit SI and "
            "NMSI: fewer aborts than OCC, no lost updates, and exactly "
            "the anomalies the theory admits (2.10, NMSI paper)"
        ),
        headers=[
            "mode", "anomalies", "abort_rate", "lost_updates", "latency_p95"
        ],
        notes=(
            f"matrix matches theory: {metrics['matches_theory']}; "
            f"SI/serializable abort ratio {ratios['abort_ratio']} "
            f"(gate <= {MAX_SI_ABORT_RATIO}), latency ratio "
            f"{ratios['latency_ratio']} (gate <= {MAX_SI_LATENCY_RATIO})"
        ),
    )
    for mode in MODES:
        row = metrics["load"][mode.value]
        admitted = [
            anomaly for anomaly in ANOMALIES
            if metrics["matrix_bools"][mode.value][anomaly]
        ]
        report.add_row(
            mode.value,
            ",".join(admitted) or "none",
            row["abort_rate"],
            row["lost_updates"],
            row["commit_latency_p95"],
        )
    return report


def test_scorecard_matches_theory(benchmark):
    metrics = benchmark(collect, True)
    assert metrics["matches_theory"], metrics["mismatches"]
    load = metrics["load"]
    # Solipsism's zero abort rate is bought with lost updates; every
    # stronger level must lose none.
    assert load["solipsistic"]["lost_updates"] > 0
    for mode in ("nmsi", "snapshot", "serializable"):
        assert load[mode]["lost_updates"] == 0, mode
    ratios = metrics["si_vs_serializable"]
    assert ratios["abort_ratio"] <= MAX_SI_ABORT_RATIO
    assert ratios["latency_ratio"] <= MAX_SI_LATENCY_RATIO


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small CI sizes")
    parser.add_argument("--check-determinism", action="store_true",
                        help="run the scorecard twice and diff the JSON")
    parser.add_argument("--json-out", type=str, default="", metavar="PATH",
                        help="write raw metrics as JSON to PATH")
    parser.add_argument("--trajectory-out", type=str, default="", metavar="PATH",
                        help="write the artefact (BENCH_isolation.json) to PATH")
    parser.add_argument("--label", type=str, default="run",
                        help="label stored in the JSON meta block")
    args = parser.parse_args()

    if args.check_determinism and not check_determinism():
        raise SystemExit(1)

    metrics = collect(quick=args.quick)
    payload = {
        "meta": {
            "label": args.label,
            "quick": args.quick,
            "python": sys.version.split()[0],
        },
        "metrics": metrics,
    }
    if args.json_out:
        pathlib.Path(args.json_out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.trajectory_out:
        pathlib.Path(args.trajectory_out).write_text(
            json.dumps(trajectory(metrics), indent=2) + "\n", encoding="utf-8"
        )
    print(f"matrix matches theory: {metrics['matches_theory']}")
    for mismatch in metrics["mismatches"]:
        print(f"  MISMATCH {mismatch}")
    header = "anomalies admitted"
    print(f"{'mode':<14} {header:<42} abort%  lost  latency_p95")
    for mode in MODES:
        row = metrics["load"][mode.value]
        admitted = [
            anomaly for anomaly in ANOMALIES
            if metrics["matrix_bools"][mode.value][anomaly]
        ]
        print(
            f"{mode.value:<14} {','.join(admitted) or 'none':<42} "
            f"{row['abort_rate']:>6.1%} {row['lost_updates']:>5d}  "
            f"{row['commit_latency_p95']:g}"
        )
    ratios = metrics["si_vs_serializable"]
    print(
        f"SI vs serializable: abort ratio {ratios['abort_ratio']} "
        f"(gate <= {MAX_SI_ABORT_RATIO}), latency ratio "
        f"{ratios['latency_ratio']} (gate <= {MAX_SI_LATENCY_RATIO})"
    )


if __name__ == "__main__":
    main()
