"""E1 — Availability under partition: eventual vs strong replication.

Paper claim (section 1, principle 2.11): eventually consistent
replication keeps business services available through network
partitions; strongly consistent replication must refuse operations that
cannot reach the other side (CAP).

Scenario: clients submit writes at a steady rate over a 120-unit window;
a partition splits the replicas for ``duration`` units in the middle.
Three schemes handle the same workload:

* ``active/active`` — subjective writes at either replica (eventual);
* ``quorum``        — majority-quorum writes (strong);
* ``sync-backup``   — commit waits for the backup's ack (strong
  durability).

Metric: fraction of writes *issued during the partition* that succeed.
"""

from __future__ import annotations

from repro.bench.metrics import AvailabilityProbe
from repro.bench.report import ExperimentReport
from repro.core.policy import TimeoutPolicy
from repro.merge.deltas import Delta
from repro.replication import ActiveActiveGroup, QuorumGroup, SyncPrimaryBackup
from repro.sim.network import Network
from repro.sim.scheduler import Simulator

WINDOW = 120.0
PARTITION_START = 30.0
WRITE_INTERVAL = 2.0
LATENCY = 2.0


def _arrival_times():
    count = int(WINDOW / WRITE_INTERVAL)
    return [WRITE_INTERVAL * index for index in range(1, count)]


def run_active_active(partition_duration: float, seed: int = 0) -> float:
    sim = Simulator(seed=seed)
    net = Network(sim, latency=LATENCY)
    group = ActiveActiveGroup(sim, net, ["r1", "r2"], anti_entropy_interval=10.0)
    probe = AvailabilityProbe()
    partition_end = PARTITION_START + partition_duration

    if partition_duration > 0:
        sim.schedule_at(PARTITION_START, lambda: net.partition_into({"r1"}, {"r2"}))
        sim.schedule_at(partition_end, net.heal)

    for index, at in enumerate(_arrival_times()):
        replica = "r1" if index % 2 == 0 else "r2"

        def write(bound_replica=replica, bound_at=at):
            during = PARTITION_START <= bound_at < partition_end
            group.write_delta(bound_replica, "stock", "w", Delta.add("n", 1))
            probe.record(True, during_failure=during)  # subjective: always accepted

        sim.schedule_at(at, write)
    sim.run(until=WINDOW + 200.0)
    return probe.availability_during_failure


def run_quorum(partition_duration: float, seed: int = 0) -> float:
    sim = Simulator(seed=seed)
    net = Network(sim, latency=LATENCY)
    group = QuorumGroup(
        sim, net, ["q1", "q2", "q3"], timeout=TimeoutPolicy(per_attempt=20.0)
    )
    probe = AvailabilityProbe()
    partition_end = PARTITION_START + partition_duration

    if partition_duration > 0:
        sim.schedule_at(
            PARTITION_START,
            lambda: net.partition_into({"quorum-coordinator", "q1"}, {"q2", "q3"}),
        )
        sim.schedule_at(partition_end, net.heal)

    for at in _arrival_times():
        def write(bound_at=at):
            during = PARTITION_START <= bound_at < partition_end
            group.write(
                "stock", "w", {"n": 1},
                on_done=lambda outcome, d=during: probe.record(
                    outcome.ok, during_failure=d
                ),
            )

        sim.schedule_at(at, write)
    sim.run(until=WINDOW + 200.0)
    return probe.availability_during_failure


def run_sync_backup(partition_duration: float, seed: int = 0) -> float:
    sim = Simulator(seed=seed)
    net = Network(sim, latency=LATENCY)
    pair = SyncPrimaryBackup(sim, net, timeout=TimeoutPolicy(per_attempt=20.0))
    probe = AvailabilityProbe()
    partition_end = PARTITION_START + partition_duration

    if partition_duration > 0:
        sim.schedule_at(
            PARTITION_START,
            lambda: net.partition_into(
                {pair.primary.node_id}, {pair.backup.node_id}
            ),
        )
        sim.schedule_at(partition_end, net.heal)

    for index, at in enumerate(_arrival_times()):
        def write(bound_at=at, bound_index=index):
            during = PARTITION_START <= bound_at < partition_end
            pair.write_insert(
                "order", f"o{bound_index}", {"n": 1},
                on_done=lambda result, d=during: probe.record(
                    result.ok, during_failure=d
                ),
            )

        sim.schedule_at(at, write)
    sim.run(until=WINDOW + 200.0)
    return probe.availability_during_failure


def sweep() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E1",
        title="Availability under partition",
        claim=(
            "eventual (active/active) replication stays available through "
            "partitions; quorum and sync-backup writes fail while "
            "partitioned (CAP, sections 1 & 2.11)"
        ),
        headers=[
            "partition_duration",
            "active_active_avail",
            "quorum_avail",
            "sync_backup_avail",
        ],
        notes=(
            "availability measured over writes issued during the partition "
            "window only; 1.0 when no partition"
        ),
    )
    for duration in (0.0, 20.0, 40.0, 60.0):
        report.add_row(
            duration,
            run_active_active(duration),
            run_quorum(duration),
            run_sync_backup(duration),
        )
    return report


def test_e01_availability(benchmark):
    availability = benchmark(run_active_active, 40.0)
    assert availability == 1.0  # the eventual scheme never refuses
    assert run_quorum(40.0) < 0.5  # strong schemes lose availability
    assert run_sync_backup(40.0) < 0.5


if __name__ == "__main__":
    sweep().print()
