"""Core hot-path microbenchmarks: append, fold, feeds, scheduler.

The ROADMAP's north star is a system that runs "as fast as the hardware
allows" under simulated millions-of-users traffic.  The three paths that
dominate every experiment are:

* the **append path** (log append + incremental rollup fold),
* the **log feeds** replication and indexes catch up from
  (``events_since`` / ``events_from_origin`` / ``for_entity``),
* the **discrete-event loop** every scenario runs on.

This module measures all of them with wall-clock microbenchmarks and can
emit machine-readable JSON.  ``benchmarks/perf_gate.py`` compares a
fresh run against the committed baseline in ``BENCH_core_hotpaths.json``
so hot-path regressions fail loudly instead of silently accreting.

Usage::

    python benchmarks/bench_core_hotpaths.py               # full run
    python benchmarks/bench_core_hotpaths.py --quick       # CI smoke
    python benchmarks/bench_core_hotpaths.py --json-out out.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Any, Callable

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.report import ExperimentReport  # noqa: E402
from repro.lsdb.events import EventKind, LogEvent  # noqa: E402
from repro.lsdb.rollup import Rollup  # noqa: E402
from repro.lsdb.store import LSDBStore  # noqa: E402
from repro.merge.deltas import Delta  # noqa: E402
from repro.sim.rng import SeededRNG  # noqa: E402
from repro.sim.scheduler import Simulator  # noqa: E402

ENTITIES = 50
FIELDS_PER_ENTITY = 10


def best_of(repeats: int, fn: Callable[[], Any]) -> float:
    """Smallest wall-clock seconds over ``repeats`` runs of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def make_delta_events(count: int, seed: int = 0) -> list[LogEvent]:
    """``count`` delta events over wide (10-field) entities."""
    rng = SeededRNG(seed)
    events = []
    for index in range(ENTITIES):
        fields = {f"f{f}": 0 for f in range(FIELDS_PER_ENTITY)}
        events.append(
            LogEvent(
                lsn=0, timestamp=0.0, entity_type="acct", entity_key=f"a{index}",
                kind=EventKind.INSERT, payload=fields,
                origin="local", origin_seq=index + 1,
            )
        )
    for index in range(count):
        key = f"a{rng.randint(0, ENTITIES - 1)}"
        field = f"f{rng.randint(0, FIELDS_PER_ENTITY - 1)}"
        payload = Delta.add(field, rng.randint(-5, 5)).to_payload()
        events.append(
            LogEvent(
                lsn=0, timestamp=float(index), entity_type="acct", entity_key=key,
                kind=EventKind.DELTA, payload=payload,
                origin="local", origin_seq=ENTITIES + index + 1,
            )
        )
    return events


def build_store(count: int, snapshot_interval: int = 0, seed: int = 0) -> LSDBStore:
    store = LSDBStore(snapshot_interval=snapshot_interval)
    rng = SeededRNG(seed)
    for index in range(ENTITIES):
        store.insert("acct", f"a{index}", {f"f{f}": 0 for f in range(FIELDS_PER_ENTITY)})
    for _ in range(count):
        key = f"a{rng.randint(0, ENTITIES - 1)}"
        field = f"f{rng.randint(0, FIELDS_PER_ENTITY - 1)}"
        store.apply_delta("acct", key, Delta.add(field, rng.randint(-5, 5)))
    return store


# --------------------------------------------------------------------- #
# Individual benchmarks (each returns a metric dict)
# --------------------------------------------------------------------- #


def bench_append_throughput(count: int) -> float:
    """Local-write path: log append + incremental fold, events/sec."""

    def run() -> None:
        build_store(count)

    seconds = best_of(2, run)
    return count / seconds


def bench_fold_throughput(count: int) -> float:
    """Pure rollup fold over a prebuilt event list, events/sec.

    This isolates the reducer cost the append path pays per event
    (the copy-on-snapshot optimization target).
    """
    events = make_delta_events(count)
    rollup = Rollup()

    seconds = best_of(3, lambda: rollup.fold(events))
    return count / seconds


def bench_incremental_read(count: int, interval: int = 1_000) -> float:
    """Snapshot + suffix-replay read latency on a long log, ms/read."""
    store = build_store(count, snapshot_interval=interval)
    head = store.log.head_lsn
    seconds = best_of(5, lambda: store.state_as_of(head))
    return seconds * 1000.0


def bench_feed_catchup(count: int, backlog: int = 16) -> dict[str, float]:
    """Catch-up feeds near the head of a ``count``-event log, ops/sec.

    A caught-up subscriber (replica, index, warehouse) repeatedly asks
    for the tiny suffix it is missing; the feed cost must scale with the
    answer, not with the log.
    """
    store = build_store(count)
    head_lsn = store.log.head_lsn
    head_seq = ENTITIES + count
    repeats = 30

    def since_loop() -> None:
        for _ in range(repeats):
            store.events_since(head_lsn - backlog)

    def origin_loop() -> None:
        for _ in range(repeats):
            store.events_from_origin("local", head_seq - backlog)

    def entity_loop() -> None:
        for _ in range(repeats):
            store.log.for_entity("acct", "a7")

    return {
        "events_since_ops": repeats / best_of(3, since_loop),
        "events_from_origin_ops": repeats / best_of(3, origin_loop),
        "for_entity_ops": repeats / best_of(3, entity_loop),
    }


def bench_scheduler(sizes: tuple[int, ...]) -> dict[str, float]:
    """Discrete-event loop throughput, events fired per second."""
    results: dict[str, float] = {}
    for size in sizes:
        def run() -> None:
            sim = Simulator()
            action = lambda: None  # noqa: E731 - minimal callback
            for index in range(size):
                sim.schedule(float(index % 97), action)
            sim.run()

        seconds = best_of(2, run)
        results[str(size)] = size / seconds
    return results


def bench_scheduler_pending(size: int = 10_000, probes: int = 1_000) -> float:
    """Cost of the ``pending`` introspection probe, ops/sec."""
    sim = Simulator()
    for index in range(size):
        sim.schedule(float(index), lambda: None)

    def run() -> None:
        for _ in range(probes):
            sim.pending  # noqa: B018 - the property itself is the workload

    return probes / best_of(3, run)


# --------------------------------------------------------------------- #
# Harness
# --------------------------------------------------------------------- #


def collect(quick: bool = False) -> dict[str, Any]:
    """Run every microbenchmark and return the metric map."""
    store_events = 10_000 if quick else 100_000
    fold_events = 10_000 if quick else 100_000
    scheduler_sizes = (10_000,) if quick else (10_000, 100_000, 1_000_000)

    metrics: dict[str, Any] = {}
    metrics["append_throughput_eps"] = bench_append_throughput(store_events)
    metrics["fold_throughput_eps"] = bench_fold_throughput(fold_events)
    metrics["incremental_read_ms"] = bench_incremental_read(store_events)
    metrics.update(
        {f"feed_{k}": v for k, v in bench_feed_catchup(store_events).items()}
    )
    scheduler = bench_scheduler(scheduler_sizes)
    metrics["scheduler_eps"] = scheduler
    metrics["scheduler_eps_largest"] = scheduler[str(scheduler_sizes[-1])]
    metrics["scheduler_pending_ops"] = bench_scheduler_pending()
    metrics["_sizes"] = {
        "store_events": store_events,
        "fold_events": fold_events,
        "scheduler_sizes": list(scheduler_sizes),
    }
    return metrics


def sweep(quick: bool = False) -> ExperimentReport:
    """Report view, consistent with the E-suite artefacts."""
    metrics = collect(quick=quick)
    report = ExperimentReport(
        experiment_id="HOT",
        title="core hot paths: append fold, log feeds, event loop",
        claim=(
            "the rollup is an incrementally maintained aggregation and "
            "catch-up feeds are O(result), so the simulated system runs "
            "as fast as the hardware allows (ROADMAP north star, paper 3.1)"
        ),
        headers=["metric", "value"],
        notes=(
            "events/sec for throughputs, ops/sec for feed probes, "
            "milliseconds for the snapshot read"
        ),
    )
    for key in (
        "append_throughput_eps",
        "fold_throughput_eps",
        "incremental_read_ms",
        "feed_events_since_ops",
        "feed_events_from_origin_ops",
        "feed_for_entity_ops",
        "scheduler_eps_largest",
        "scheduler_pending_ops",
    ):
        report.add_row(key, metrics[key])
    return report


def test_core_hotpaths(benchmark):
    """Feed catch-up near the head must not scan the log (perf smoke)."""
    store = build_store(5_000)
    head_lsn = store.log.head_lsn
    suffix = benchmark(lambda: store.events_since(head_lsn - 16))
    assert len(suffix) == 16
    # The indexed feed and a full scan must agree on the answer.
    scan = [event for event in store.log.events() if event.lsn > head_lsn - 16]
    assert [event.lsn for event in suffix] == [event.lsn for event in scan]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small CI sizes")
    parser.add_argument("--json-out", type=str, default="", metavar="PATH",
                        help="write raw metrics as JSON to PATH")
    parser.add_argument("--label", type=str, default="run",
                        help="label stored in the JSON meta block")
    args = parser.parse_args()

    metrics = collect(quick=args.quick)
    payload = {
        "meta": {
            "label": args.label,
            "quick": args.quick,
            "python": sys.version.split()[0],
        },
        "metrics": metrics,
    }
    if args.json_out:
        pathlib.Path(args.json_out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    for key, value in sorted(metrics.items()):
        if key.startswith("_"):
            continue
        print(f"{key:32s} {value}")


if __name__ == "__main__":
    main()
