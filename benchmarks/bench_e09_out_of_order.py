"""E9 — Out-of-order data entry and eventual constraint repair.

Paper claim (principles 2.1/2.2): "In practice, data might not be
received (or even determined) before data that references it. [...] the
DMS should not bureaucratically prevent data entry.  Instead, a
transaction should be able to enter what's known 'now'. [...] The
constraint still exists, but its violations are handled, rather than
prevented."

Scenario: ``CHAINS`` CRM chains (customer → lead → opportunity →
sales order) arrive shuffled within a sliding ``window``; window 1 is
perfectly ordered, larger windows let children arrive before their
parents.  After every arrival a repair pass runs (the scheduled process
step of principle 2.2).  We report how many violations were recorded,
that **every** entry committed, the fraction of violations eventually
repaired (always 1.0), and the mean time-to-repair in arrival slots.
"""

from __future__ import annotations

from repro.apps.crm import CRMApp
from repro.bench.report import ExperimentReport
from repro.bench.workloads import shuffled_within_window
from repro.core.constraints import ConstraintManager
from repro.core.transaction import TransactionManager
from repro.lsdb.store import LSDBStore
from repro.sim.rng import SeededRNG

CHAINS = 50


def run_disorder(window: int, seed: int = 0) -> dict[str, float]:
    clock = {"now": 0.0}
    store = LSDBStore()
    constraints = ConstraintManager(store, clock=lambda: clock["now"])
    crm = CRMApp(TransactionManager(store, constraints=constraints))

    entries = []
    for index in range(CHAINS):
        entries.extend([
            ("customer", index),
            ("lead", index),
            ("opportunity", index),
            ("order", index),
        ])
    entries = shuffled_within_window(SeededRNG(seed), entries, window)

    committed = 0
    for slot, (kind, index) in enumerate(entries):
        clock["now"] = float(slot)
        if kind == "customer":
            receipt = crm.enter_customer(f"c{index}", f"Company {index}")
        elif kind == "lead":
            receipt = crm.enter_lead(f"l{index}", f"c{index}")
        elif kind == "opportunity":
            receipt = crm.qualify_lead(f"opp{index}", f"l{index}", f"c{index}")
        else:
            receipt = crm.win_opportunity(f"so{index}", f"opp{index}")
        assert receipt.committed  # entry is never refused
        committed += 1
        crm.repair_pass()
    clock["now"] = float(len(entries))
    crm.repair_pass()
    metrics = crm.metrics()
    return {
        "entries_committed": float(committed),
        "violations_recorded": float(metrics.total_violations),
        "repair_rate": metrics.repair_rate,
        "open_after": float(metrics.open_violations),
        "mean_time_to_repair": metrics.mean_time_to_repair or 0.0,
    }


def sweep() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E9",
        title="Out-of-order entry: managed violations and repair",
        claim=(
            "arrival disorder creates transient referential violations "
            "that grow with the disorder window; no entry is ever "
            "refused, and every violation repairs once the referent "
            "arrives (2.1/2.2)"
        ),
        headers=[
            "disorder_window",
            "entries_committed",
            "violations_recorded",
            "repair_rate",
            "open_after_all_arrivals",
            "mean_slots_to_repair",
        ],
        notes=(
            "time-to-repair is measured in arrival slots; it scales with "
            "the disorder window because that bounds how early a child "
            "can precede its parent"
        ),
    )
    for window in (1, 2, 4, 8, 16, 32, 64):
        metrics = run_disorder(window)
        report.add_row(
            window,
            metrics["entries_committed"],
            metrics["violations_recorded"],
            metrics["repair_rate"],
            metrics["open_after"],
            metrics["mean_time_to_repair"],
        )
    return report


def test_e09_out_of_order(benchmark):
    disordered = benchmark(run_disorder, 16)
    ordered = run_disorder(1)
    # In-order entry never violates.
    assert ordered["violations_recorded"] == 0
    # Disorder violates transiently, commits everything, repairs fully.
    assert disordered["violations_recorded"] > 0
    assert disordered["entries_committed"] == 4 * CHAINS
    assert disordered["repair_rate"] == 1.0
    assert disordered["open_after"] == 0
    # Violation counts saturate once chains are fully shuffled, but the
    # damage *duration* keeps growing: a child can precede its parent by
    # up to window-1 slots, so time-to-repair scales with the window.
    assert run_disorder(64)["mean_time_to_repair"] > disordered[
        "mean_time_to_repair"
    ]


if __name__ == "__main__":
    sweep().print()
