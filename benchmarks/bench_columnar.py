"""Columnar-log benchmarks: event creation, vectorized fold, frame codec.

PR 6's tentpole re-architects the LSDB around a columnar event log:
:class:`~repro.lsdb.columnar.EventColumns` stores events as parallel
arrays with interned strings, :class:`~repro.lsdb.columnar.EventSlice`
defers :class:`~repro.lsdb.events.LogEvent` materialization to API
boundaries, and :class:`~repro.lsdb.columnar.ColumnFrame` ships
replication batches as column slices.  This module measures the three
headline claims and two context numbers:

* **event creation** — appending from loose fields straight into the
  column arena vs constructing a ``LogEvent`` and re-stamping its LSN
  (the pre-columnar append path); gated at >=3x;
* **fold throughput** — the grouped columnar fold
  (``Rollup.fold(slice)``) vs the per-event ``fold_into`` loop over a
  materialized event list; gated at >=2x;
* **frame codec** — encode (``ColumnFrame.from_slice``) + decode
  (``AppendOnlyLog.extend_frame``) of a whole log vs per-event append
  of materialized events, plus a byte-for-byte round-trip equality
  check the gate requires to hold;
* **shard parallel fold** — ``fold_shards_parallel`` over independent
  shard slices vs folding them sequentially (recorded, not gated: the
  workers are GIL-bound threads);
* **ingest context** — store-level write throughput and raw
  ``append_row`` throughput, for the trajectory record.

``benchmarks/perf_gate.py`` validates the committed trajectory file
``BENCH_columnar.json`` (>=3x create, >=2x fold, codec round-trip
equality).

Usage::

    python benchmarks/bench_columnar.py                  # full run
    python benchmarks/bench_columnar.py --quick          # CI smoke
    python benchmarks/bench_columnar.py --check-determinism
    python benchmarks/bench_columnar.py --json-out out.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Optional

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from bench_dataplane import best_of, check_determinism, populate  # noqa: E402
from repro.bench.report import ExperimentReport  # noqa: E402
from repro.lsdb.columnar import ColumnFrame, EventColumns  # noqa: E402
from repro.lsdb.events import EventKind, LogEvent  # noqa: E402
from repro.lsdb.log import AppendOnlyLog  # noqa: E402
from repro.lsdb.rollup import Rollup, fold_shards_parallel  # noqa: E402
from repro.lsdb.store import LSDBStore  # noqa: E402
from repro.replication.batching import BatchPolicy  # noqa: E402
from repro.sim.rng import SeededRNG  # noqa: E402

ENTITIES = 50
FIELDS_PER_ENTITY = 10

_PAYLOAD: dict = {"f0": 1}
_KEYS = tuple(f"a{index}" for index in range(ENTITIES))
_TAGS: frozenset = frozenset()


# --------------------------------------------------------------------- #
# Event creation: arena append vs LogEvent construction + LSN stamp
# --------------------------------------------------------------------- #


def bench_create(count: int) -> dict[str, float]:
    """Events/sec creating ``count`` events, object path vs column path.

    *Before* is the pre-columnar append: construct a ``LogEvent`` from
    loose fields, then ``with_lsn`` re-stamps it (a second construction)
    — two frozen-dataclass instantiations per event.  *After* is
    :meth:`EventColumns.append_row` with the same field values: a few
    array appends and one dictionary probe, no event object at all.
    """

    def create_objects() -> None:
        for index in range(count):
            LogEvent(
                0, float(index), "acct", _KEYS[index % ENTITIES],
                EventKind.DELTA, _PAYLOAD, "local", index + 1, "", 1,
                _TAGS, "", "",
            ).with_lsn(index + 1)

    def create_rows() -> None:
        cols = EventColumns()
        append_row = cols.append_row
        for index in range(count):
            append_row(
                index + 1, float(index), "acct", _KEYS[index % ENTITIES],
                EventKind.DELTA, _PAYLOAD, "local", index + 1,
            )

    return {
        "event_create_eps_before": count / best_of(3, create_objects),
        "event_create_eps_after": count / best_of(3, create_rows),
    }


# --------------------------------------------------------------------- #
# Fold throughput: grouped columnar fold vs per-event loop
# --------------------------------------------------------------------- #


def _mixed_log(deltas: int, seed: int = 3) -> AppendOnlyLog:
    """A log of ``ENTITIES`` inserts followed by ``deltas`` mixed
    delta/set events — the rollup workload shape the store produces."""
    rng = SeededRNG(seed)
    log = AppendOnlyLog()
    for index in range(ENTITIES):
        log.append_row(
            0.0, "acct", _KEYS[index], EventKind.INSERT,
            {f"f{f}": 0 for f in range(FIELDS_PER_ENTITY)},
        )
    for index in range(deltas):
        key = _KEYS[rng.randint(0, ENTITIES - 1)]
        field = f"f{rng.randint(0, FIELDS_PER_ENTITY - 1)}"
        if index % 10 == 9:
            log.append_row(
                float(index), "acct", key, EventKind.SET_FIELDS,
                {field: rng.randint(0, 100)},
            )
        else:
            log.append_row(
                float(index), "acct", key, EventKind.DELTA,
                {"numeric": {field: rng.randint(-5, 5)}},
            )
    return log


def bench_fold(deltas: int) -> dict[str, float]:
    """Events/sec folding one log into a state map, loop vs grouped.

    *Before* is the pre-columnar rollup read: the per-event
    ``fold_into`` loop over an (already materialized) event list.
    *After* is ``Rollup.fold`` handed the log's :class:`EventSlice`,
    which groups rows by entity and folds each run in place.  The two
    state maps are checked equal before timing is trusted.
    """
    log = _mixed_log(deltas)
    view = log.events()
    total = len(view)
    events = list(view)  # the before-world already held event objects
    rollup = Rollup()

    def fold_loop() -> dict:
        states: dict = {}
        fold_into = rollup.fold_into
        for event in events:
            fold_into(states, event)
        return states

    before_states = fold_loop()
    after_states = rollup.fold(view)
    if before_states.keys() != after_states.keys() or any(
        before_states[ref].fields != after_states[ref].fields
        or before_states[ref].event_count != after_states[ref].event_count
        for ref in before_states
    ):
        raise AssertionError("grouped fold disagrees with per-event fold")

    return {
        "fold_events": float(total),
        "fold_eps_before": total / best_of(3, fold_loop),
        "fold_eps_after": total / best_of(3, lambda: rollup.fold(view)),
    }


# --------------------------------------------------------------------- #
# Frame codec: column-slice encode/decode vs per-event re-append
# --------------------------------------------------------------------- #


def bench_frame_codec(
    deltas: int, max_batch: int = 256
) -> dict[str, Any]:
    """Events/sec moving a whole log into a fresh one, frames vs events.

    *Before* is the legacy receive path's core: append each
    materialized event to the destination log one at a time.  *After*
    cuts the source slice into contiguous runs, encodes each as a
    :class:`ColumnFrame` and bulk-decodes with ``extend_frame`` — the
    wire codec the replication layer now uses.  Round-trip equality is
    checked event-by-event (and reported for the perf gate).
    """
    log = _mixed_log(deltas)
    view = log.events()
    total = len(view)
    policy = BatchPolicy(max_batch=max_batch)
    events = list(view)

    def ship_objects() -> AppendOnlyLog:
        destination = AppendOnlyLog()
        append = destination.append
        for event in events:
            append(event)
        return destination

    def ship_frames() -> AppendOnlyLog:
        destination = AppendOnlyLog()
        for chunk in policy.chunk_rows(view):
            frame = ColumnFrame.from_slice(chunk)
            destination.extend_frame(frame, 0, len(chunk))
        return destination

    decoded = ship_frames()
    roundtrip_equal = list(decoded.events()) == events

    return {
        "frame_codec_events": float(total),
        "frame_codec_eps_before": total / best_of(3, ship_objects),
        "frame_codec_eps_after": total / best_of(3, ship_frames),
        "frame_codec_roundtrip_equal": bool(roundtrip_equal),
    }


# --------------------------------------------------------------------- #
# Parallel shard fold (recorded, not gated)
# --------------------------------------------------------------------- #


def bench_shards(deltas_per_shard: int, shards: int = 4) -> dict[str, float]:
    """Sequential vs threaded fold of independent shard slices.

    Each shard is its own serialization unit (own log, disjoint keys),
    so the folds share nothing.  The workers are GIL-bound threads; the
    measured ratio is context, not a gate.
    """
    views = [
        _mixed_log(deltas_per_shard, seed=100 + shard).events()
        for shard in range(shards)
    ]
    rollup = Rollup()
    total = sum(len(view) for view in views)
    sequential = best_of(3, lambda: [rollup.fold(view) for view in views])
    threaded = best_of(3, lambda: fold_shards_parallel(rollup, views))
    return {
        "shard_fold_events": float(total),
        "shard_fold_eps_sequential": total / sequential,
        "shard_fold_eps_parallel": total / threaded,
        "shard_parallel_ratio": sequential / threaded,
    }


# --------------------------------------------------------------------- #
# Ingest context numbers
# --------------------------------------------------------------------- #


def bench_ingest(deltas: int) -> dict[str, float]:
    """Store-level and raw-log ingest throughput (context for the
    trajectory; the end-to-end numbers the creation speedup feeds)."""
    total = ENTITIES + deltas

    def store_ingest() -> None:
        populate(LSDBStore(), deltas)

    def log_ingest() -> None:
        _mixed_log(deltas)

    return {
        "store_ingest_eps": total / best_of(3, store_ingest),
        "log_append_row_eps": total / best_of(3, log_ingest),
    }


# --------------------------------------------------------------------- #
# Harness
# --------------------------------------------------------------------- #


def collect(quick: bool = False) -> dict[str, Any]:
    """Run every columnar benchmark and return the metric map."""
    create_count = 20_000 if quick else 200_000
    fold_deltas = 10_000 if quick else 100_000
    codec_deltas = 10_000 if quick else 100_000
    shard_deltas = 5_000 if quick else 25_000
    ingest_deltas = 5_000 if quick else 50_000

    metrics: dict[str, Any] = {}
    metrics.update(bench_create(create_count))
    metrics.update(bench_fold(fold_deltas))
    metrics.update(bench_frame_codec(codec_deltas))
    metrics.update(bench_shards(shard_deltas))
    metrics.update(bench_ingest(ingest_deltas))

    metrics["event_create_speedup"] = (
        metrics["event_create_eps_after"] / metrics["event_create_eps_before"]
    )
    metrics["fold_speedup"] = (
        metrics["fold_eps_after"] / metrics["fold_eps_before"]
    )
    metrics["frame_codec_speedup"] = (
        metrics["frame_codec_eps_after"] / metrics["frame_codec_eps_before"]
    )
    metrics["_sizes"] = {
        "create_count": create_count,
        "fold_deltas": fold_deltas,
        "codec_deltas": codec_deltas,
        "shard_deltas": shard_deltas,
        "ingest_deltas": ingest_deltas,
    }
    return metrics


def sweep(quick: bool = False) -> ExperimentReport:
    """Report view, consistent with the E-suite artefacts."""
    metrics = collect(quick=quick)
    report = ExperimentReport(
        experiment_id="COL",
        title="columnar event log: creation, vectorized fold, frame codec",
        claim=(
            "storing events as parallel columns with interned strings "
            "makes event creation >=3x and rollup folds >=2x faster, and "
            "the column-slice frame codec round-trips byte-identically"
        ),
        headers=["metric", "value"],
        notes=(
            "events/sec throughout; *_before is the object-per-event "
            "path, *_after the columnar path; shard_parallel_ratio is "
            "GIL-bound context, not a gate"
        ),
    )
    for key in (
        "event_create_eps_before",
        "event_create_eps_after",
        "event_create_speedup",
        "fold_eps_before",
        "fold_eps_after",
        "fold_speedup",
        "frame_codec_eps_before",
        "frame_codec_eps_after",
        "frame_codec_speedup",
        "frame_codec_roundtrip_equal",
        "shard_parallel_ratio",
        "store_ingest_eps",
        "log_append_row_eps",
    ):
        report.add_row(key, metrics[key])
    return report


def test_slice_fold_matches_event_loop(benchmark):
    """The fused slice fold agrees with the per-event loop (perf smoke)."""
    log = _mixed_log(5_000)
    view = log.events()
    rollup = Rollup()
    states = benchmark(lambda: rollup.fold(view))
    loop_states: dict = {}
    for event in view:
        rollup.fold_into(loop_states, event)
    assert states.keys() == loop_states.keys()
    assert all(
        states[ref].fields == loop_states[ref].fields
        and states[ref].event_count == loop_states[ref].event_count
        and states[ref].last_lsn == loop_states[ref].last_lsn
        for ref in states
    )


def trajectory(metrics: dict[str, Any]) -> dict[str, Any]:
    """The before/after/speedup artefact ``perf_gate.py`` validates."""
    return {
        "benchmark": "bench_columnar",
        "description": (
            "Columnar-log measurements before/after PR 6. Throughputs "
            "are events/sec (higher is better); before is the "
            "object-per-event path (LogEvent construction + with_lsn, "
            "per-event fold_into, per-event re-append), after is the "
            "columnar path (EventColumns.append_row, grouped "
            "Rollup.fold over an EventSlice, ColumnFrame encode + "
            "extend_frame decode). frame_codec_roundtrip_equal asserts "
            "the codec reproduced every event byte-for-byte."
        ),
        "sizes": dict(metrics["_sizes"]),
        "before": {
            "event_create_eps": metrics["event_create_eps_before"],
            "fold_eps": metrics["fold_eps_before"],
            "frame_codec_eps": metrics["frame_codec_eps_before"],
        },
        "after": {
            "event_create_eps": metrics["event_create_eps_after"],
            "fold_eps": metrics["fold_eps_after"],
            "frame_codec_eps": metrics["frame_codec_eps_after"],
            "store_ingest_eps": metrics["store_ingest_eps"],
            "log_append_row_eps": metrics["log_append_row_eps"],
            "shard_fold_eps_sequential": metrics["shard_fold_eps_sequential"],
            "shard_fold_eps_parallel": metrics["shard_fold_eps_parallel"],
        },
        "speedup": {
            "event_create": round(metrics["event_create_speedup"], 2),
            "fold_throughput": round(metrics["fold_speedup"], 2),
            "frame_codec": round(metrics["frame_codec_speedup"], 2),
            "shard_parallel_ratio": round(metrics["shard_parallel_ratio"], 3),
            "frame_codec_roundtrip_equal":
                metrics["frame_codec_roundtrip_equal"],
        },
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small CI sizes")
    parser.add_argument("--check-determinism", action="store_true",
                        help="run the lossy batched replication scenario "
                             "(now frame-codec shipping) twice and compare "
                             "signatures")
    parser.add_argument("--json-out", type=str, default="", metavar="PATH",
                        help="write raw metrics as JSON to PATH")
    parser.add_argument("--trajectory-out", type=str, default="", metavar="PATH",
                        help="write the before/after/speedup artefact "
                             "(BENCH_columnar.json) to PATH")
    parser.add_argument("--label", type=str, default="run",
                        help="label stored in the JSON meta block")
    args = parser.parse_args()

    if args.check_determinism and not check_determinism():
        raise SystemExit(1)

    metrics = collect(quick=args.quick)
    payload = {
        "meta": {
            "label": args.label,
            "quick": args.quick,
            "python": sys.version.split()[0],
        },
        "metrics": metrics,
    }
    if args.json_out:
        pathlib.Path(args.json_out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    if args.trajectory_out:
        pathlib.Path(args.trajectory_out).write_text(
            json.dumps(trajectory(metrics), indent=2) + "\n", encoding="utf-8"
        )
    for key, value in sorted(metrics.items()):
        if key.startswith("_"):
            continue
        print(f"{key:36s} {value}")


if __name__ == "__main__":
    main()
