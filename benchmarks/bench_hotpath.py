"""Hot-path benchmark: the skew-aware read cache, priced per scenario.

ISSUE 10's tentpole claim: under skewed traffic, a watermark-validated
read cache (``repro.lsdb.readcache``) serves hot reads without
re-folding snapshot state, at **unchanged staleness bounds** — every
cache-served answer stamps honest measured staleness and zero reads are
ever served beyond their bound.  The scenario suite
(``repro.bench.scenarios``: Zipfian θ∈{0.5, 0.99}, flash crowd, diurnal
rotation) drives identical seeded schedules against two configurations:

* **baseline** — the paper's fold-on-read: every read re-folds the
  entity's event history from the log (what serving current state costs
  without a snapshot cache);
* **cached** — the same store fronted by ``ReadCache`` (plus hot-key
  write coalescing), reads via the typed BOUNDED protocol.

The committed artefact ``BENCH_hotpath.json`` separates the
**deterministic signature** (op counts, hit/miss/eviction counters,
violation counts, final-state digest — byte-identical across runs,
what ``--check-determinism`` diffs) from **wall-clock timing** (read
throughput and speedup — environment-dependent, recorded for the gate).
``perf_gate.py check_hotpath`` requires, on the θ=0.99 scenario:
read speedup ≥ 5x, hot-set hit ratio ≥ 0.8, zero stale-beyond-bound
serves.

Usage::

    python benchmarks/bench_hotpath.py                  # full run
    python benchmarks/bench_hotpath.py --quick          # CI smoke
    python benchmarks/bench_hotpath.py --check-determinism
    python benchmarks/bench_hotpath.py --trajectory-out BENCH_hotpath.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys
import time
from typing import Any

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench import scenarios  # noqa: E402
from repro.bench.report import ExperimentReport  # noqa: E402
from repro.core.readpath import ReadRequest  # noqa: E402
from repro.lsdb.readcache import ReadCache  # noqa: E402
from repro.lsdb.store import LSDBStore  # noqa: E402
from repro.merge.deltas import Delta  # noqa: E402

#: ISSUE 10 acceptance bounds (the θ=0.99 headline scenario).
MIN_READ_SPEEDUP = 5.0
MIN_HOT_HIT_RATIO = 0.8
GATE_SCENARIO = "zipf_hot"
#: Staleness bound every cached read runs under (virtual time units).
STALENESS_BOUND = 20.0
SEED = 42
QUICK_SCALE = 0.08
#: Full-run scale: the whole scenario as registered (the committed
#: artefact; CI smoke uses --quick).
FULL_SCALE = 1.0


def _digest(store: LSDBStore) -> str:
    """Order-independent digest of the store's final folded state."""
    items = sorted(
        (ref, sorted(state.fields.items()))
        for ref, state in store.current_state().items()
    )
    return hashlib.sha256(repr(items).encode()).hexdigest()[:16]


def _run_baseline(spec, ops) -> dict[str, Any]:
    """Fold-on-read: every read folds the entity's history from the log."""
    clock = [0.0]
    store = LSDBStore(name="base", origin="bench", clock=lambda: clock[0])
    read_seconds = 0.0
    reads = writes = 0
    for op in ops:
        clock[0] = op.at
        if op.kind == "write":
            store.apply_delta("entity", op.key, Delta.add("value", 1))
            writes += 1
        else:
            start = time.perf_counter()
            folded = store.rollup.fold(store.log.for_entity("entity", op.key))
            folded.get(("entity", op.key))
            read_seconds += time.perf_counter() - start
            reads += 1
    return {
        "reads": reads,
        "writes": writes,
        "digest": _digest(store),
        "read_seconds": read_seconds,
    }


def _run_cached(spec, ops) -> dict[str, Any]:
    """The hot path: ReadCache + write coalescing, typed BOUNDED reads."""
    clock = [0.0]
    store = LSDBStore(name="hot", origin="bench", clock=lambda: clock[0])
    cache = ReadCache.over_store(store, capacity=1024, hot_capacity=32)
    store.enable_coalescing(window=2.0, max_batch=64)
    request = ReadRequest.bounded(STALENESS_BOUND)
    read_seconds = 0.0
    reads = writes = violations = 0
    hot_reads = hot_hits = 0
    hot_sets: dict[Any, frozenset[str]] = {}  # memoised per phase
    for op in ops:
        clock[0] = op.at
        if op.kind == "write":
            store.apply_delta("entity", op.key, Delta.add("value", 1))
            writes += 1
            continue
        phase = spec.phase_key(op.at)
        hot_set = hot_sets.get(phase)
        if hot_set is None:
            hot_set = frozenset(spec.hot_keys_at(op.at))
            hot_sets[phase] = hot_set
        hot_now = op.key in hot_set and ("entity", op.key) in cache
        hits_before = cache.hits
        start = time.perf_counter()
        result = store.read("entity", op.key, request=request)
        read_seconds += time.perf_counter() - start
        reads += 1
        if result.bound_violated or result.staleness > STALENESS_BOUND:
            violations += 1
        if hot_now:
            hot_reads += 1
            if cache.hits > hits_before:
                hot_hits += 1
    stats = cache.stats()
    return {
        "reads": reads,
        "writes": writes,
        "digest": _digest(store),
        "read_seconds": read_seconds,
        "cache": stats,
        "coalesce_flushes": store.coalescer.flushes,
        "coalesce_fused_rows": store.coalescer.fused_rows,
        "stale_beyond_bound_serves": violations,
        "hot_reads": hot_reads,
        "hot_hits": hot_hits,
        "hot_hit_ratio": round(hot_hits / hot_reads, 4) if hot_reads else 1.0,
    }


def collect(quick: bool = False) -> dict[str, Any]:
    """Run every registered scenario against both configurations."""
    scale = QUICK_SCALE if quick else FULL_SCALE
    result: dict[str, Any] = {
        "benchmark": "bench_hotpath",
        "config": {
            "seed": SEED,
            "scale": scale,
            "staleness_bound": STALENESS_BOUND,
            "scenarios": scenarios.names(),
        },
        "scenarios": {},
    }
    for name in scenarios.names():
        spec = scenarios.get(name).scaled(scale)
        ops = spec.ops(seed=SEED)
        baseline = _run_baseline(spec, ops)
        cached = _run_cached(spec, ops)
        assert baseline["digest"] == cached["digest"], (
            f"{name}: cached final state diverged from baseline"
        )
        base_tput = (
            baseline["reads"] / baseline["read_seconds"]
            if baseline["read_seconds"] > 0
            else 0.0
        )
        hot_tput = (
            cached["reads"] / cached["read_seconds"]
            if cached["read_seconds"] > 0
            else 0.0
        )
        result["scenarios"][name] = {
            # Deterministic signature: byte-identical across runs.
            "signature": {
                "ops": len(ops),
                "reads": cached["reads"],
                "writes": cached["writes"],
                "digest": cached["digest"],
                "cache": cached["cache"],
                "coalesce_flushes": cached["coalesce_flushes"],
                "coalesce_fused_rows": cached["coalesce_fused_rows"],
                "stale_beyond_bound_serves": cached[
                    "stale_beyond_bound_serves"
                ],
                "hot_reads": cached["hot_reads"],
                "hot_hits": cached["hot_hits"],
                "hot_hit_ratio": cached["hot_hit_ratio"],
            },
            # Wall-clock timing: environment-dependent, gate-checked
            # from the committed artefact.
            "timing": {
                "baseline_reads_per_sec": round(base_tput, 1),
                "cached_reads_per_sec": round(hot_tput, 1),
                "read_speedup": round(hot_tput / base_tput, 2)
                if base_tput > 0
                else 0.0,
            },
        }
    return result


def trajectory(metrics: dict[str, Any]) -> dict[str, Any]:
    """The committed artefact (``BENCH_hotpath.json``) with the
    acceptance block ``perf_gate.py check_hotpath`` reads."""
    gate = metrics["scenarios"][GATE_SCENARIO]
    signature = gate["signature"]
    total_violations = sum(
        row["signature"]["stale_beyond_bound_serves"]
        for row in metrics["scenarios"].values()
    )
    gate_pass = (
        gate["timing"]["read_speedup"] >= MIN_READ_SPEEDUP
        and signature["hot_hit_ratio"] >= MIN_HOT_HIT_RATIO
        and total_violations == 0
    )
    return {
        "benchmark": "bench_hotpath",
        "description": (
            "The skew-aware hot path, priced per scenario. Each "
            "registered traffic scenario (Zipf theta=0.5/0.99, flash "
            "crowd, diurnal rotation) drives one seeded op schedule "
            "against fold-on-read (the paper's rollup-per-read "
            "baseline) and against the watermark-validated ReadCache "
            "with write coalescing, under a typed BOUNDED(20.0) "
            "staleness budget. signature blocks are byte-deterministic "
            "(the --check-determinism surface); timing blocks record "
            "wall-clock read throughput. stale_beyond_bound_serves "
            "counts cache answers whose honest measured staleness "
            "exceeded the requested bound - the cache is built so this "
            "is zero by construction."
        ),
        "config": metrics["config"],
        "scenarios": metrics["scenarios"],
        "acceptance": {
            "gate_scenario": GATE_SCENARIO,
            "read_speedup": gate["timing"]["read_speedup"],
            "min_read_speedup": MIN_READ_SPEEDUP,
            "hot_hit_ratio": signature["hot_hit_ratio"],
            "min_hot_hit_ratio": MIN_HOT_HIT_RATIO,
            "stale_beyond_bound_serves": total_violations,
            "pass": gate_pass,
        },
    }


def _signatures(metrics: dict[str, Any]) -> str:
    """Only the deterministic part, canonically serialized."""
    return json.dumps(
        {
            name: row["signature"]
            for name, row in metrics["scenarios"].items()
        },
        sort_keys=True,
    )


def check_determinism() -> bool:
    """Two quick runs must produce byte-identical signatures (timing is
    wall-clock and excluded)."""
    first = _signatures(collect(quick=True))
    second = _signatures(collect(quick=True))
    ok = first == second
    print(f"determinism: {'PASS' if ok else 'FAIL'}")
    if not ok:
        print(f"  run 1: {first[:400]}...")
        print(f"  run 2: {second[:400]}...")
    return ok


def sweep() -> ExperimentReport:
    """The ``run_all.py`` entry point."""
    metrics = collect(quick=True)
    report = ExperimentReport(
        experiment_id="HOT",
        title="Skew-aware hot path: cached reads vs fold-on-read",
        claim=(
            "hot entities absorb most reads (2.10); a watermark-"
            "validated snapshot cache serves them without re-folding, "
            "at honest measured staleness and unchanged bounds"
        ),
        headers=[
            "scenario", "reads", "hit_ratio", "hot_hit_ratio",
            "violations", "speedup",
        ],
        notes=(
            f"gate ({GATE_SCENARIO}): speedup >= {MIN_READ_SPEEDUP}x, "
            f"hot-set hit ratio >= {MIN_HOT_HIT_RATIO}, zero "
            "stale-beyond-bound serves"
        ),
    )
    for name, row in metrics["scenarios"].items():
        signature, timing = row["signature"], row["timing"]
        cache = signature["cache"]
        total = cache["hits"] + cache["misses"]
        report.add_row(
            name,
            signature["reads"],
            round(cache["hits"] / total, 3) if total else 0.0,
            signature["hot_hit_ratio"],
            signature["stale_beyond_bound_serves"],
            f"{timing['read_speedup']}x",
        )
    return report


def test_hotpath_scenarios(benchmark):
    metrics = benchmark(collect, True)
    for name, row in metrics["scenarios"].items():
        signature = row["signature"]
        # The invariant that makes the cache honest: no answer ever
        # exceeded its requested staleness bound, in any scenario.
        assert signature["stale_beyond_bound_serves"] == 0, name
        assert signature["reads"] > 0 and signature["writes"] > 0
    # Quick mode is too small for stable wall-clock ratios; assert the
    # structural half of the gate on the headline scenario.
    gate = metrics["scenarios"][GATE_SCENARIO]["signature"]
    assert gate["hot_hit_ratio"] >= MIN_HOT_HIT_RATIO


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small CI sizes")
    parser.add_argument("--check-determinism", action="store_true",
                        help="run twice and diff the signature JSON")
    parser.add_argument("--json-out", type=str, default="", metavar="PATH",
                        help="write raw metrics as JSON to PATH")
    parser.add_argument("--trajectory-out", type=str, default="", metavar="PATH",
                        help="write the artefact (BENCH_hotpath.json) to PATH")
    parser.add_argument("--label", type=str, default="run",
                        help="label stored in the JSON meta block")
    args = parser.parse_args()

    if args.check_determinism and not check_determinism():
        raise SystemExit(1)

    metrics = collect(quick=args.quick)
    payload = {
        "meta": {
            "label": args.label,
            "quick": args.quick,
            "python": sys.version.split()[0],
        },
        "metrics": metrics,
    }
    if args.json_out:
        pathlib.Path(args.json_out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.trajectory_out:
        pathlib.Path(args.trajectory_out).write_text(
            json.dumps(trajectory(metrics), indent=2) + "\n", encoding="utf-8"
        )
    print(f"{'scenario':<14} {'reads':>7} {'hit%':>7} {'hot-hit%':>9} "
          f"{'viol':>5} {'base r/s':>10} {'cached r/s':>11} {'speedup':>8}")
    for name, row in metrics["scenarios"].items():
        signature, timing = row["signature"], row["timing"]
        cache = signature["cache"]
        total = cache["hits"] + cache["misses"]
        hit_pct = cache["hits"] / total if total else 0.0
        print(
            f"{name:<14} {signature['reads']:>7} {hit_pct:>7.1%} "
            f"{signature['hot_hit_ratio']:>9.1%} "
            f"{signature['stale_beyond_bound_serves']:>5} "
            f"{timing['baseline_reads_per_sec']:>10.0f} "
            f"{timing['cached_reads_per_sec']:>11.0f} "
            f"{timing['read_speedup']:>7.1f}x"
        )
    gate = metrics["scenarios"][GATE_SCENARIO]
    print(
        f"gate ({GATE_SCENARIO}): speedup "
        f"{gate['timing']['read_speedup']}x (>= {MIN_READ_SPEEDUP}), "
        f"hot-set hit ratio {gate['signature']['hot_hit_ratio']} "
        f"(>= {MIN_HOT_HIT_RATIO})"
    )


if __name__ == "__main__":
    main()
