"""Tests for the discrete-event simulator core."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.scheduler import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.schedule(2.0, lambda: fired.append("early"))
        sim.run()
        assert fired == ["early", "late"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        fired = []
        for label in ("first", "second", "third"):
            sim.schedule(1.0, lambda bound=label: fired.append(bound))
        sim.run()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]
        assert sim.now == 3.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(7.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.0]

    def test_call_soon_runs_at_current_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(4.0, lambda: sim.call_soon(lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [4.0]

    def test_nested_scheduling_from_callbacks(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(2.0, lambda: fired.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 3.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.run() == 0

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending == 1
        assert keep.time == 1.0

    def test_pending_counter_tracks_through_lifecycle(self):
        sim = Simulator()
        handles = [sim.schedule(float(offset), lambda: None) for offset in range(5)]
        assert sim.pending == 5
        handles[0].cancel()
        handles[3].cancel()
        assert sim.pending == 3
        # Double-cancelling must not decrement twice.
        handles[3].cancel()
        assert sim.pending == 3
        sim.run(max_events=1)
        assert sim.pending == 2
        sim.run()
        assert sim.pending == 0

    def test_cancel_after_fire_is_a_noop(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(max_events=1)
        assert sim.pending == 1
        handle.cancel()  # already fired: must not touch the live counter
        assert sim.pending == 1

    def test_cancel_inside_callback_prevents_pending_fire(self):
        sim = Simulator()
        fired = []
        victim = sim.schedule(2.0, lambda: fired.append("victim"))
        sim.schedule(1.0, lambda: victim.cancel())
        assert sim.run() == 1
        assert fired == []
        assert sim.pending == 0


class TestRunBounds:
    def test_run_until_leaves_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=3.0)
        assert fired == [1]
        assert sim.now == 3.0
        sim.run()
        assert fired == [1, 5]

    def test_run_until_includes_boundary_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run(until=3.0)
        assert fired == [3]

    def test_run_for_is_relative(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("a"))
        sim.schedule(9.0, lambda: fired.append("b"))
        sim.run_for(5.0)
        assert fired == ["a"]
        assert sim.now == 5.0

    def test_max_events_bound(self):
        sim = Simulator()
        fired = []
        for offset in range(10):
            sim.schedule(float(offset), lambda bound=offset: fired.append(bound))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_run_on_empty_heap_advances_to_until(self):
        sim = Simulator()
        assert sim.run(until=10.0) == 0
        assert sim.now == 10.0

    def test_processed_counts_fired_events(self):
        sim = Simulator()
        for offset in range(4):
            sim.schedule(float(offset), lambda: None)
        sim.run()
        assert sim.processed == 4


class TestDeterminism:
    def test_same_seed_same_rng_stream(self):
        draws_a = [Simulator(seed=7).rng.random() for _ in range(1)]
        draws_b = [Simulator(seed=7).rng.random() for _ in range(1)]
        assert draws_a == draws_b

    def test_forked_rngs_are_independent_and_reproducible(self):
        sim_a = Simulator(seed=3)
        sim_b = Simulator(seed=3)
        fork_a1, fork_a2 = sim_a.fork_rng(), sim_a.fork_rng()
        fork_b1, fork_b2 = sim_b.fork_rng(), sim_b.fork_rng()
        assert [fork_a1.random() for _ in range(5)] == [
            fork_b1.random() for _ in range(5)
        ]
        assert [fork_a2.random() for _ in range(5)] == [
            fork_b2.random() for _ in range(5)
        ]
        # Different forks produce different streams.
        assert fork_a1.random() != fork_a2.random()
