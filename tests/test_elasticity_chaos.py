"""Deterministic simulation: staged scale-out under live writes + chaos.

The acceptance experiment for elastic sharding (principle 2.5): a
4 -> 8 staged scale-out runs under an open-loop write workload while
the chaos engine crashes and partitions the unit hosts, and afterwards
the chaos subsystem's invariant checkers must still hold — convergence
(directory and final ring agree on placement, and everything is where
they say), no lost acknowledged writes, monotonic reads per session.
The whole report must be byte-identical across runs with one seed, and
the consistent-hash churn must stay at or below 60% of what the old
mod-N router would have reshuffled over the same membership steps.
"""

from __future__ import annotations

import pytest

from repro.partition.elasticity import (
    ElasticityConfig,
    elasticity_report_json,
    run_elastic_scaleout,
)

CHAOS_CONFIG = ElasticityConfig(
    seed=42,
    keys=64,
    duration=600.0,
    quiesce_grace=300.0,
    profile="moderate",
)


@pytest.fixture(scope="module")
def chaos_runs():
    """One fixed-seed chaos scale-out, run twice (shared: the run is the
    expensive part, every test here asserts a different facet of it)."""
    return run_elastic_scaleout(CHAOS_CONFIG), run_elastic_scaleout(CHAOS_CONFIG)


class TestInvariantsUnderChaos:
    def test_run_verdict_ok(self, chaos_runs):
        report, _ = chaos_runs
        assert report["ok"], report["invariants"]

    def test_no_lost_acknowledged_writes(self, chaos_runs):
        report, _ = chaos_runs
        results = {r["name"]: r for r in report["invariants"]["results"]}
        verdict = results["no_lost_acked_writes"]
        assert verdict["passed"], verdict["detail"]
        assert verdict["checked"] == CHAOS_CONFIG.keys

    def test_convergence_of_directory_and_ring(self, chaos_runs):
        report, _ = chaos_runs
        results = {r["name"]: r for r in report["invariants"]["results"]}
        assert results["convergence"]["passed"], results["convergence"]["detail"]

    def test_monotonic_reads_per_session(self, chaos_runs):
        report, _ = chaos_runs
        results = {r["name"]: r for r in report["invariants"]["results"]}
        verdict = results["monotonic_reads"]
        assert verdict["passed"], verdict["detail"]
        assert verdict["checked"] > 0  # sessions actually read something

    def test_no_entity_was_ever_unreachable(self, chaos_runs):
        report, _ = chaos_runs
        assert report["workload"]["reads_missing"] == 0

    def test_chaos_actually_happened(self, chaos_runs):
        report, _ = chaos_runs
        assert "crash" in report["faults"]
        assert "partition" in report["faults"]
        # The chaos forced at least some handoff retries or blocked ops.
        blocked = (
            report["workload"]["writes_rejected"]
            + report["workload"]["reads_skipped"]
            + sum(step.get("retried", 0) for step in report["elasticity"]["steps"])
        )
        assert blocked > 0

    def test_scale_out_completed_all_steps(self, chaos_runs):
        report, _ = chaos_runs
        steps = report["elasticity"]["steps"]
        assert [step["unit"] for step in steps] == ["u5", "u6", "u7", "u8"]
        assert all(step["deadline_exceeded"] is False for step in steps)

    def test_directory_compacted_after_rebalance(self, chaos_runs):
        report, _ = chaos_runs
        elasticity = report["elasticity"]
        # Overrides grew during the handoff and evaporated at the flip.
        assert elasticity["overrides_peak"] > 0
        assert elasticity["overrides_final"] == 0


class TestChurnBound:
    def test_ring_moves_at_most_60pct_of_modn(self, chaos_runs):
        report, _ = chaos_runs
        elasticity = report["elasticity"]
        assert elasticity["modn_keys_moved"] > 0
        assert elasticity["churn_ratio"] <= 0.6, elasticity

    def test_availability_stayed_high_during_rebalance(self, chaos_runs):
        report, _ = chaos_runs
        # Chaos crashes cost some reads/writes, but the rebalance itself
        # must not take the data offline.
        assert report["availability"]["reads_during_rebalance"] >= 0.8
        assert report["availability"]["writes_during_rebalance"] >= 0.8


class TestDeterminism:
    def test_report_byte_identical_per_seed(self, chaos_runs):
        first, second = chaos_runs
        assert elasticity_report_json(first) == elasticity_report_json(second)

    def test_different_seed_different_schedule(self):
        other = run_elastic_scaleout(
            ElasticityConfig(
                seed=7, keys=32, duration=300.0, quiesce_grace=200.0,
                profile="moderate",
            )
        )
        assert other["config"]["seed"] == 7
        assert other["faults"] != {}


class TestNoChaosBaseline:
    def test_clean_scaleout_moves_nothing_twice_and_loses_nothing(self):
        report = run_elastic_scaleout(
            ElasticityConfig(seed=3, keys=48, duration=300.0, quiesce_grace=100.0)
        )
        assert report["ok"], report["invariants"]
        assert report["faults"] == {}
        elasticity = report["elasticity"]
        # Without chaos nothing fails, nothing needs repair passes.
        assert elasticity["moves_failed"] == 0
        assert elasticity["repair_rounds"] == 0
        assert elasticity["moves_completed"] == elasticity["ring_keys_moved"]
        assert report["workload"]["writes_rejected"] == 0
