"""Tests for the banking and inventory applications."""

from __future__ import annotations

import pytest

from repro.apps.banking import BankApp
from repro.apps.inventory import FLOOR_CONSTRAINT, InventoryApp
from repro.core.constraints import ConstraintManager
from repro.core.transaction import TransactionManager
from repro.errors import EntityNotFound
from repro.lsdb.store import LSDBStore


def make_bank():
    return BankApp(TransactionManager(LSDBStore()))


def make_inventory():
    store = LSDBStore()
    constraints = ConstraintManager(store)
    return InventoryApp(TransactionManager(store, constraints=constraints))


class TestBank:
    def test_balance_is_aggregate_of_operations(self):
        bank = make_bank()
        bank.open_account("a1", owner="ada")
        bank.deposit("a1", 100)
        bank.withdraw("a1", 30)
        bank.deposit("a1", 5)
        assert bank.balance("a1") == 75

    def test_audit_balance_always_matches(self):
        bank = make_bank()
        bank.open_account("a1", owner="ada")
        for amount in (10, 20, 30):
            bank.deposit("a1", amount)
        bank.withdraw("a1", 15)
        assert bank.audit_balance("a1") == bank.balance("a1") == 45

    def test_statement_lists_operations_in_order(self):
        bank = make_bank()
        bank.open_account("a1", owner="ada")
        bank.deposit("a1", 100, memo="salary")
        bank.withdraw("a1", 40, memo="rent")
        statement = bank.statement("a1")
        assert [(line.kind, line.amount) for line in statement] == [
            ("deposit", 100),
            ("withdrawal", 40),
        ]
        assert statement[0].memo == "salary"

    def test_operations_survive_balance_changes(self):
        """Section 3.2: individual deposits/withdrawals stay visible."""
        bank = make_bank()
        bank.open_account("a1", owner="ada")
        bank.deposit("a1", 100)
        first_statement = bank.statement("a1")
        bank.withdraw("a1", 99)
        assert bank.statement("a1")[0] == first_statement[0]

    def test_operations_are_regulatory_tagged(self):
        bank = make_bank()
        bank.open_account("a1", owner="ada")
        receipt = bank.deposit("a1", 10)
        op_events = [e for e in receipt.events if e.entity_type == "bank_op"]
        assert "regulatory" in op_events[0].tags

    def test_zero_amount_rejected(self):
        bank = make_bank()
        bank.open_account("a1", owner="ada")
        with pytest.raises(ValueError):
            bank.deposit("a1", 0)

    def test_unknown_account_raises_on_read(self):
        with pytest.raises(EntityNotFound):
            make_bank().balance("ghost")

    def test_separate_accounts_isolated(self):
        bank = make_bank()
        bank.open_account("a1", owner="ada")
        bank.open_account("a2", owner="bob")
        bank.deposit("a1", 10)
        assert bank.balance("a2") == 0
        assert bank.statement("a2") == []


class TestInventory:
    def test_receive_and_issue(self):
        inventory = make_inventory()
        inventory.add_item("w", "widget", on_hand=5)
        inventory.receive("w", 10)
        inventory.issue("w", 3)
        assert inventory.on_hand("w") == 12

    def test_issue_below_zero_is_allowed_and_recorded(self):
        inventory = make_inventory()
        inventory.add_item("w", "widget", on_hand=2)
        receipt = inventory.issue("w", 5, actor="packer-joe")
        assert receipt.committed  # never refused (principle 2.1)
        assert inventory.on_hand("w") == -3
        report = inventory.discrepancy_report("w")
        assert report.is_negative
        assert len(report.open_violations) == 1
        assert report.open_violations[0].constraint_name == FLOOR_CONSTRAINT

    def test_discrepancy_history_names_the_movements(self):
        inventory = make_inventory()
        inventory.add_item("w", "widget", on_hand=1)
        inventory.issue("w", 4, actor="packer-joe")
        report = inventory.discrepancy_report("w")
        assert len(report.movements) == 1  # the issue delta
        # The movement entity records the actor — the trace that can
        # identify the source of the inconsistency (principle 2.7).
        movements = [
            state for state in inventory.store.entities_of_type("stock_movement")
            if state.get("item_key") == "w"
        ]
        assert movements[0].get("actor") == "packer-joe"

    def test_reconcile_repairs_discrepancy(self):
        inventory = make_inventory()
        inventory.add_item("w", "widget", on_hand=2)
        inventory.issue("w", 5)
        inventory.reconcile("w", counted_quantity=0)
        assert inventory.on_hand("w") == 0
        assert inventory.discrepancy_report("w").open_violations == []

    def test_reconcile_records_adjustment_movement(self):
        inventory = make_inventory()
        inventory.add_item("w", "widget", on_hand=0)
        inventory.issue("w", 2)
        inventory.reconcile("w", counted_quantity=7)
        kinds = [
            state.get("kind")
            for state in inventory.store.entities_of_type("stock_movement")
            if state.get("item_key") == "w"
        ]
        assert "physical_count" in kinds
        assert inventory.on_hand("w") == 7

    def test_audit_matches_running_level(self):
        inventory = make_inventory()
        inventory.add_item("w", "widget", on_hand=10)
        inventory.receive("w", 5)
        inventory.issue("w", 8)
        assert inventory.audit_on_hand("w", initial=10) == inventory.on_hand("w")

    def test_zero_quantity_movement_rejected(self):
        inventory = make_inventory()
        inventory.add_item("w", "widget")
        with pytest.raises(ValueError):
            inventory.receive("w", 0)
