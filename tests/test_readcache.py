"""The skew-aware hot path: watermark-validated read cache + coalescing.

Covers the cache primitive (hit/miss/watermark validation), bounded
stale serving (honest measured staleness, never beyond the budget), the
space-saving hot-set tracker and its LRU pinning, structural
invalidation (compaction, checkpoint install, recover, reducer change
— the regression this PR exists to prevent), write coalescing
(window/batch flushes, read-your-writes, state equivalence), and the
replication surfaces the cache plugs into (warehouse, master/slave,
cluster builder).
"""

from __future__ import annotations

import pytest

from repro.core.consistency import ConsistencyLevel
from repro.core.readpath import ConsistencyUnavailable, ReadRequest
from repro.lsdb.readcache import HotSetTracker, ReadCache, WriteCoalescer
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta
from repro.obs.metrics import MetricsRegistry
from repro.sim.scheduler import Simulator


class Clock:
    """A hand-advanced virtual clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock() -> Clock:
    return Clock()


@pytest.fixture
def store(clock: Clock) -> LSDBStore:
    return LSDBStore(name="hot", origin="hot", clock=clock)


@pytest.fixture
def cache(store: LSDBStore) -> ReadCache:
    return ReadCache.over_store(store)


class TestHotSetTracker:
    def test_tracks_up_to_capacity(self):
        tracker = HotSetTracker(capacity=2)
        tracker.touch(("t", "a"))
        tracker.touch(("t", "b"))
        assert tracker.is_hot(("t", "a")) and tracker.is_hot(("t", "b"))
        assert len(tracker) == 2

    def test_untracked_key_evicts_minimum_and_inherits_count(self):
        tracker = HotSetTracker(capacity=2)
        for _ in range(5):
            tracker.touch(("t", "hot"))
        tracker.touch(("t", "warm"))
        tracker.touch(("t", "new"))  # evicts warm (count 1), inherits 2
        assert tracker.is_hot(("t", "hot"))
        assert tracker.is_hot(("t", "new"))
        assert not tracker.is_hot(("t", "warm"))

    def test_truly_hot_key_survives_churn(self):
        # Space-saving guarantee: a key with frequency > n/capacity is
        # always tracked, no matter how many cold keys churn past.
        tracker = HotSetTracker(capacity=4)
        for index in range(200):
            tracker.touch(("t", "hot"))
            tracker.touch(("t", f"cold-{index}"))
        assert tracker.is_hot(("t", "hot"))
        assert tracker.hot_keys()[0] == ("t", "hot")

    def test_deterministic_tie_break(self):
        a, b = HotSetTracker(capacity=2), HotSetTracker(capacity=2)
        keys = [("t", "x"), ("t", "y"), ("t", "z"), ("t", "x")]
        for key in keys:
            a.touch(key)
            b.touch(key)
        assert a.hot_keys() == b.hot_keys()

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            HotSetTracker(capacity=0)


class TestReadCachePrimitive:
    def test_miss_then_watermark_current_hit(self, store, cache):
        store.insert("acct", "a", {"bal": 10})
        state, age = cache.lookup("acct", "a")
        assert state.fields == {"bal": 10} and age == 0.0
        assert cache.stats()["misses"] == 1
        state, age = cache.lookup("acct", "a")
        assert state.fields == {"bal": 10} and age == 0.0
        assert cache.stats()["hits"] == 1

    def test_hit_does_not_touch_live_state_map(self, store, cache):
        store.insert("acct", "a", {"bal": 10})
        cache.lookup("acct", "a")
        fetched = []
        original = store.get
        store.__dict__["get"] = lambda *ref: fetched.append(ref) or original(*ref)
        try:
            cache.lookup("acct", "a")
        finally:
            store.__dict__.pop("get")
        assert fetched == []  # the hit never called the store

    def test_cached_state_is_frozen_copy(self, store, cache):
        store.insert("acct", "a", {"bal": 10})
        state, _ = cache.lookup("acct", "a")
        live = store.get("acct", "a")
        assert state is not live
        assert state.fields == live.fields

    def test_negative_entry_for_absent_entity(self, store, cache):
        state, _ = cache.lookup("acct", "ghost")
        assert state is None
        state, _ = cache.lookup("acct", "ghost")
        assert state is None and cache.stats()["hits"] == 1
        # A write to the entity moves its watermark: a revalidating
        # lookup refuses the negative entry and refreshes.
        store.insert("acct", "ghost", {"bal": 1})
        state, _ = cache.lookup("acct", "ghost", revalidate=True)
        assert state is not None and state.fields == {"bal": 1}

    def test_write_invalidate_via_watermark(self, store, cache, clock):
        store.insert("acct", "a", {"bal": 10})
        cache.lookup("acct", "a")
        store.apply_delta("acct", "a", Delta.add("bal", 5))
        # Watermark moved; a revalidating lookup refreshes to current.
        state, age = cache.lookup("acct", "a", revalidate=True)
        assert state.fields == {"bal": 15} and age == 0.0

    def test_stale_serve_within_budget_stamps_honest_age(
        self, store, cache, clock
    ):
        store.insert("acct", "a", {"bal": 10})
        cache.lookup("acct", "a")
        clock.now = 2.0
        store.apply_delta("acct", "a", Delta.add("bal", 5))
        clock.now = 3.0
        state, age = cache.lookup("acct", "a", budget=5.0)
        assert state.fields == {"bal": 10}  # the old fold, honestly aged
        assert age == pytest.approx(1.0)  # first missed event is 1.0 old

    def test_never_serves_beyond_budget(self, store, cache, clock):
        store.insert("acct", "a", {"bal": 10})
        cache.lookup("acct", "a")
        clock.now = 2.0
        store.apply_delta("acct", "a", Delta.add("bal", 5))
        clock.now = 50.0  # missed event is now 48.0 old
        state, age = cache.lookup("acct", "a", budget=5.0)
        assert state.fields == {"bal": 15}  # refreshed, not served stale
        assert age == 0.0

    def test_revalidate_refuses_stale_entries(self, store, cache):
        store.insert("acct", "a", {"bal": 10})
        cache.lookup("acct", "a")
        store.apply_delta("acct", "a", Delta.add("bal", 5))
        state, age = cache.lookup("acct", "a", revalidate=True)
        assert state.fields == {"bal": 15} and age == 0.0

    def test_lru_eviction_bounded(self, store):
        cache = ReadCache.over_store(store, capacity=2, hot_capacity=1)
        for key in ("a", "b", "c"):
            store.insert("acct", key, {"bal": 1})
        cache.lookup("acct", "a")
        cache.lookup("acct", "b")
        cache.lookup("acct", "c")
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1

    def test_hot_entries_pinned_against_eviction(self, store):
        cache = ReadCache.over_store(store, capacity=2, hot_capacity=2)
        for key in ("hot", "b", "c", "d"):
            store.insert("acct", key, {"bal": 1})
        for _ in range(5):
            cache.lookup("acct", "hot")  # clearly the hottest
        cache.lookup("acct", "b")
        cache.lookup("acct", "c")  # evicts b (hot is pinned), not hot
        cache.lookup("acct", "d")  # evicts c
        assert ("acct", "hot") in cache
        assert ("acct", "b") not in cache

    def test_metrics_mirror_counters(self, clock):
        metrics = MetricsRegistry()
        store = LSDBStore(name="m", origin="m", clock=clock, metrics=metrics)
        cache = ReadCache.over_store(store, metrics=metrics)
        store.insert("acct", "a", {"bal": 1})
        cache.lookup("acct", "a")
        cache.lookup("acct", "a")
        assert metrics.counter("cache.misses", cache="m-cache").value == 1
        assert metrics.counter("cache.hits", cache="m-cache").value == 1
        assert metrics.gauge("cache.hot_keys", cache="m-cache").value == 1


class TestTypedReadsThroughCache:
    def test_strong_always_revalidates(self, store, cache):
        store.insert("acct", "a", {"bal": 10})
        store.read("acct", "a", request=ReadRequest.strong())
        store.apply_delta("acct", "a", Delta.add("bal", 5))
        result = store.read("acct", "a", request=ReadRequest.strong())
        assert result.value.fields == {"bal": 15}
        assert result.staleness == 0.0
        assert result.served_by == "hot+cache"

    def test_bounded_serves_stale_within_bound(self, store, cache, clock):
        store.insert("acct", "a", {"bal": 10})
        store.read("acct", "a", request=ReadRequest.bounded(5.0))
        clock.now = 2.0
        store.apply_delta("acct", "a", Delta.add("bal", 5))
        clock.now = 3.0
        result = store.read("acct", "a", request=ReadRequest.bounded(5.0))
        assert result.value.fields == {"bal": 10}
        assert result.staleness == pytest.approx(1.0)
        assert not result.bound_violated

    def test_bounded_never_violates_its_bound(self, store, cache, clock):
        store.insert("acct", "a", {"bal": 10})
        store.read("acct", "a", request=ReadRequest.bounded(5.0))
        clock.now = 2.0
        store.apply_delta("acct", "a", Delta.add("bal", 5))
        clock.now = 100.0
        result = store.read("acct", "a", request=ReadRequest.bounded(5.0))
        assert result.value.fields == {"bal": 15}
        assert result.staleness == 0.0 and not result.bound_violated

    def test_eventual_serves_any_age_honestly(self, store, cache, clock):
        store.insert("acct", "a", {"bal": 10})
        store.read("acct", "a", request=ReadRequest.eventual())
        clock.now = 10.0
        store.apply_delta("acct", "a", Delta.add("bal", 5))
        clock.now = 500.0
        result = store.read("acct", "a", request=ReadRequest.eventual())
        assert result.value.fields == {"bal": 10}
        assert result.staleness == pytest.approx(490.0)


class TestStructuralInvalidation:
    def test_compaction_drops_every_entry(self, store, cache):
        """Compaction reuses the last summarised LSN, so the
        post-compaction head can equal a cached watermark while the
        history below it was rewritten — watermark comparison alone is
        no longer sound.  The structure hook drops everything."""
        for _ in range(10):
            store.apply_delta("acct", "a", Delta.add("bal", 1))
        cache.lookup("acct", "a")
        cache.lookup("acct", "b")  # negative entry
        assert len(cache) == 2
        store.compact()
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 2
        state, age = cache.lookup("acct", "a")
        assert state.fields == {"bal": 10} and age == 0.0

    def test_post_compaction_read_never_serves_pre_compaction_fold(
        self, store, cache, clock
    ):
        """THE regression (satellite fix): a behind-watermark entry's
        age is measured from the first event past its watermark —
        timestamps that ``rewrite_prefix`` destroys.  Pre-compaction
        history: fold cached at t=0, missed events at t=2 — the stale
        fold is 98.0 old at t=100 and must NOT satisfy a 50.0 bound.
        Post-compaction the summary event carries the *newest*
        timestamp, so without invalidation the same entry would measure
        young enough to serve.  The hook forces a refresh instead."""
        store.insert("acct", "a", {"bal": 10})
        store.read("acct", "a", request=ReadRequest.bounded(50.0))  # fill
        clock.now = 2.0
        for _ in range(5):
            store.apply_delta("acct", "a", Delta.add("bal", 1))
        store.compact()  # rewrites the t=2.0 events into one summary
        clock.now = 100.0
        result = store.read("acct", "a", request=ReadRequest.bounded(50.0))
        assert result.value.fields == {"bal": 15}  # current, not cached
        assert result.staleness == 0.0
        assert not result.bound_violated

    def test_recover_invalidates(self, store, cache):
        store.insert("acct", "a", {"bal": 10})
        cache.lookup("acct", "a")
        store.recover()
        assert len(cache) == 0

    def test_register_reducer_invalidates(self, store, cache):
        from repro.lsdb.rollup import GenericReducer

        store.insert("acct", "a", {"bal": 10})
        cache.lookup("acct", "a")
        store.register_reducer("acct", GenericReducer())
        assert len(cache) == 0

    def test_install_checkpoint_drops_negative_entries(self, clock):
        donor = LSDBStore(name="donor", origin="donor", clock=clock)
        donor.insert("acct", "a", {"bal": 10})
        checkpoint = donor.enable_checkpoints().take()
        joiner = LSDBStore(name="joiner", origin="joiner", clock=clock)
        cache = ReadCache.over_store(joiner)
        state, _ = cache.lookup("acct", "a")
        assert state is None  # cached negative entry
        joiner.install_checkpoint(checkpoint)
        state, _ = cache.lookup("acct", "a")
        assert state is not None and state.fields == {"bal": 10}


class TestWriteCoalescer:
    def test_burst_fuses_into_one_fold(self, store, clock):
        coalescer = store.enable_coalescing(window=5.0, max_batch=64)
        for _ in range(10):
            store.apply_delta("acct", "a", Delta.add("bal", 1))
        assert coalescer.pending == 10
        assert coalescer.flush() == 10
        assert coalescer.flushes == 1
        assert store.get("acct", "a").fields == {"bal": 10}

    def test_window_expiry_flushes_on_next_append(self, store, clock):
        coalescer = store.enable_coalescing(window=5.0)
        store.apply_delta("acct", "a", Delta.add("bal", 1))
        clock.now = 6.0  # past the window
        store.apply_delta("acct", "a", Delta.add("bal", 1))
        assert coalescer.flushes == 1
        assert coalescer.pending == 1  # the second append started anew

    def test_max_batch_flushes_eagerly(self, store):
        coalescer = store.enable_coalescing(window=100.0, max_batch=3)
        for _ in range(7):
            store.apply_delta("acct", "a", Delta.add("bal", 1))
        assert coalescer.flushes == 2
        assert coalescer.pending == 1

    def test_read_your_writes_via_read_barrier(self, store):
        store.enable_coalescing(window=100.0)
        store.apply_delta("acct", "a", Delta.add("bal", 7))
        assert store.get("acct", "a").fields == {"bal": 7}
        assert store.coalescer.pending == 0

    def test_coalesced_state_identical_to_immediate(self, clock):
        plain = LSDBStore(name="plain", origin="o", clock=clock)
        fused = LSDBStore(name="fused", origin="o", clock=clock)
        fused.enable_coalescing(window=50.0, max_batch=16)
        for index in range(40):
            key = f"k{index % 3}"
            plain.apply_delta("acct", key, Delta.add("bal", index))
            fused.apply_delta("acct", key, Delta.add("bal", index))
            clock.now += 1.0
        plain_view = {
            ref: state.fields for ref, state in plain.current_state().items()
        }
        fused_view = {
            ref: state.fields for ref, state in fused.current_state().items()
        }
        assert plain_view == fused_view

    def test_log_and_feeds_stay_immediate(self, store):
        store.enable_coalescing(window=100.0)
        store.apply_delta("acct", "a", Delta.add("bal", 1))
        assert store.log.head_lsn == 1  # append not deferred
        assert store.coalescer.pending == 1  # only the fold is

    def test_discard_for_rebuilds(self, store):
        store.enable_coalescing(window=100.0)
        store.apply_delta("acct", "a", Delta.add("bal", 1))
        assert store.coalescer.discard() == 1
        store.rebuild_cache()
        assert store.get("acct", "a").fields == {"bal": 1}

    def test_compact_flushes_first(self, store):
        store.enable_coalescing(window=100.0, max_batch=64)
        for _ in range(5):
            store.apply_delta("acct", "a", Delta.add("bal", 1))
        store.compact()
        assert store.get("acct", "a").fields == {"bal": 5}

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            WriteCoalescer(fold=lambda rows: None, clock=lambda: 0.0, window=-1)
        with pytest.raises(ValueError):
            WriteCoalescer(
                fold=lambda rows: None, clock=lambda: 0.0, max_batch=0
            )


class TestWarehouseCache:
    def test_cache_refreshes_on_new_extract(self):
        sim = Simulator(seed=1)
        source = LSDBStore(name="oltp", origin="oltp", clock=lambda: sim.now)
        from repro.replication.warehouse import WarehouseExtract

        warehouse = WarehouseExtract(sim, source, interval=10.0)
        cache = ReadCache.over_warehouse(warehouse)
        source.insert("acct", "a", {"bal": 10})
        sim.run(until=15.0)  # first extract lands
        result = warehouse.read("acct", "a", request=ReadRequest.eventual())
        assert result.value.fields == {"bal": 10}
        assert result.served_by == "warehouse+cache"
        source.apply_delta("acct", "a", Delta.add("bal", 5))
        sim.run(until=25.0)  # second extract: watermark moves
        result = warehouse.read("acct", "a", request=ReadRequest.eventual())
        assert result.value.fields == {"bal": 15}
        assert cache.stats()["misses"] == 2


class TestReplicatedReadPath:
    def test_slave_cache_budget_is_bound_minus_lag(self):
        from repro.cluster import Cluster

        cluster = (
            Cluster.build(seed=5)
            .with_replicas(3, mode="master_slave")
            .with_read_cache()
            .create()
        )
        group = cluster.replication
        group.write_insert("acct", "a", {"bal": 10})
        cluster.sim.run(until=100.0)
        result = cluster.read("acct", "a", request=ReadRequest.bounded(50.0))
        assert result.value.fields == {"bal": 10}
        assert not result.bound_violated
        # A second read hits the slave's cache at the same watermark.
        slave = group.slaves[next(iter(group.slaves))]
        hits_before = slave.store.read_cache.hits
        result = cluster.read("acct", "a", request=ReadRequest.bounded(50.0))
        assert slave.store.read_cache.hits == hits_before + 1
        assert not result.bound_violated

    def test_strong_reads_unaffected_by_cache(self):
        from repro.cluster import Cluster

        cluster = (
            Cluster.build(seed=5)
            .with_replicas(3, mode="master_slave")
            .with_read_cache()
            .create()
        )
        group = cluster.replication
        group.write_insert("acct", "a", {"bal": 10})
        result = cluster.read("acct", "a", request=ReadRequest.strong())
        assert result.value.fields == {"bal": 10}
        assert result.staleness == 0.0

    def test_builder_wires_every_store_and_warehouse(self):
        from repro.cluster import Cluster

        cluster = (
            Cluster.build(seed=5)
            .with_replicas(3, mode="master_slave")
            .with_warehouse(interval=50.0)
            .with_read_cache(coalesce_window=2.0)
            .create()
        )
        # master + 2 slaves + warehouse
        assert len(cluster.read_caches) == 4
        assert cluster.read_cache is cluster.store.read_cache
        assert cluster.warehouse.read_cache is not None
        for node in [cluster.replication.master, *cluster.replication.slaves.values()]:
            assert node.store.read_cache is not None
            assert node.store.coalescer is not None
