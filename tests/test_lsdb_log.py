"""Tests for the append-only log."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.lsdb.events import EventKind, LogEvent
from repro.lsdb.log import AppendOnlyLog


def make_event(key="k", kind=EventKind.INSERT, payload=None, etype="t"):
    return LogEvent(
        lsn=0,
        timestamp=0.0,
        entity_type=etype,
        entity_key=key,
        kind=kind,
        payload=payload or {},
    )


class TestAppend:
    def test_lsns_are_sequential_from_one(self):
        log = AppendOnlyLog()
        stored = [log.append(make_event()) for _ in range(3)]
        assert [event.lsn for event in stored] == [1, 2, 3]

    def test_append_does_not_mutate_input(self):
        log = AppendOnlyLog()
        event = make_event()
        log.append(event)
        assert event.lsn == 0  # the input copy keeps its placeholder

    def test_head_and_tail_lsn(self):
        log = AppendOnlyLog()
        assert log.head_lsn == 0 and log.tail_lsn == 0
        log.append(make_event())
        log.append(make_event())
        assert log.head_lsn == 2
        assert log.tail_lsn == 1

    def test_subscribers_see_every_append(self):
        log = AppendOnlyLog()
        seen = []
        log.subscribe(lambda event: seen.append(event.lsn))
        log.append(make_event())
        log.append(make_event())
        assert seen == [1, 2]


class TestReading:
    def test_since_returns_strict_suffix(self):
        log = AppendOnlyLog()
        for _ in range(5):
            log.append(make_event())
        assert [event.lsn for event in log.since(2)] == [3, 4, 5]
        assert log.since(5) == []
        assert [event.lsn for event in log.since(0)] == [1, 2, 3, 4, 5]

    def test_up_to_is_inclusive(self):
        log = AppendOnlyLog()
        for _ in range(4):
            log.append(make_event())
        assert [event.lsn for event in log.up_to(2)] == [1, 2]

    def test_for_entity_filters_history(self):
        log = AppendOnlyLog()
        log.append(make_event(key="a"))
        log.append(make_event(key="b"))
        log.append(make_event(key="a", kind=EventKind.DELTA))
        history = log.for_entity("t", "a")
        assert [event.kind for event in history] == [
            EventKind.INSERT,
            EventKind.DELTA,
        ]


class TestRewrite:
    def _filled_log(self, count=6):
        log = AppendOnlyLog()
        for _ in range(count):
            log.append(make_event())
        return log

    def test_rewrite_prefix_replaces_events(self):
        log = self._filled_log()
        summary = LogEvent(
            lsn=4, timestamp=0.0, entity_type="t", entity_key="k",
            kind=EventKind.SUMMARY, payload={"v": 1},
        )
        removed = log.rewrite_prefix(4, [summary])
        assert len(removed) == 4
        assert [event.lsn for event in log] == [4, 5, 6]

    def test_lsns_never_reassigned_after_rewrite(self):
        log = self._filled_log()
        log.rewrite_prefix(4, [])
        appended = log.append(make_event())
        assert appended.lsn == 7

    def test_since_remains_correct_after_rewrite(self):
        log = self._filled_log()
        log.rewrite_prefix(3, [])
        assert [event.lsn for event in log.since(4)] == [5, 6]

    def test_replacement_lsn_out_of_range_rejected(self):
        log = self._filled_log()
        bad = LogEvent(
            lsn=9, timestamp=0.0, entity_type="t", entity_key="k",
            kind=EventKind.SUMMARY,
        )
        with pytest.raises(ReproError):
            log.rewrite_prefix(4, [bad])

    def test_replacement_must_be_ascending(self):
        log = self._filled_log()
        first = LogEvent(lsn=3, timestamp=0.0, entity_type="t",
                         entity_key="a", kind=EventKind.SUMMARY)
        second = LogEvent(lsn=2, timestamp=0.0, entity_type="t",
                          entity_key="b", kind=EventKind.SUMMARY)
        with pytest.raises(ReproError):
            log.rewrite_prefix(4, [first, second])


class TestEventRecord:
    def test_identity_is_origin_scoped(self):
        event = LogEvent(
            lsn=0, timestamp=1.0, entity_type="t", entity_key="k",
            kind=EventKind.INSERT, origin="r1", origin_seq=7,
        )
        assert event.identity == ("r1", 7)
        assert event.entity_ref == ("t", "k")

    def test_dict_roundtrip(self):
        event = LogEvent(
            lsn=3, timestamp=2.5, entity_type="order", entity_key="o1",
            kind=EventKind.SET_FIELDS, payload={"total": 9},
            origin="r2", origin_seq=4, tx_id="tx-9",
            schema_version=2, tags=frozenset({"regulatory"}),
        )
        assert LogEvent.from_dict(event.to_dict()) == event
