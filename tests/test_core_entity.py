"""Tests for the entity model and catalog."""

from __future__ import annotations

import pytest

from repro.core.entity import (
    EntityCatalog,
    EntityType,
    FieldSpec,
    child_key,
    is_descendant,
    parent_key,
)
from repro.errors import SchemaViolation, UnknownEntityType


def order_type(version=1):
    return EntityType.define(
        "order",
        [
            FieldSpec("total", "float", required=True),
            FieldSpec("customer_id", "str", reference="customer"),
            FieldSpec("tags", "set"),
        ],
        schema_version=version,
    )


class TestFieldSpec:
    def test_accepts_matching_kind(self):
        assert FieldSpec("total", "float").problems_with(3.5) == []
        assert FieldSpec("total", "float").problems_with(3) == []  # int ok as float
        assert FieldSpec("name", "str").problems_with("x") == []

    def test_rejects_wrong_kind(self):
        problems = FieldSpec("total", "float").problems_with("oops")
        assert "expected float" in problems[0]

    def test_bool_is_not_int(self):
        assert FieldSpec("count", "int").problems_with(True)

    def test_none_is_always_acceptable(self):
        assert FieldSpec("total", "float").problems_with(None) == []

    def test_any_kind_accepts_everything(self):
        assert FieldSpec("blob", "any").problems_with(object()) == []


class TestEntityType:
    def test_unknown_field_reported(self):
        problems = order_type().problems_with({"bogus": 1})
        assert "unknown field" in problems[0]

    def test_incomplete_entry_allowed_by_default(self):
        # Principle 2.2: entry-stage data may be incomplete.
        assert order_type().problems_with({}) == []

    def test_completeness_check_reports_missing_required(self):
        problems = order_type().problems_with({}, complete=True)
        assert any("missing required" in problem for problem in problems)

    def test_strict_validation_raises(self):
        with pytest.raises(SchemaViolation):
            order_type().validate_strict({"total": "NaNish"})

    def test_strict_validation_passes_good_payload(self):
        order_type().validate_strict({"total": 5.0, "customer_id": "c1"})

    def test_references_lists_foreign_keys(self):
        assert order_type().references() == {"customer_id": "customer"}


class TestCatalog:
    def test_register_and_get(self):
        catalog = EntityCatalog()
        catalog.register(order_type())
        assert catalog.get("order").name == "order"
        assert "order" in catalog

    def test_unknown_type_raises(self):
        with pytest.raises(UnknownEntityType):
            EntityCatalog().get("ghost")

    def test_schema_evolution_requires_newer_version(self):
        catalog = EntityCatalog()
        catalog.register(order_type(version=1))
        with pytest.raises(SchemaViolation):
            catalog.register(order_type(version=1))
        catalog.register(order_type(version=2))
        assert catalog.get("order").schema_version == 2

    def test_children_of(self):
        catalog = EntityCatalog()
        catalog.register(order_type())
        catalog.register(
            EntityType.define("order_line", [FieldSpec("qty", "int")], parent="order")
        )
        children = catalog.children_of("order")
        assert [child.name for child in children] == ["order_line"]

    def test_names_sorted(self):
        catalog = EntityCatalog()
        catalog.register(EntityType.define("zebra", []))
        catalog.register(EntityType.define("apple", []))
        assert catalog.names() == ["apple", "zebra"]


class TestHierarchicalKeys:
    def test_child_key_builds_path(self):
        assert child_key("order/o1", "line-2") == "order/o1/line-2"

    def test_child_suffix_may_not_contain_slash(self):
        with pytest.raises(ValueError):
            child_key("order/o1", "line/2")

    def test_parent_key_strips_one_level(self):
        assert parent_key("order/o1/line-2") == "order/o1"
        assert parent_key("o1") is None

    def test_is_descendant(self):
        assert is_descendant("order/o1/line-2", "order/o1")
        assert not is_descendant("order/o10", "order/o1")
        assert not is_descendant("order/o1", "order/o1")
