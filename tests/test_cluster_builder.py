"""The Cluster builder facade and the unified read protocol."""

from __future__ import annotations

import pytest

from repro import Cluster, ClusterBuilder, ConsistencyLevel
from repro.core.readpath import ReadRequest, ReadSurface, read_from
from repro.lsdb.store import LSDBStore
from repro.replication import (
    ActiveActiveGroup,
    AsyncPrimaryBackup,
    MasterSlaveGroup,
    QuorumGroup,
    SyncPrimaryBackup,
)
from repro.replication.batching import BatchPolicy
from repro.sim.network import Network
from repro.sim.scheduler import Simulator


class TestBuilderModes:
    def test_async_pair_round_trip(self):
        cluster = (
            Cluster.build(seed=1)
            .with_replicas(2, mode="async", ship_interval=10.0)
            .create()
        )
        assert isinstance(cluster.replication, AsyncPrimaryBackup)
        cluster.replication.write_insert("order", "o-1", {"total": 5})
        cluster.sim.run(until=30.0)
        assert cluster.read("order", "o-1").fields["total"] == 5
        assert cluster.read(
            "order", "o-1", request=ReadRequest.eventual()
        ).fields["total"] == 5

    def test_async_generalises_to_master_slave(self):
        cluster = Cluster.build(seed=1).with_replicas(3, mode="async").create()
        assert isinstance(cluster.replication, MasterSlaveGroup)
        assert set(cluster.replication.slaves) == {"slave-1", "slave-2"}

    def test_sync_pair(self):
        cluster = Cluster.build(seed=1).with_replicas(2, mode="sync").create()
        assert isinstance(cluster.replication, SyncPrimaryBackup)
        cluster.replication.write_insert("order", "o-1", {"total": 2})
        cluster.sim.run(until=50.0)
        assert cluster.read("order", "o-1").fields["total"] == 2

    def test_sync_rejects_larger_groups(self):
        with pytest.raises(ValueError):
            Cluster.build().with_replicas(3, mode="sync").create()

    def test_active_active(self):
        cluster = (
            Cluster.build(seed=1)
            .with_replicas(3, mode="active_active", anti_entropy_interval=5.0)
            .create()
        )
        assert isinstance(cluster.replication, ActiveActiveGroup)
        assert set(cluster.replication.replicas) == {"r1", "r2", "r3"}

    def test_quorum(self):
        cluster = (
            Cluster.build(seed=1).with_replicas(3, mode="quorum").create()
        )
        assert isinstance(cluster.replication, QuorumGroup)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Cluster.build().with_replicas(2, mode="chain")

    def test_single_replica_rejected(self):
        with pytest.raises(ValueError):
            Cluster.build().with_replicas(1)


class TestBuilderComponents:
    def test_standalone_stack(self):
        cluster = (
            Cluster.build(seed=7)
            .with_store(name="orders-unit", origin="u1")
            .with_queue()
            .with_transactions(commit_cost=1.0, defer_lag=2.0)
            .with_compensation()
            .create()
        )
        assert cluster.store.origin == "u1"
        tx = cluster.transactions.begin()
        tx.insert("order", "o-1", {"total": 1})
        receipt = tx.commit()
        assert receipt.committed
        cluster.sim.run()
        assert cluster.read("order", "o-1").fields["total"] == 1
        assert cluster.compensation.store is cluster.store

    def test_transactions_imply_a_store(self):
        cluster = Cluster.build().with_transactions().create()
        assert cluster.store is not None
        assert cluster.transactions is not None

    def test_partition_units(self):
        cluster = Cluster.build().with_partition_units("u1", "u2").create()
        assert set(cluster.units) == {"u1", "u2"}
        assert cluster.units["u1"].store.origin == "u1"

    def test_warehouse_needs_a_source(self):
        with pytest.raises(ValueError):
            Cluster.build().with_warehouse(interval=10.0).create()

    def test_warehouse_over_replication(self):
        cluster = (
            Cluster.build(seed=5)
            .with_replicas(2, mode="master_slave", ship_interval=10.0)
            .with_warehouse(interval=30.0)
            .create()
        )
        cluster.replication.write_insert("report", "today", {"revenue": 6})
        cluster.sim.run(until=35.0)
        assert cluster.warehouse.get("report", "today").fields["revenue"] == 6

    def test_tracing_wires_everything(self):
        cluster = (
            Cluster.build(seed=1)
            .with_replicas(2, mode="async")
            .with_tracing()
            .create()
        )
        assert cluster.sim.tracer is cluster.tracer
        assert cluster.network.tracer is cluster.tracer
        assert cluster.store.tracer is cluster.tracer
        assert cluster.network.metrics is cluster.metrics

    def test_read_without_surface_raises(self):
        cluster = Cluster.build().create()
        with pytest.raises(RuntimeError):
            cluster.read("order", "o-1")


class TestLegacyConstructors:
    """The builder is a facade: hand-wiring stays fully supported."""

    def test_hand_wired_async_pair(self):
        sim = Simulator(seed=3)
        net = Network(sim, latency=5.0)
        pair = AsyncPrimaryBackup(
            sim, net, ship_interval=10.0, batching=BatchPolicy()
        )
        pair.write_insert("order", "o-1", {"total": 9})
        sim.run(until=30.0)
        assert pair.backup.store.get("order", "o-1").fields["total"] == 9

    def test_legacy_node_addressed_read(self):
        sim = Simulator(seed=3)
        net = Network(sim, latency=1.0)
        group = MasterSlaveGroup(
            sim, net, "master", ["slave"], ship_interval=5.0,
            batching=BatchPolicy(),
        )
        group.write_insert("order", "o-1", {"total": 4})
        sim.run(until=20.0)
        # Three-positional form still addresses an explicit replica.
        assert group.read("master", "order", "o-1").fields["total"] == 4
        assert group.read("slave", "order", "o-1").fields["total"] == 4


class TestReadProtocol:
    def test_consistency_routes_master_slave(self):
        cluster = (
            Cluster.build(seed=2)
            .with_network(latency=1.0)
            .with_replicas(2, mode="master_slave", ship_interval=10.0)
            .create()
        )
        cluster.replication.write_insert("order", "o-1", {"total": 4})
        # Before shipping: the master has it, the slave does not.
        assert cluster.read(
            "order", "o-1", request=ReadRequest.strong()
        ).fields["total"] == 4
        assert cluster.read(
            "order", "o-1",
            request=ReadRequest(level=ConsistencyLevel.BOUNDED_STALENESS),
        ).unwrap() is None
        cluster.sim.run(until=30.0)
        assert cluster.read(
            "order", "o-1",
            request=ReadRequest(level=ConsistencyLevel.BOUNDED_STALENESS),
        ).fields["total"] == 4

    def test_store_implements_protocol(self):
        store = LSDBStore()
        store.insert("order", "o-1", {"total": 1})
        assert isinstance(store, ReadSurface)
        assert store.read("order", "o-1").fields["total"] == 1
        # The deprecated loose keyword finished its cycle: it now fails
        # like any unknown keyword instead of being quietly accepted.
        with pytest.raises(TypeError):
            store.read("order", "o-1", consistency=ConsistencyLevel.STRONG)

    def test_read_from_falls_back_to_get(self):
        class LegacySurface:
            def get(self, entity_type, entity_key):
                return (entity_type, entity_key)

        assert read_from(LegacySurface(), "order", "o-1") == ("order", "o-1")

    def test_builder_round_trips_all_modes(self):
        for mode, count in (
            ("async", 2),
            ("sync", 2),
            ("master_slave", 2),
            ("active_active", 2),
            ("quorum", 3),
        ):
            builder = Cluster.build(seed=4).with_replicas(count, mode=mode)
            cluster = builder.create()
            assert isinstance(builder, ClusterBuilder)
            assert cluster.replication is not None
            assert cluster.store is not None


class TestChaosAndPolicyDeclarations:
    def test_with_chaos_builds_an_engine(self):
        from repro.chaos import ChaosEngine

        cluster = (
            Cluster.build(seed=5)
            .with_replicas(3, mode="active_active")
            .with_chaos(profile="light")
            .create()
        )
        assert isinstance(cluster.chaos, ChaosEngine)
        assert cluster.chaos.profile.name == "light"

    def test_with_chaos_implies_a_network(self):
        cluster = Cluster.build(seed=5).with_chaos().create()
        assert cluster.network is not None
        assert cluster.chaos is not None

    def test_with_chaos_private_seed_pins_schedule(self):
        def plan(chaos_seed):
            cluster = (
                Cluster.build(seed=1)
                .with_replicas(3, mode="active_active")
                .with_chaos(seed=chaos_seed)
                .create()
            )
            return cluster.chaos.plan(1000.0)

        assert plan(99) == plan(99)
        assert plan(99) != plan(100)

    def test_with_policies_flows_into_queue_and_schemes(self):
        from repro.core.policy import RetryPolicy, TimeoutPolicy

        retry = RetryPolicy.exponential(max_attempts=3, base_delay=5.0)
        timeout = TimeoutPolicy(per_attempt=40.0, overall=200.0)
        cluster = (
            Cluster.build(seed=5)
            .with_replicas(3, mode="quorum")
            .with_queue()
            .with_policies(retry=retry, timeout=timeout)
            .create()
        )
        assert cluster.queue.retry_policy is retry
        assert cluster.queue.timeout_policy is timeout
        assert cluster.replication.retry_policy is retry
        assert cluster.replication.timeout_policy is timeout
        assert cluster.retry_policy is retry

    def test_explicit_component_policy_beats_cluster_default(self):
        from repro.core.policy import RetryPolicy

        cluster_default = RetryPolicy.fixed(max_attempts=9, delay=1.0)
        queue_specific = RetryPolicy.fixed(max_attempts=2, delay=3.0)
        cluster = (
            Cluster.build(seed=5)
            .with_queue(retry=queue_specific)
            .with_policies(retry=cluster_default)
            .create()
        )
        assert cluster.queue.retry_policy is queue_specific


class TestElasticCluster:
    """with_ring / scale_out / scale_in on the builder facade."""

    def make_cluster(self, *, seed=11, units=("u1", "u2", "u3", "u4")):
        cluster = (
            Cluster.build(seed=seed)
            .with_ring(*units, vnodes=32, batch_size=8)
            .create()
        )
        for index in range(60):
            key = f"k{index}"
            owner = cluster.directory.unit_for("order", key)
            cluster.units[owner].store.insert("order", key, {"n": index})
        return cluster

    def test_with_ring_wires_the_elastic_stack(self):
        from repro.partition import (
            ConsistentHashRing,
            DynamicDirectory,
            EntityMover,
            Rebalancer,
        )

        cluster = self.make_cluster()
        assert isinstance(cluster.ring, ConsistentHashRing)
        assert isinstance(cluster.directory, DynamicDirectory)
        assert isinstance(cluster.mover, EntityMover)
        assert isinstance(cluster.rebalancer, Rebalancer)
        assert cluster.directory.base is cluster.ring
        assert set(cluster.units) == {"u1", "u2", "u3", "u4"}

    def test_scale_out_relocates_and_compacts(self):
        cluster = self.make_cluster()
        run = cluster.scale_out("u5")
        run.wait()
        assert run.done
        assert "u5" in cluster.ring
        assert "u5" in cluster.units
        assert run.report.completed == run.report.planned
        assert run.report.failed == 0
        assert cluster.directory.override_count == 0
        for index in range(60):
            key = f"k{index}"
            owner = cluster.directory.unit_for("order", key)
            assert cluster.units[owner].store.get("order", key).fields["n"] == index

    def test_scale_out_moves_a_minority_of_keys(self):
        cluster = self.make_cluster()
        run = cluster.scale_out("u5")
        run.wait()
        # Consistent hashing: ~1/(N+1) of keys move, never a reshuffle.
        assert 0 < run.report.completed <= 60 * 2 // 5

    def test_scale_in_drains_the_unit(self):
        cluster = self.make_cluster()
        run = cluster.scale_in("u4")
        run.wait()
        assert run.done
        assert "u4" not in cluster.ring
        assert "u4" not in cluster.units
        assert "u4" in cluster.retired_units
        for index in range(60):
            key = f"k{index}"
            owner = cluster.directory.unit_for("order", key)
            assert owner != "u4"
            assert cluster.units[owner].store.get("order", key).fields["n"] == index

    def test_scale_out_duplicate_unit_rejected(self):
        cluster = self.make_cluster()
        with pytest.raises(ValueError):
            cluster.scale_out("u1")

    def test_scale_in_unknown_unit_rejected(self):
        cluster = self.make_cluster()
        with pytest.raises(KeyError):
            cluster.scale_in("u99")

    def test_scale_out_without_ring_raises(self):
        cluster = Cluster.build(seed=1).with_partition_units("u1", "u2").create()
        with pytest.raises(RuntimeError):
            cluster.scale_out("u3")

    def test_scale_out_on_done_callback_fires(self):
        cluster = self.make_cluster()
        seen = []
        run = cluster.scale_out("u5", on_done=lambda r: seen.append(r))
        run.wait()
        assert seen and seen[0] is run
