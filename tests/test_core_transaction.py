"""Tests for the transaction layer: solipsism, CC baselines, deferral."""

from __future__ import annotations

import pytest

from repro.core.constraints import (
    ConstraintManager,
    ConstraintMode,
    NonNegativeConstraint,
)
from repro.core.transaction import (
    DESCRIPTOR_TYPE,
    CCMode,
    IsolationLevel,
    TransactionManager,
    UpdateMode,
)
from repro.errors import TransactionAborted
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta
from repro.queues.reliable import ReliableQueue
from repro.sim.scheduler import Simulator


class TestSolipsisticCommit:
    def test_commit_applies_buffered_ops(self, tx_manager):
        tx = tx_manager.begin()
        tx.insert("order", "o1", {"total": 5})
        tx.apply_delta("order", "o1", Delta.add("total", 2))
        receipt = tx.commit()
        assert receipt.committed
        assert tx_manager.store.get("order", "o1").fields["total"] == 7

    def test_nothing_visible_before_commit(self, tx_manager):
        tx = tx_manager.begin()
        tx.insert("order", "o1", {"total": 5})
        assert tx_manager.store.get("order", "o1") is None

    def test_solipsistic_conflicting_commits_both_succeed(self, tx_manager):
        """Principle 2.10: no waits, no validation aborts — deltas compose."""
        tx_manager.store.insert("stock", "s", {"qty": 10})
        tx_a = tx_manager.begin()
        tx_b = tx_manager.begin()
        tx_a.read("stock", "s")
        tx_b.read("stock", "s")
        tx_a.apply_delta("stock", "s", Delta.add("qty", -3))
        tx_b.apply_delta("stock", "s", Delta.add("qty", -4))
        assert tx_a.commit().committed
        assert tx_b.commit().committed
        assert tx_manager.store.get("stock", "s").fields["qty"] == 3
        assert tx_manager.abort_rate == 0.0

    def test_read_your_writes_within_transaction(self, tx_manager):
        tx_manager.store.insert("acct", "a", {"bal": 10})
        tx = tx_manager.begin()
        tx.apply_delta("acct", "a", Delta.add("bal", 5))
        assert tx.read("acct", "a").fields["bal"] == 15
        # other transactions see nothing yet
        assert tx_manager.store.get("acct", "a").fields["bal"] == 10

    def test_finished_transaction_rejects_further_use(self, tx_manager):
        tx = tx_manager.begin()
        tx.commit()
        with pytest.raises(TransactionAborted):
            tx.insert("t", "k", {})

    def test_abort_discards_everything(self, tx_manager):
        tx = tx_manager.begin()
        tx.insert("order", "o1", {})
        receipt = tx.abort("changed my mind")
        assert not receipt.committed
        assert tx_manager.store.get("order", "o1") is None
        assert tx_manager.abort_reasons == {"changed my mind": 1}

    def test_events_carry_tx_id(self, tx_manager):
        tx = tx_manager.begin(tx_id="custom-tx")
        tx.insert("order", "o1", {})
        receipt = tx.commit()
        assert receipt.events[0].tx_id == "custom-tx"


class TestOptimisticMode:
    def test_conflicting_read_aborts_second_committer(self, tx_manager):
        tx_manager.store.insert("stock", "s", {"qty": 10})
        tx_a = tx_manager.begin(mode=CCMode.OPTIMISTIC)
        tx_b = tx_manager.begin(mode=CCMode.OPTIMISTIC)
        tx_a.read("stock", "s")
        tx_b.read("stock", "s")
        tx_a.set_fields("stock", "s", {"qty": 7})
        tx_b.set_fields("stock", "s", {"qty": 6})
        assert tx_a.commit().committed
        receipt_b = tx_b.commit()
        assert not receipt_b.committed
        assert "concurrent" in receipt_b.reason
        # the failed write left nothing behind
        assert tx_manager.store.get("stock", "s").fields["qty"] == 7

    def test_disjoint_optimistic_transactions_commit(self, tx_manager):
        tx_a = tx_manager.begin(mode=CCMode.OPTIMISTIC)
        tx_b = tx_manager.begin(mode=CCMode.OPTIMISTIC)
        tx_a.insert("a", "1", {})
        tx_b.insert("b", "1", {})
        assert tx_a.commit().committed
        assert tx_b.commit().committed

    def test_explicit_abort_in_optimistic_mode(self, tx_manager):
        tx = tx_manager.begin(mode=CCMode.OPTIMISTIC)
        tx.read("stock", "s")
        receipt = tx.abort()
        assert not receipt.committed
        assert tx_manager.occ.active_count == 0


class TestTryLockMode:
    def test_lock_conflict_aborts(self, tx_manager):
        tx_manager.locks.acquire("order/o1", "someone-else")
        tx = tx_manager.begin(mode=CCMode.TRY_LOCK)
        tx.set_fields("order", "o1", {"v": 1})
        receipt = tx.commit()
        assert not receipt.committed
        assert "lock unavailable" in receipt.reason

    def test_partial_acquisition_released_on_abort(self, tx_manager):
        tx_manager.locks.acquire("b/1", "someone-else")
        tx = tx_manager.begin(mode=CCMode.TRY_LOCK)
        tx.insert("a", "1", {})
        tx.insert("b", "1", {})
        assert not tx.commit().committed
        assert not tx_manager.locks.is_locked("a/1")

    def test_locks_released_after_commit_without_actions(self, tx_manager):
        tx = tx_manager.begin(mode=CCMode.TRY_LOCK)
        tx.insert("order", "o1", {})
        assert tx.commit().committed
        assert not tx_manager.locks.is_locked("order/o1")


class TestDeferredUpdates:
    def _manager(self, sim, update_mode):
        store = LSDBStore(clock=lambda: sim.now)
        return TransactionManager(
            store,
            sim=sim,
            update_mode=update_mode,
            commit_cost=1.0,
            defer_lag=2.0,
        )

    def test_deferred_ack_precedes_actions(self):
        sim = Simulator()
        manager = self._manager(sim, UpdateMode.DEFERRED)
        tx = manager.begin()
        tx.insert("order", "o1", {"total": 10})
        tx.defer(
            "agg", lambda s: s.apply_delta("agg", "day", Delta.add("rev", 10)), cost=5.0
        )
        receipt = tx.commit()
        assert receipt.response_time == 1.0  # just the descriptor commit
        assert receipt.staleness_window == 7.0  # lag 2 + cost 5
        # At ack time the aggregate is still stale:
        sim.run(until=receipt.acked_at)
        assert manager.store.get("agg", "day") is None
        # After the window it is consistent:
        sim.run(until=receipt.actions_done_at)
        assert manager.store.get("agg", "day").fields["rev"] == 10

    def test_synchronous_ack_includes_action_cost(self):
        sim = Simulator()
        manager = self._manager(sim, UpdateMode.SYNCHRONOUS)
        tx = manager.begin()
        tx.insert("order", "o1", {"total": 10})
        tx.defer(
            "agg", lambda s: s.apply_delta("agg", "day", Delta.add("rev", 10)), cost=5.0
        )
        receipt = tx.commit()
        assert receipt.response_time == 6.0  # commit 1 + action 5
        assert receipt.staleness_window == 0.0
        sim.run(until=receipt.acked_at)
        assert manager.store.get("agg", "day").fields["rev"] == 10

    def test_descriptor_committed_then_marked_done(self):
        sim = Simulator()
        manager = self._manager(sim, UpdateMode.DEFERRED)
        tx = manager.begin()
        tx.insert("order", "o1", {})
        tx.defer("noop", lambda s: None, cost=1.0)
        receipt = tx.commit()
        descriptor = manager.store.get(DESCRIPTOR_TYPE, receipt.tx_id)
        assert descriptor.fields["status"] == "pending"
        assert descriptor.fields["actions"] == ["noop"]
        sim.run()
        descriptor = manager.store.get(DESCRIPTOR_TYPE, receipt.tx_id)
        assert descriptor.fields["status"] == "done"

    def test_logical_locks_held_until_actions_done(self):
        sim = Simulator()
        manager = self._manager(sim, UpdateMode.DEFERRED)
        tx = manager.begin()
        tx.insert("order", "o1", {})
        tx.defer("slow", lambda s: None, cost=10.0)
        receipt = tx.commit()
        sim.run(until=receipt.acked_at)
        # Another lock-respecting user is excluded while actions pend:
        assert not manager.locks.acquire("order/o1", "other-user")
        sim.run()
        assert manager.locks.acquire("order/o1", "other-user")

    def test_owner_not_blocked_by_own_pending_actions(self):
        sim = Simulator()
        manager = self._manager(sim, UpdateMode.DEFERRED)
        tx = manager.begin()
        tx.insert("order", "o1", {})
        tx.defer("slow", lambda s: None, cost=10.0)
        receipt = tx.commit()
        # The same owner can re-acquire (SAP: locks block other users,
        # not the transaction's own user).
        assert manager.locks.acquire("order/o1", receipt.tx_id)

    def test_multiple_actions_run_in_order(self):
        sim = Simulator()
        manager = self._manager(sim, UpdateMode.DEFERRED)
        ran = []
        tx = manager.begin()
        tx.insert("order", "o1", {})
        tx.defer("first", lambda s: ran.append(("first", sim.now)), cost=2.0)
        tx.defer("second", lambda s: ran.append(("second", sim.now)), cost=3.0)
        receipt = tx.commit()
        sim.run()
        assert ran == [("first", 5.0), ("second", 8.0)]
        assert receipt.actions_done_at == 8.0

    def test_no_sim_runs_actions_inline(self):
        store = LSDBStore()
        manager = TransactionManager(store)
        tx = manager.begin()
        tx.insert("order", "o1", {})
        tx.defer("agg", lambda s: s.insert("agg", "day", {"n": 1}))
        tx.commit()
        assert store.get("agg", "day").fields["n"] == 1


class TestReceiptTiming:
    """CommitReceipt timing semantics across update modes and outcomes."""

    def _manager(self, sim, update_mode=UpdateMode.DEFERRED, **kwargs):
        store = LSDBStore(clock=lambda: sim.now)
        return TransactionManager(
            store,
            sim=sim,
            update_mode=update_mode,
            commit_cost=1.0,
            defer_lag=2.0,
            **kwargs,
        )

    def test_commit_without_actions_collapses_timeline(self):
        sim = Simulator()
        manager = self._manager(sim)
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        tx = manager.begin()
        tx.insert("order", "o1", {})
        receipt = tx.commit()
        assert receipt.submitted_at == 5.0
        assert receipt.acked_at == 6.0  # commit_cost only
        assert receipt.actions_done_at == receipt.acked_at
        assert receipt.response_time == 1.0
        assert receipt.staleness_window == 0.0

    def test_deferred_vs_synchronous_same_work(self):
        def run(update_mode):
            sim = Simulator()
            manager = self._manager(sim, update_mode=update_mode)
            tx = manager.begin()
            tx.insert("order", "o1", {})
            tx.defer("agg", lambda s: None, cost=4.0)
            return tx.commit()

        deferred = run(UpdateMode.DEFERRED)
        synchronous = run(UpdateMode.SYNCHRONOUS)
        # Deferral buys exactly the action cost off the response time
        # and pays it back as a staleness window (plus the defer lag).
        assert deferred.response_time == 1.0
        assert synchronous.response_time == 5.0
        assert deferred.staleness_window == 6.0  # lag 2 + cost 4
        assert synchronous.staleness_window == 0.0
        assert (
            deferred.acked_at + deferred.staleness_window
            == deferred.actions_done_at
        )

    def test_abort_receipt_times_collapse_to_now(self):
        sim = Simulator()
        manager = self._manager(sim)
        tx = manager.begin()
        tx.insert("order", "o1", {})
        tx.defer("never", lambda s: None, cost=9.0)
        sim.schedule_at(3.0, lambda: None)
        sim.run()
        receipt = tx.abort("operator said no")
        assert receipt.submitted_at == 3.0
        assert receipt.acked_at == 3.0
        assert receipt.actions_done_at == 3.0
        assert receipt.response_time == 0.0
        assert receipt.staleness_window == 0.0
        assert receipt.began_at == 0.0
        # No descriptor was ever committed for the aborted work.
        assert manager.store.get(DESCRIPTOR_TYPE, receipt.tx_id) is None

    def test_began_at_feeds_snapshot_age(self):
        sim = Simulator()
        manager = self._manager(sim, isolation=IsolationLevel.SNAPSHOT)
        tx = manager.begin()
        sim.schedule_at(7.0, lambda: None)
        sim.run()
        receipt = tx.commit()
        assert receipt.began_at == 0.0
        assert receipt.snapshot_age == 7.0
        assert receipt.snapshot_age == receipt.submitted_at - receipt.began_at

    def test_deferred_action_that_itself_aborts(self):
        # A deferred action runs its own transaction which aborts: the
        # outer receipt's timeline is unaffected, the outer descriptor
        # still completes, and the inner abort is accounted.
        sim = Simulator()
        manager = self._manager(sim)

        def flaky_action(store):
            inner = manager.begin()
            inner.insert("agg", "day", {"n": 1})
            inner.abort("downstream rejected")

        tx = manager.begin()
        tx.insert("order", "o1", {})
        tx.defer("flaky", flaky_action, cost=2.0)
        receipt = tx.commit()
        sim.run()
        assert receipt.committed
        assert receipt.staleness_window == 4.0  # lag 2 + cost 2
        assert manager.store.get("agg", "day") is None
        assert manager.store.get(DESCRIPTOR_TYPE, receipt.tx_id).fields[
            "status"
        ] == "done"
        assert manager.aborts == 1
        assert manager.abort_reasons == {"downstream rejected": 1}
        assert not manager.locks.is_locked("order/o1")

    def test_deferred_action_abort_under_isolation_conflict(self):
        # The inner transaction aborts for a *real* reason: its write
        # races a concurrent snapshot-level commit on the same ref.
        sim = Simulator()
        manager = self._manager(sim, isolation=IsolationLevel.SNAPSHOT)
        outcomes = []

        def racing_action(store):
            inner = manager.begin()
            inner.set_fields("agg", "day", {"n": 1})
            rival = manager.begin()
            rival.set_fields("agg", "day", {"n": 2})
            assert rival.commit().committed
            outcomes.append(inner.commit())

        tx = manager.begin()
        tx.insert("order", "o1", {})
        tx.defer("racing", racing_action, cost=2.0)
        receipt = tx.commit()
        sim.run()
        assert receipt.committed
        inner_receipt = outcomes[0]
        assert not inner_receipt.committed
        assert "write-write conflict" in inner_receipt.reason
        assert inner_receipt.isolation == "snapshot"
        assert manager.store.get("agg", "day").fields["n"] == 2


class TestOutboxIntegration:
    def test_commit_publishes_enqueued_events(self, sim, tx_manager, queue):
        seen = []
        queue.subscribe("order.created", lambda m: seen.append(m.causation_id) or True)
        tx = tx_manager.begin()
        tx.insert("order", "o1", {})
        tx.enqueue("order.created", {"key": "o1"})
        receipt = tx.commit()
        sim.run()
        assert seen == [receipt.tx_id]

    def test_abort_publishes_only_compensations(self, sim, tx_manager, queue):
        seen = []
        queue.subscribe("order.created", lambda m: seen.append("created") or True)
        queue.subscribe("cleanup", lambda m: seen.append("cleanup") or True)
        tx = tx_manager.begin()
        tx.enqueue("order.created", {})
        tx.enqueue_on_abort("cleanup", {})
        tx.abort()
        sim.run()
        assert seen == ["cleanup"]


class TestConstraintIntegration:
    def test_managed_violation_commits_with_record(self, constrained_tx_manager):
        manager = constrained_tx_manager
        manager.constraints.add(NonNegativeConstraint("floor", "stock", "qty"))
        tx = manager.begin()
        tx.insert("stock", "s", {"qty": -1})
        receipt = tx.commit()
        assert receipt.committed
        assert len(receipt.violations) == 1

    def test_prevent_violation_aborts(self, constrained_tx_manager):
        manager = constrained_tx_manager
        manager.constraints.add(
            NonNegativeConstraint("floor", "stock", "qty"),
            mode=ConstraintMode.PREVENT,
        )
        tx = manager.begin()
        tx.insert("stock", "s", {"qty": -1})
        receipt = tx.commit()
        assert not receipt.committed
        assert manager.store.get("stock", "s") is None
