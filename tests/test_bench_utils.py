"""Tests for benchmark workloads, metrics and reporting."""

from __future__ import annotations

import pytest

from repro.bench.metrics import AvailabilityProbe, LatencyRecorder, ThroughputWindow
from repro.bench.report import ExperimentReport, format_cell, format_table
from repro.bench.workloads import (
    KeyChooser,
    MixChooser,
    open_loop_arrivals,
    shuffled_within_window,
)
from repro.sim.rng import SeededRNG


class TestLatencyRecorder:
    def test_percentiles(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):
            recorder.record(float(value))
        assert recorder.p50 == 50.0
        assert recorder.p99 == 99.0
        assert recorder.percentile(100) == 100.0
        assert recorder.maximum == 100.0

    def test_empty_recorder_is_zeroes(self):
        recorder = LatencyRecorder()
        assert recorder.mean == 0.0
        assert recorder.p99 == 0.0

    def test_invalid_percentile(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        with pytest.raises(ValueError):
            recorder.percentile(101)

    def test_summary_keys(self):
        recorder = LatencyRecorder()
        recorder.record(2.0)
        assert set(recorder.summary()) == {
            "count", "mean", "p50", "p95", "p99", "max"
        }


class TestProbesAndWindows:
    def test_throughput_window(self):
        window = ThroughputWindow(start=0.0, end=10.0)
        for _ in range(25):
            window.record()
        assert window.per_time_unit == 2.5

    def test_zero_duration_window(self):
        assert ThroughputWindow(start=1.0, end=1.0).per_time_unit == 0.0

    def test_availability_probe_windows(self):
        probe = AvailabilityProbe()
        probe.record(True)
        probe.record(False, during_failure=True)
        probe.record(True, during_failure=True)
        assert probe.availability == 2 / 3
        assert probe.availability_during_failure == 0.5

    def test_availability_vacuous_truths(self):
        probe = AvailabilityProbe()
        assert probe.availability == 1.0
        assert probe.availability_during_failure == 1.0


class TestWorkloads:
    def test_key_chooser_respects_population(self):
        chooser = KeyChooser(SeededRNG(1), ["a", "b", "c"], theta=0.5)
        assert {chooser.choose() for _ in range(100)} <= {"a", "b", "c"}

    def test_mix_chooser_ratios(self):
        mix = MixChooser(SeededRNG(2), {"read": 0.8, "write": 0.2})
        draws = [mix.choose() for _ in range(2000)]
        read_fraction = draws.count("read") / len(draws)
        assert 0.72 < read_fraction < 0.88

    def test_mix_chooser_validates(self):
        with pytest.raises(ValueError):
            MixChooser(SeededRNG(1), {})
        with pytest.raises(ValueError):
            MixChooser(SeededRNG(1), {"a": 0.0})

    def test_open_loop_arrivals_sorted_with_kinds(self):
        arrivals = open_loop_arrivals(
            SeededRNG(3), rate=2.0, duration=50.0,
            keys=["k1", "k2"], theta=0.9, kinds={"r": 1, "w": 1},
        )
        times = [arrival.at for arrival in arrivals]
        assert times == sorted(times)
        assert {arrival.kind for arrival in arrivals} <= {"r", "w"}

    def test_shuffle_window_one_is_identity(self):
        items = list(range(20))
        assert shuffled_within_window(SeededRNG(1), items, 1) == items

    def test_shuffle_window_bounds_displacement(self):
        items = list(range(100))
        shuffled = shuffled_within_window(SeededRNG(4), items, 10)
        assert sorted(shuffled) == items
        for position, value in enumerate(shuffled):
            assert abs(position - value) < 10

    def test_shuffle_window_validates(self):
        with pytest.raises(ValueError):
            shuffled_within_window(SeededRNG(1), [1], 0)


class TestReport:
    def test_format_cell(self):
        assert format_cell(True) == "yes"
        assert format_cell(1.23456) == "1.23"
        assert format_cell(12345.0) == "12,345"
        assert format_cell("text") == "text"
        assert format_cell(float("inf")) == "inf"

    def test_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_experiment_report_render(self):
        report = ExperimentReport("E1", "Availability", "eventual wins", ["x", "y"])
        report.add_row(1, 2)
        rendered = report.render()
        assert "== E1: Availability ==" in rendered
        assert "claim: eventual wins" in rendered

    def test_report_notes_included(self):
        report = ExperimentReport("E1", "t", "c", ["x"], notes="shape holds")
        report.add_row(1)
        assert "reading: shape holds" in report.render()
