"""Property-based tests for site-aware placement: the geo contract.

The :class:`~repro.partition.placement.PlacementPolicy` lifts the PR 4
consistent-hash construction one level up — sites own vnode arcs, a
shard's replica set is the first ``replicas`` distinct sites on the
circle walk.  The lift must preserve the ring's *exact* guarantees at
the replica-set level: adding a site may only pull shards **to** it
(one swap per shard at most), removing a site may only push its shards
**from** it, and two policies built from the same membership agree on
everything.  All of that is asserted here over hypothesis-generated
memberships, alongside coverage (every shard gets ``min(M, N)``
distinct sites) and the :func:`diff_placements` planner-minimality
property.
"""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.placement import PlacementPolicy, diff_placements

#: A fixed entity population for the routing assertions.
KEYS = [("order", f"k{index}") for index in range(200)]

SITE_NAMES = st.lists(
    st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=8),
    min_size=1,
    max_size=6,
    unique=True,
)
EXTRA_SITE = st.text(
    alphabet=string.ascii_uppercase, min_size=1, max_size=8
)  # uppercase: never collides with SITE_NAMES draws
REPLICAS = st.integers(min_value=1, max_value=4)
SHARDS = st.sampled_from([1, 8, 16])
VNODES = st.sampled_from([1, 8, 64])


class TestCoverage:
    @given(sites=SITE_NAMES, replicas=REPLICAS, shards=SHARDS, vnodes=VNODES)
    @settings(max_examples=40, deadline=None)
    def test_every_shard_gets_min_m_n_distinct_sites(
        self, sites, replicas, shards, vnodes
    ):
        policy = PlacementPolicy(
            sites, replicas=replicas, shards=shards, vnodes=vnodes
        )
        want = min(len(sites), replicas)
        for shard in range(shards):
            placed = policy.sites_for_shard(shard)
            assert len(placed) == want
            assert len(set(placed)) == want  # distinct sites, no doubles
            assert set(placed) <= set(sites)

    @given(sites=SITE_NAMES, replicas=REPLICAS, shards=SHARDS)
    @settings(max_examples=40, deadline=None)
    def test_queries_agree_with_the_preference_list(
        self, sites, replicas, shards
    ):
        policy = PlacementPolicy(sites, replicas=replicas, shards=shards)
        for entity_type, entity_key in KEYS[:50]:
            shard = policy.shard_of(entity_type, entity_key)
            assert 0 <= shard < shards
            placed = policy.sites_for_shard(shard)
            assert policy.sites_for(entity_type, entity_key) == placed
            assert policy.home_site(shard) == placed[0]
            for site in sites:
                assert policy.hosts(site, shard) == (site in placed)

    @given(sites=SITE_NAMES, replicas=REPLICAS, shards=SHARDS)
    @settings(max_examples=40, deadline=None)
    def test_shards_of_inverts_sites_for_shard(self, sites, replicas, shards):
        policy = PlacementPolicy(sites, replicas=replicas, shards=shards)
        for site in sites:
            hosted = set(policy.shards_of(site))
            expected = {
                shard
                for shard in range(shards)
                if site in policy.sites_for_shard(shard)
            }
            assert hosted == expected
        spread = policy.spread()
        assert sum(spread.values()) == shards * min(len(sites), replicas)


class TestMonotonicity:
    @given(sites=SITE_NAMES, extra=EXTRA_SITE, replicas=REPLICAS, vnodes=VNODES)
    @settings(max_examples=40, deadline=None)
    def test_adding_a_site_moves_replicas_only_to_it(
        self, sites, extra, replicas, vnodes
    ):
        policy = PlacementPolicy(
            sites, replicas=replicas, shards=16, vnodes=vnodes
        )
        grown = policy.with_site(extra)
        for shard in range(policy.shards):
            before = set(policy.sites_for_shard(shard))
            after = set(grown.sites_for_shard(shard))
            # The new member can only be the added site; at most one
            # old member was displaced to make room for it.
            assert after <= before | {extra}
            assert len(before - after) <= 1

    @given(sites=SITE_NAMES, replicas=REPLICAS, vnodes=VNODES)
    @settings(max_examples=40, deadline=None)
    def test_removing_a_site_moves_only_its_replicas(
        self, sites, replicas, vnodes
    ):
        if len(sites) < 2:
            return  # removing the last site is rejected (validated below)
        policy = PlacementPolicy(
            sites, replicas=replicas, shards=16, vnodes=vnodes
        )
        victim = policy.sites[0]
        shrunk = policy.without_site(victim)
        for shard in range(policy.shards):
            before = set(policy.sites_for_shard(shard))
            after = set(shrunk.sites_for_shard(shard))
            # Surviving members keep their copies; the victim's slot
            # goes to at most one replacement site.
            assert before - {victim} <= after
            assert victim not in after
            assert len(after - before) <= 1

    @given(sites=SITE_NAMES, extra=EXTRA_SITE, replicas=REPLICAS)
    @settings(max_examples=25, deadline=None)
    def test_shard_routing_is_unchanged_by_membership(
        self, sites, extra, replicas
    ):
        """Entity-to-shard mapping is pure MD5 — membership changes move
        replica *sets*, never which shard a key belongs to."""
        policy = PlacementPolicy(sites, replicas=replicas, shards=16)
        grown = policy.with_site(extra)
        for key in KEYS[:50]:
            assert policy.shard_of(*key) == grown.shard_of(*key)


class TestStability:
    @given(sites=SITE_NAMES, replicas=REPLICAS, vnodes=VNODES)
    @settings(max_examples=40, deadline=None)
    def test_identical_construction_identical_placement(
        self, sites, replicas, vnodes
    ):
        policy_a = PlacementPolicy(
            sites, replicas=replicas, shards=16, vnodes=vnodes
        )
        policy_b = PlacementPolicy(
            sites, replicas=replicas, shards=16, vnodes=vnodes
        )
        assert policy_a == policy_b
        for shard in range(16):
            assert policy_a.sites_for_shard(shard) == policy_b.sites_for_shard(
                shard
            )

    @given(sites=SITE_NAMES, replicas=REPLICAS)
    @settings(max_examples=40, deadline=None)
    def test_membership_is_a_set_not_a_sequence(self, sites, replicas):
        policy = PlacementPolicy(sites, replicas=replicas, shards=16)
        reversed_policy = PlacementPolicy(
            list(reversed(sites)), replicas=replicas, shards=16
        )
        for shard in range(16):
            assert policy.sites_for_shard(shard) == reversed_policy.sites_for_shard(
                shard
            )

    def test_placement_pinned_across_processes(self):
        """MD5, not salted ``hash``: geo placements must never drift (a
        drift would silently reship every shard across the WAN)."""
        policy = PlacementPolicy(["dc1", "dc2", "dc3"], replicas=2, shards=6)
        preference = [list(policy.sites_for_shard(s)) for s in range(6)]
        assert preference == [
            ["dc1", "dc3"],
            ["dc1", "dc3"],
            ["dc1", "dc3"],
            ["dc2", "dc3"],
            ["dc2", "dc3"],
            ["dc2", "dc3"],
        ]


class TestPlannerMinimality:
    @given(sites=SITE_NAMES, extra=EXTRA_SITE, replicas=REPLICAS)
    @settings(max_examples=40, deadline=None)
    def test_diff_contains_exactly_the_disagreements(
        self, sites, extra, replicas
    ):
        policy = PlacementPolicy(sites, replicas=replicas, shards=16)
        grown = policy.with_site(extra)
        moves = diff_placements(policy, grown)
        for shard in range(16):
            before = set(policy.sites_for_shard(shard))
            after = set(grown.sites_for_shard(shard))
            if before == after:
                assert shard not in moves
            else:
                added, removed = moves[shard]
                assert set(added) == after - before
                assert set(removed) == before - after

    @given(sites=SITE_NAMES, extra=EXTRA_SITE, replicas=REPLICAS)
    @settings(max_examples=40, deadline=None)
    def test_one_membership_change_is_one_swap_per_shard(
        self, sites, extra, replicas
    ):
        """A single site add/remove costs each shard at most one
        bootstrap and one drain — the WAN bill of elasticity is bounded
        per shard, exactly like the flat ring's key movement."""
        policy = PlacementPolicy(sites, replicas=replicas, shards=16)
        diffs = [diff_placements(policy, policy.with_site(extra))]
        if len(policy.sites) > 1:
            diffs.append(
                diff_placements(policy, policy.without_site(policy.sites[0]))
            )
        for moves in diffs:
            for added, removed in moves.values():
                assert len(added) <= 1
                assert len(removed) <= 1

    def test_diff_rejects_mismatched_shard_counts(self):
        with pytest.raises(ValueError):
            diff_placements(
                PlacementPolicy(["a"], shards=8), PlacementPolicy(["a"], shards=16)
            )


class TestValidation:
    def test_rejects_empty_membership(self):
        with pytest.raises(ValueError):
            PlacementPolicy([])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            PlacementPolicy(["dc1", "dc1"])

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            PlacementPolicy(["dc1"], replicas=0)
        with pytest.raises(ValueError):
            PlacementPolicy(["dc1"], shards=0)
        with pytest.raises(ValueError):
            PlacementPolicy(["dc1"], vnodes=0)

    def test_rejects_adding_existing_site(self):
        with pytest.raises(ValueError):
            PlacementPolicy(["dc1", "dc2"]).with_site("dc1")

    def test_rejects_removing_unknown_site(self):
        with pytest.raises(ValueError):
            PlacementPolicy(["dc1", "dc2"]).without_site("dc3")
