"""Tests for rollup aggregation (current state as a fold over the log)."""

from __future__ import annotations

from typing import Optional

from repro.lsdb.events import EventKind, LogEvent
from repro.lsdb.rollup import EntityState, GenericReducer, Rollup
from repro.merge.deltas import Delta


def event(kind, payload=None, key="k", lsn=0, ts=0.0, origin="local", tags=()):
    return LogEvent(
        lsn=lsn, timestamp=ts, entity_type="t", entity_key=key,
        kind=kind, payload=payload or {}, origin=origin,
        tags=frozenset(tags),
    )


class TestGenericReducer:
    def test_insert_creates_and_overlays(self):
        rollup = Rollup()
        states = rollup.fold([
            event(EventKind.INSERT, {"a": 1, "b": 2}),
            event(EventKind.INSERT, {"b": 3}),
        ])
        state = states[("t", "k")]
        assert state.fields == {"a": 1, "b": 3}
        assert state.version_count == 2

    def test_delta_adjusts_fields(self):
        rollup = Rollup()
        states = rollup.fold([
            event(EventKind.INSERT, {"qty": 10}),
            event(EventKind.DELTA, Delta.add("qty", -4).to_payload()),
        ])
        assert states[("t", "k")].fields["qty"] == 6

    def test_set_fields_lww_by_timestamp(self):
        rollup = Rollup()
        late_then_early = rollup.fold([
            event(EventKind.SET_FIELDS, {"v": "late"}, ts=5.0, origin="r2"),
            event(EventKind.SET_FIELDS, {"v": "early"}, ts=1.0, origin="r1"),
        ])
        assert late_then_early[("t", "k")].fields["v"] == "late"

    def test_tombstone_marks_but_keeps_fields(self):
        rollup = Rollup()
        states = rollup.fold([
            event(EventKind.INSERT, {"name": "x"}),
            event(EventKind.TOMBSTONE),
        ])
        state = states[("t", "k")]
        assert state.deleted
        assert not state.live
        assert state.fields["name"] == "x"  # deletion is a mark (2.7)

    def test_obsolete_mark(self):
        rollup = Rollup()
        states = rollup.fold([
            event(EventKind.INSERT, {"status": "tentative"}),
            event(EventKind.OBSOLETE),
        ])
        assert states[("t", "k")].obsolete
        assert not states[("t", "k")].live

    def test_summary_replaces_fields_and_restores_marks(self):
        rollup = Rollup()
        states = rollup.fold([
            event(EventKind.SUMMARY, {"qty": 42}, tags=("deleted",)),
        ])
        state = states[("t", "k")]
        assert state.fields == {"qty": 42}
        assert state.deleted

    def test_event_count_and_last_lsn_tracked(self):
        rollup = Rollup()
        states = rollup.fold([
            event(EventKind.INSERT, {"a": 1}, lsn=1, ts=1.0),
            event(EventKind.DELTA, Delta.add("a", 1).to_payload(), lsn=2, ts=2.0),
        ])
        state = states[("t", "k")]
        assert state.event_count == 2
        assert state.last_lsn == 2
        assert state.last_timestamp == 2.0


class TestRollup:
    def test_fold_does_not_mutate_initial(self):
        rollup = Rollup()
        initial = rollup.fold([event(EventKind.INSERT, {"a": 1})])
        rollup.fold([event(EventKind.DELTA, Delta.add("a", 5).to_payload())], initial)
        assert initial[("t", "k")].fields["a"] == 1

    def test_fold_into_mutates_in_place(self):
        rollup = Rollup()
        states = {}
        rollup.fold_into(states, event(EventKind.INSERT, {"a": 1}))
        assert states[("t", "k")].fields["a"] == 1

    def test_custom_reducer_per_type(self):
        class CountingReducer(GenericReducer):
            def apply(self, state: Optional[EntityState], evt: LogEvent) -> EntityState:
                result = super().apply(state, evt)
                result.fields["touches"] = result.fields.get("touches", 0) + 1
                return result

        rollup = Rollup()
        rollup.register("t", CountingReducer())
        states = rollup.fold([
            event(EventKind.INSERT, {"a": 1}),
            event(EventKind.INSERT, {"a": 2}),
        ])
        assert states[("t", "k")].fields["touches"] == 2

    def test_separate_entities_fold_independently(self):
        rollup = Rollup()
        states = rollup.fold([
            event(EventKind.INSERT, {"v": 1}, key="a"),
            event(EventKind.INSERT, {"v": 2}, key="b"),
        ])
        assert states[("t", "a")].fields["v"] == 1
        assert states[("t", "b")].fields["v"] == 2

    def test_entity_state_copy_isolated(self):
        state = EntityState("t", "k", fields={"a": 1})
        clone = state.copy()
        clone.fields["a"] = 99
        assert state.fields["a"] == 1
