"""Tests for reliable queues, idempotent receivers and outboxes."""

from __future__ import annotations

import pytest

from repro.queues.idempotence import IdempotentReceiver
from repro.queues.message import Message, next_message_id
from repro.core.policy import RetryPolicy
from repro.queues.reliable import ReliableQueue
from repro.queues.transactional import TransactionalOutbox
from repro.sim.scheduler import Simulator


class TestReliableQueue:
    def test_basic_delivery(self, sim):
        queue = ReliableQueue(sim)
        seen = []
        queue.subscribe("greet", lambda m: seen.append(m.payload) or True)
        queue.enqueue("greet", {"text": "hi"})
        sim.run()
        assert seen == [{"text": "hi"}]
        assert queue.stats.acked == 1

    def test_delivery_delay(self, sim):
        queue = ReliableQueue(sim, delivery_delay=5.0)
        times = []
        queue.subscribe("t", lambda m: times.append(sim.now) or True)
        queue.enqueue("t", {})
        sim.run()
        assert times == [5.0]

    def test_nack_triggers_redelivery(self, sim):
        queue = ReliableQueue(sim, retry=RetryPolicy(base_delay=2.0))
        attempts = []

        def handler(message):
            attempts.append(sim.now)
            return len(attempts) >= 3  # succeed on third attempt

        queue.subscribe("t", handler)
        queue.enqueue("t", {})
        sim.run()
        assert attempts == [0.0, 2.0, 4.0]
        assert queue.stats.redelivered == 2
        assert queue.stats.acked == 1

    def test_exception_counts_as_failure(self, sim):
        queue = ReliableQueue(sim, retry=RetryPolicy(max_attempts=2, base_delay=1.0))

        def explode(_message):
            raise RuntimeError("boom")

        queue.subscribe("t", explode)
        queue.enqueue("t", {})
        sim.run()
        assert queue.stats.handler_failures == 2
        assert queue.stats.dead_lettered == 1

    def test_dead_letter_after_max_attempts(self, sim):
        queue = ReliableQueue(sim, retry=RetryPolicy(max_attempts=3, base_delay=1.0))
        queue.subscribe("t", lambda m: False)
        message = queue.enqueue("t", {"v": 1})
        sim.run()
        assert queue.dead_letters == [message]
        assert message.attempts == 3

    def test_no_subscriber_means_retry_then_dead_letter(self, sim):
        queue = ReliableQueue(sim, retry=RetryPolicy(max_attempts=2, base_delay=1.0))
        queue.enqueue("nobody-listens", {})
        sim.run()
        assert queue.stats.dead_lettered == 1

    def test_ack_loss_causes_duplicate_delivery(self):
        sim = Simulator(seed=3)
        queue = ReliableQueue(
            sim, ack_loss_probability=0.5, retry=RetryPolicy(max_attempts=30, base_delay=1.0)
        )
        deliveries = []
        queue.subscribe("t", lambda m: deliveries.append(m.message_id) or True)
        for _ in range(30):
            queue.enqueue("t", {})
        sim.run()
        assert len(deliveries) > 30  # at-least-once produced duplicates
        assert queue.stats.acked == 30  # but everything eventually acked

    def test_all_handlers_must_ack(self, sim):
        queue = ReliableQueue(sim, retry=RetryPolicy(max_attempts=2, base_delay=1.0))
        first_calls, second_calls = [], []
        queue.subscribe("t", lambda m: first_calls.append(1) or True)
        queue.subscribe("t", lambda m: second_calls.append(1) or False)
        queue.enqueue("t", {})
        sim.run()
        assert queue.stats.dead_lettered == 1
        assert len(first_calls) == 2  # re-runs on every attempt

    def test_pending_ack_accounting(self, sim):
        queue = ReliableQueue(sim)
        queue.subscribe("t", lambda m: True)
        queue.enqueue("t", {})
        assert queue.pending_ack == 1
        sim.run()
        assert queue.pending_ack == 0


class TestIdempotentReceiver:
    def test_duplicate_message_processed_once(self):
        calls = []
        receiver = IdempotentReceiver(lambda m: calls.append(m.message_id) or True)
        message = Message("m-1", "t")
        assert receiver(message) and receiver(message)
        assert calls == ["m-1"]
        assert receiver.duplicates_skipped == 1

    def test_failed_attempt_not_remembered(self):
        outcomes = iter([False, True])
        receiver = IdempotentReceiver(lambda m: next(outcomes))
        message = Message("m-1", "t")
        assert not receiver(message)
        assert receiver(message)  # retried for real
        assert receiver.processed == 1

    def test_capacity_bound_evicts_oldest(self):
        receiver = IdempotentReceiver(lambda m: True, capacity=2)
        for index in range(3):
            receiver(Message(f"m-{index}", "t"))
        assert not receiver.has_processed("m-0")
        assert receiver.has_processed("m-2")

    def test_end_to_end_with_lossy_acks(self):
        sim = Simulator(seed=5)
        queue = ReliableQueue(
            sim, ack_loss_probability=0.4, retry=RetryPolicy(base_delay=1.0)
        )
        effects = []
        receiver = IdempotentReceiver(lambda m: effects.append(m.payload["n"]) or True)
        queue.subscribe("t", receiver)
        for n in range(25):
            queue.enqueue("t", {"n": n})
        sim.run()
        # Exactly-once effect despite at-least-once delivery:
        assert sorted(effects) == list(range(25))


class TestTransactionalOutbox:
    def test_nothing_published_before_commit(self, sim):
        queue = ReliableQueue(sim)
        outbox = TransactionalOutbox(queue, tx_id="tx-1")
        outbox.enqueue("t", {"v": 1})
        assert queue.stats.enqueued == 0
        assert outbox.pending_count == 1

    def test_publish_on_commit(self, sim):
        queue = ReliableQueue(sim)
        seen = []
        queue.subscribe("t", lambda m: seen.append(m.causation_id) or True)
        outbox = TransactionalOutbox(queue, tx_id="tx-1")
        outbox.enqueue("t", {"v": 1})
        assert outbox.publish_on_commit() == 1
        sim.run()
        assert seen == ["tx-1"]

    def test_abort_discards_commit_messages(self, sim):
        queue = ReliableQueue(sim)
        outbox = TransactionalOutbox(queue, tx_id="tx-1")
        outbox.enqueue("t", {"v": 1})
        assert outbox.discard_on_abort() == 0
        sim.run()
        assert queue.stats.enqueued == 0

    def test_abort_publishes_compensations(self, sim):
        queue = ReliableQueue(sim)
        seen = []
        queue.subscribe("compensate", lambda m: seen.append(m.payload) or True)
        outbox = TransactionalOutbox(queue, tx_id="tx-1")
        outbox.enqueue("t", {"v": 1})
        outbox.enqueue_on_abort("compensate", {"undo": True})
        outbox.discard_on_abort()
        sim.run()
        assert seen == [{"undo": True}]

    def test_commit_drops_abort_compensations(self, sim):
        queue = ReliableQueue(sim)
        outbox = TransactionalOutbox(queue, tx_id="tx-1")
        outbox.enqueue_on_abort("compensate", {})
        outbox.publish_on_commit()
        sim.run()
        assert queue.stats.enqueued == 0

    def test_outbox_single_use(self, sim):
        queue = ReliableQueue(sim)
        outbox = TransactionalOutbox(queue)
        outbox.publish_on_commit()
        with pytest.raises(RuntimeError):
            outbox.enqueue("t", {})
        with pytest.raises(RuntimeError):
            outbox.publish_on_commit()

    def test_message_ids_unique(self):
        assert next_message_id() != next_message_id()
