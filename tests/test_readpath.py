"""The typed ReadRequest/ReadResult protocol (repro.core.readpath)."""

from __future__ import annotations

import warnings

import pytest

from repro.core.consistency import ConsistencyLevel
from repro.core.readpath import (
    ConsistencyUnavailable,
    ReadRequest,
    ReadResult,
    deliver,
    is_weaker,
    read_from,
    replica_level,
)
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta
from repro.obs.metrics import MetricsRegistry
from repro.replication.batching import BatchPolicy
from repro.replication.master_slave import MasterSlaveGroup
from repro.sim.network import Network
from repro.sim.scheduler import Simulator


def make_group(sim, **kwargs):
    net = Network(sim, latency=2.0)
    kwargs.setdefault("batching", BatchPolicy())
    return MasterSlaveGroup(sim, net, "m", ["s1"], **kwargs)


class TestReadRequest:
    def test_defaults_are_strong_and_degradable(self):
        request = ReadRequest()
        assert request.level is ConsistencyLevel.STRONG
        assert request.max_staleness is None
        assert request.allow_degraded

    def test_classmethod_shorthands(self):
        assert ReadRequest.strong().level is ConsistencyLevel.STRONG
        bounded = ReadRequest.bounded(5.0)
        assert bounded.level is ConsistencyLevel.BOUNDED_STALENESS
        assert bounded.max_staleness == 5.0
        assert ReadRequest.eventual().level is ConsistencyLevel.EVENTUAL

    def test_requests_are_frozen(self):
        with pytest.raises(AttributeError):
            ReadRequest().level = ConsistencyLevel.EVENTUAL


class TestLevelOrdering:
    def test_strength_order(self):
        assert is_weaker(
            ConsistencyLevel.EVENTUAL, than=ConsistencyLevel.STRONG
        )
        assert is_weaker(
            ConsistencyLevel.EXTRACT, than=ConsistencyLevel.BOUNDED_STALENESS
        )
        assert not is_weaker(
            ConsistencyLevel.STRONG, than=ConsistencyLevel.EVENTUAL
        )

    def test_replica_level_floors_at_bounded(self):
        assert (
            replica_level(ConsistencyLevel.STRONG)
            is ConsistencyLevel.BOUNDED_STALENESS
        )
        assert (
            replica_level(ConsistencyLevel.EVENTUAL)
            is ConsistencyLevel.EVENTUAL
        )


class TestReadResultTransparency:
    def _state(self):
        store = LSDBStore()
        store.insert("order", "o-1", {"total": 7})
        return store.get("order", "o-1")

    def test_attribute_forwarding(self):
        result = ReadResult(
            self._state(),
            requested_level=ConsistencyLevel.STRONG,
            delivered_level=ConsistencyLevel.STRONG,
            staleness=0.0,
        )
        assert result.fields["total"] == 7  # forwarded to the EntityState

    def test_unwrap_and_truthiness(self):
        state = self._state()
        hit = ReadResult(
            state,
            requested_level=ConsistencyLevel.STRONG,
            delivered_level=ConsistencyLevel.STRONG,
        )
        miss = ReadResult(
            None,
            requested_level=ConsistencyLevel.STRONG,
            delivered_level=ConsistencyLevel.STRONG,
        )
        assert hit.unwrap() is state
        assert bool(hit) and not bool(miss)
        assert hit.ok and miss.ok  # ok = served, truthiness = found

    def test_equality_compares_unwrapped(self):
        state = self._state()
        result = ReadResult(
            state,
            requested_level=ConsistencyLevel.STRONG,
            delivered_level=ConsistencyLevel.STRONG,
        )
        assert result == state
        empty = ReadResult(
            None,
            requested_level=ConsistencyLevel.STRONG,
            delivered_level=ConsistencyLevel.STRONG,
        )
        assert empty == None  # noqa: E711 - the point of the test

    def test_missing_value_attribute_error(self):
        empty = ReadResult(
            None,
            requested_level=ConsistencyLevel.STRONG,
            delivered_level=ConsistencyLevel.STRONG,
        )
        with pytest.raises(AttributeError):
            empty.fields


class TestDeliver:
    def test_degraded_stamp(self):
        result = deliver(
            None,
            ReadRequest.strong(),
            ConsistencyLevel.EVENTUAL,
            staleness=3.0,
            served_by="backup",
        )
        assert result.degraded
        assert result.delivered_level is ConsistencyLevel.EVENTUAL
        assert result.staleness == 3.0

    def test_allow_degraded_false_raises(self):
        request = ReadRequest(
            level=ConsistencyLevel.STRONG, allow_degraded=False
        )
        with pytest.raises(ConsistencyUnavailable):
            deliver(
                None, request, ConsistencyLevel.EVENTUAL, staleness=1.0
            )

    def test_bound_violation_counts(self):
        metrics = MetricsRegistry()
        request = ReadRequest.bounded(2.0)
        result = deliver(
            None,
            request,
            ConsistencyLevel.BOUNDED_STALENESS,
            staleness=9.0,
            metrics=metrics,
        )
        assert result.bound_violated
        assert (
            metrics.value(
                "read.staleness_violations", level="bounded_staleness"
            )
            == 1
        )


class TestTypedSchemeReads:
    def test_strong_reads_master(self):
        sim = Simulator(seed=1)
        group = make_group(sim, ship_interval=10.0)
        group.write_insert("order", "o-1", {"total": 4})
        result = group.read("order", "o-1", request=ReadRequest.strong())
        assert result.delivered_level is ConsistencyLevel.STRONG
        assert result.staleness == 0.0
        assert result.fields["total"] == 4

    def test_weaker_reads_slave_with_measured_staleness(self):
        sim = Simulator(seed=1)
        group = make_group(sim, ship_interval=10.0)
        group.write_insert("order", "o-1", {"total": 4})
        sim.run(until=5.0)  # written at t=0, not yet shipped
        result = group.read("order", "o-1", request=ReadRequest.eventual())
        assert result.delivered_level is ConsistencyLevel.EVENTUAL
        assert not result  # slave has no copy yet
        assert result.staleness == 5.0  # age of the oldest unshipped event
        sim.run(until=30.0)
        result = group.read("order", "o-1", request=ReadRequest.eventual())
        assert result.ok and result.staleness == 0.0

    def test_satellite_bound_enforced_on_eventual_path(self):
        sim = Simulator(seed=1, metrics=MetricsRegistry())
        group = make_group(sim, ship_interval=50.0)
        group.write_insert("order", "o-1", {"total": 4})
        sim.run(until=20.0)
        result = group.read(
            "order", "o-1", request=ReadRequest.bounded(5.0)
        )
        assert result.bound_violated  # 20 time units behind, bound was 5
        assert (
            sim.metrics.value(
                "read.staleness_violations", level="bounded_staleness"
            )
            >= 1
        )

    def test_loose_consistency_kwarg_removed(self):
        sim = Simulator(seed=1)
        group = make_group(sim)
        group.write_insert("order", "o-1", {"total": 4})
        # One deprecation cycle later, the loose keyword is gone: it
        # fails like any unknown keyword.
        with pytest.raises(TypeError):
            group.read("order", "o-1", consistency=ConsistencyLevel.STRONG)


class TestReadFrom:
    def test_request_none_returns_raw(self):
        store = LSDBStore()
        store.insert("order", "o-1", {"total": 1})
        state = read_from(store, "order", "o-1")
        assert not isinstance(state, ReadResult)
        assert state.fields["total"] == 1

    def test_typed_request_returns_result(self):
        store = LSDBStore()
        store.insert("order", "o-1", {"total": 1})
        result = read_from(
            store, "order", "o-1", request=ReadRequest.strong()
        )
        assert isinstance(result, ReadResult)
        assert result.delivered_level is ConsistencyLevel.STRONG

    def test_deprecated_consistency_kwarg_removed(self):
        store = LSDBStore()
        store.insert("order", "o-1", {"total": 1})
        with pytest.raises(TypeError):
            read_from(
                store, "order", "o-1",
                consistency=ConsistencyLevel.EVENTUAL,
            )

    def test_pre_typed_surface_falls_back(self):
        class OldSurface:
            def __init__(self):
                self.store = LSDBStore()
                self.store.insert("order", "o-1", {"total": 2})

            def read(self, entity_type, entity_key):
                return self.store.get(entity_type, entity_key)

        result = read_from(
            OldSurface(), "order", "o-1", request=ReadRequest.strong()
        )
        assert isinstance(result, ReadResult)
        assert result.fields["total"] == 2
        assert result.staleness is None  # surface could not measure it


class TestQuorumTypedReads:
    def test_strong_read_resolves_in_place(self):
        from repro.replication.quorum import QuorumGroup

        sim = Simulator(seed=2)
        net = Network(sim, latency=2.0)
        group = QuorumGroup(sim, net, ["q1", "q2", "q3"])
        group.write("stock", "w", {"n": 5})
        sim.run()
        result = group.read("stock", "w", request=ReadRequest.strong())
        assert result.delivered_level is None  # still in flight
        sim.run()
        assert result.delivered_level is ConsistencyLevel.STRONG
        assert result.value["n"] == 5

    def test_weak_read_is_immediate_and_local(self):
        from repro.replication.quorum import QuorumGroup

        sim = Simulator(seed=2)
        net = Network(sim, latency=2.0)
        group = QuorumGroup(sim, net, ["q1", "q2", "q3"])
        group.write("stock", "w", {"n": 5})
        sim.run()
        result = group.read("stock", "w", request=ReadRequest.eventual())
        assert result.delivered_level is ConsistencyLevel.EVENTUAL
        assert result.ok
