"""Tests for scripted failure injection."""

from __future__ import annotations

from repro.sim.failure import FailureInjector
from repro.sim.network import Network, Node
from repro.sim.scheduler import Simulator


def make_world():
    sim = Simulator()
    net = Network(sim, latency=1.0)
    a = net.register(Node("a"))
    b = net.register(Node("b"))
    return sim, net, a, b


class TestCrashWindows:
    def test_node_is_down_inside_window_only(self):
        sim, net, a, _ = make_world()
        injector = FailureInjector(sim, net)
        injector.crash_window(a, start=10.0, duration=5.0)
        sim.run(until=9.0)
        assert not a.crashed
        sim.run(until=12.0)
        assert a.crashed
        sim.run(until=16.0)
        assert not a.crashed

    def test_records_capture_the_timeline(self):
        sim, net, a, _ = make_world()
        injector = FailureInjector(sim, net)
        injector.crash_window(a, start=2.0, duration=3.0)
        sim.run()
        kinds = [(record.time, record.kind) for record in injector.records]
        assert kinds == [(2.0, "crash"), (5.0, "recover")]

    def test_multiple_windows_for_different_nodes(self):
        sim, net, a, b = make_world()
        injector = FailureInjector(sim, net)
        injector.crash_window(a, start=1.0, duration=2.0)
        injector.crash_window(b, start=2.0, duration=2.0)
        sim.run(until=2.5)
        assert a.crashed and b.crashed
        sim.run()
        assert not a.crashed and not b.crashed


class TestPartitionWindows:
    def test_partition_active_only_inside_window(self):
        sim, net, _, _ = make_world()
        injector = FailureInjector(sim, net)
        injector.partition_window([["a"], ["b"]], start=5.0, duration=10.0)
        sim.run(until=4.0)
        assert not net.is_partitioned("a", "b")
        sim.run(until=7.0)
        assert net.is_partitioned("a", "b")
        sim.run(until=20.0)
        assert not net.is_partitioned("a", "b")

    def test_partition_record_names_groups(self):
        sim, net, _, _ = make_world()
        injector = FailureInjector(sim, net)
        injector.partition_window([["a"], ["b"]], start=1.0, duration=1.0)
        sim.run()
        partition_records = [r for r in injector.records if r.kind == "partition"]
        assert partition_records[0].detail == "a | b"
        assert any(record.kind == "heal" for record in injector.records)


def make_quad():
    sim = Simulator()
    net = Network(sim, latency=1.0)
    for node_id in ("a", "b", "c", "d"):
        net.register(Node(node_id))
    return sim, net


class TestOverlappingPartitionWindows:
    """Regression: an inner window's heal used to erase the outer
    partition entirely; heal must restore the prior topology."""

    def test_inner_window_heal_restores_outer_partition(self):
        sim, net = make_quad()
        injector = FailureInjector(sim, net)
        # Outer window: {a,b} | {c,d} over [10, 110).
        injector.partition_window([["a", "b"], ["c", "d"]], start=10.0, duration=100.0)
        # Inner window: {a} | {b,c,d} over [30, 60) — overlaps the outer.
        injector.partition_window([["a"], ["b", "c", "d"]], start=30.0, duration=30.0)

        sim.run(until=20.0)
        assert net.is_partitioned("a", "c")
        assert not net.is_partitioned("a", "b")

        sim.run(until=40.0)  # inner window in force: a is fully isolated
        assert net.is_partitioned("a", "b")
        assert net.is_partitioned("a", "c")

        sim.run(until=70.0)  # inner healed: the OUTER topology is back
        assert not net.is_partitioned("a", "b")
        assert net.is_partitioned("a", "c")

        sim.run(until=120.0)  # outer healed: fully connected again
        assert net.partition is None

    def test_staggered_windows_keep_newest_topology(self):
        sim, net = make_quad()
        injector = FailureInjector(sim, net)
        # First window ends while the second is still open.
        injector.partition_window([["a"], ["b", "c", "d"]], start=0.0, duration=50.0)
        injector.partition_window([["a", "b"], ["c", "d"]], start=20.0, duration=60.0)

        sim.run(until=60.0)  # first healed at 50; second still in force
        assert net.is_partitioned("a", "c")
        assert not net.is_partitioned("a", "b")

        sim.run(until=90.0)
        assert net.partition is None

    def test_heal_restoration_is_recorded(self):
        sim, net = make_quad()
        injector = FailureInjector(sim, net)
        injector.partition_window([["a", "b"], ["c", "d"]], start=0.0, duration=40.0)
        injector.partition_window([["a"], ["b", "c", "d"]], start=10.0, duration=10.0)
        sim.run()
        heal_details = [r.detail for r in injector.records if r.kind == "heal"]
        assert heal_details == ["restored: a,b | c,d", ""]

    def test_heal_all_drops_every_window(self):
        sim, net = make_quad()
        injector = FailureInjector(sim, net)
        injector.partition_window([["a", "b"], ["c", "d"]], start=0.0, duration=100.0)
        injector.partition_window([["a"], ["b", "c", "d"]], start=5.0, duration=100.0)
        sim.run(until=10.0)
        assert net.partition is not None
        injector.heal_all()
        assert net.partition is None
        # The windows' own scheduled heals later become harmless no-ops.
        sim.run()
        assert net.partition is None
