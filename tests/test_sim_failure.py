"""Tests for scripted failure injection."""

from __future__ import annotations

from repro.sim.failure import FailureInjector
from repro.sim.network import Network, Node
from repro.sim.scheduler import Simulator


def make_world():
    sim = Simulator()
    net = Network(sim, latency=1.0)
    a = net.register(Node("a"))
    b = net.register(Node("b"))
    return sim, net, a, b


class TestCrashWindows:
    def test_node_is_down_inside_window_only(self):
        sim, net, a, _ = make_world()
        injector = FailureInjector(sim, net)
        injector.crash_window(a, start=10.0, duration=5.0)
        sim.run(until=9.0)
        assert not a.crashed
        sim.run(until=12.0)
        assert a.crashed
        sim.run(until=16.0)
        assert not a.crashed

    def test_records_capture_the_timeline(self):
        sim, net, a, _ = make_world()
        injector = FailureInjector(sim, net)
        injector.crash_window(a, start=2.0, duration=3.0)
        sim.run()
        kinds = [(record.time, record.kind) for record in injector.records]
        assert kinds == [(2.0, "crash"), (5.0, "recover")]

    def test_multiple_windows_for_different_nodes(self):
        sim, net, a, b = make_world()
        injector = FailureInjector(sim, net)
        injector.crash_window(a, start=1.0, duration=2.0)
        injector.crash_window(b, start=2.0, duration=2.0)
        sim.run(until=2.5)
        assert a.crashed and b.crashed
        sim.run()
        assert not a.crashed and not b.crashed


class TestPartitionWindows:
    def test_partition_active_only_inside_window(self):
        sim, net, _, _ = make_world()
        injector = FailureInjector(sim, net)
        injector.partition_window([["a"], ["b"]], start=5.0, duration=10.0)
        sim.run(until=4.0)
        assert not net.is_partitioned("a", "b")
        sim.run(until=7.0)
        assert net.is_partitioned("a", "b")
        sim.run(until=20.0)
        assert not net.is_partitioned("a", "b")

    def test_partition_record_names_groups(self):
        sim, net, _, _ = make_world()
        injector = FailureInjector(sim, net)
        injector.partition_window([["a"], ["b"]], start=1.0, duration=1.0)
        sim.run()
        partition_records = [r for r in injector.records if r.kind == "partition"]
        assert partition_records[0].detail == "a | b"
        assert any(record.kind == "heal" for record in injector.records)
