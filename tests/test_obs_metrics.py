"""Metrics registry, report determinism, and the shared percentile math."""

from __future__ import annotations

import pytest

from repro import Cluster
from repro.bench.metrics import LatencyRecorder
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile_of,
)


class TestPercentileOf:
    def test_empty_is_zero(self):
        assert percentile_of([], 50) == 0.0

    def test_nearest_rank(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile_of(samples, 50) == 2.0
        assert percentile_of(samples, 100) == 4.0
        assert percentile_of(samples, 0) == 1.0

    def test_range_checked(self):
        with pytest.raises(ValueError):
            percentile_of([1.0], 101)


class TestInstruments:
    def test_counter_monotonic(self):
        counter = Counter("c", {})
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g", {})
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value == 3

    def test_histogram_percentiles(self):
        histogram = Histogram("h", {})
        for value in [10.0, 20.0, 30.0, 40.0]:
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.mean == 25.0
        assert histogram.percentile(50) == 20.0
        snapshot = histogram.snapshot()
        assert snapshot["p50"] == 20.0
        assert snapshot["max"] == 40.0


class TestRegistry:
    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        a = registry.counter("net.sent", node="r1")
        b = registry.counter("net.sent", node="r1")
        c = registry.counter("net.sent", node="r2")
        assert a is b
        assert a is not c

    def test_value_and_sum(self):
        registry = MetricsRegistry()
        registry.counter("store.appends", origin="a").inc(2)
        registry.counter("store.appends", origin="b").inc(3)
        assert registry.value("store.appends", origin="a") == 2
        assert registry.value("store.appends", origin="missing") == 0
        assert registry.sum_values("store.appends") == 5

    def test_report_lookup_and_render(self):
        registry = MetricsRegistry()
        registry.counter("net.sent").inc(7)
        report = registry.report()
        assert report.get("net.sent")["value"] == 7
        assert "net.sent" in report.render()


def _seeded_run_report_json(seed: int) -> str:
    cluster = (
        Cluster.build(seed=seed)
        .with_network(latency=3.0)
        .with_replicas(2, mode="async", ship_interval=10.0)
        .with_tracing()
        .create()
    )
    for index in range(5):
        cluster.replication.write_insert("order", f"o-{index}", {"total": index})
    cluster.sim.run(until=60.0)
    return cluster.metrics_report().to_json()


class TestDeterminism:
    def test_same_seed_byte_identical_reports(self):
        assert _seeded_run_report_json(42) == _seeded_run_report_json(42)

    def test_report_reflects_traffic(self):
        payload = _seeded_run_report_json(42)
        assert '"net.sent"' in payload
        assert '"store.appends"' in payload


class TestLatencyRecorder:
    def test_p95_exposed(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):
            recorder.record(float(value))
        assert recorder.p50 == 50.0
        assert recorder.p95 == 95.0
        assert recorder.p99 == 99.0
        assert set(recorder.summary()) == {
            "count", "mean", "p50", "p95", "p99", "max"
        }

    def test_matches_shared_percentile_math(self):
        samples = [5.0, 1.0, 4.0, 2.0, 3.0]
        recorder = LatencyRecorder()
        for value in samples:
            recorder.record(value)
        for pct in (0, 25, 50, 75, 95, 99, 100):
            assert recorder.percentile(pct) == percentile_of(sorted(samples), pct)

    def test_merge_in_place(self):
        left, right = LatencyRecorder(), LatencyRecorder()
        left.record(1.0)
        right.record(3.0)
        left.merge(right)
        assert left.count == 2
        assert left.maximum == 3.0

    def test_merged_classmethod(self):
        recorders = []
        for base in (0, 10, 20):
            recorder = LatencyRecorder(name=f"node-{base}")
            for offset in range(1, 4):
                recorder.record(float(base + offset))
            recorders.append(recorder)
        combined = LatencyRecorder.merged(recorders)
        assert combined.count == 9
        assert combined.maximum == 23.0
        assert combined.percentile(100) == 23.0
        # Merging is sample-level, so percentiles equal those of the
        # flat sample list (merging summaries could not promise that).
        flat = sorted(
            value for r in recorders for value in r._samples
        )
        assert combined.p50 == percentile_of(flat, 50)
