"""Tests for online entity relocation between serialization units."""

from __future__ import annotations

import pytest

from repro.locks.logical import LockMode
from repro.partition.relocation import EntityMover
from repro.partition.router import DynamicDirectory, HashRouter
from repro.partition.units import SerializationUnit


def make_world():
    units = {name: SerializationUnit(name) for name in ("u1", "u2", "u3")}
    directory = DynamicDirectory(HashRouter(["u1", "u2", "u3"]))
    return units, directory, EntityMover(units, directory)


def seed_entity(units, directory, key="hot", fields=None):
    source = directory.unit_for("order", key)
    units[source].store.insert("order", key, fields or {"total": 5})
    return source


class TestMove:
    def test_state_carried_to_target(self):
        units, directory, mover = make_world()
        source = seed_entity(units, directory, fields={"total": 5, "customer": "ada"})
        target = "u2" if source != "u2" else "u3"
        report = mover.move("order", "hot", target)
        assert report.moved
        assert report.fields_carried == 2
        assert units[target].store.get("order", "hot").fields == {
            "total": 5, "customer": "ada",
        }

    def test_directory_updated(self):
        units, directory, mover = make_world()
        source = seed_entity(units, directory)
        target = "u2" if source != "u2" else "u3"
        mover.move("order", "hot", target)
        assert mover.location_of("order", "hot") == target

    def test_source_keeps_tombstoned_audit_copy(self):
        units, directory, mover = make_world()
        source = seed_entity(units, directory)
        target = "u2" if source != "u2" else "u3"
        mover.move("order", "hot", target)
        residue = units[source].store.get("order", "hot")
        assert residue.deleted  # a mark, not an erasure (2.7)
        assert residue.fields["total"] == 5
        tombstones = [
            event for event in units[source].store.log.for_entity("order", "hot")
            if "migrated-out" in event.tags
        ]
        assert tombstones

    def test_provenance_tags_on_target(self):
        units, directory, mover = make_world()
        source = seed_entity(units, directory)
        target = "u2" if source != "u2" else "u3"
        mover.move("order", "hot", target)
        inserted = units[target].store.log.for_entity("order", "hot")[0]
        assert "migrated-in" in inserted.tags
        assert f"from:{source}" in inserted.tags

    def test_move_to_current_location_is_noop(self):
        units, directory, mover = make_world()
        source = seed_entity(units, directory)
        report = mover.move("order", "hot", source)
        assert not report.moved
        assert report.reason == "already at target"
        assert mover.moves_completed == 0

    def test_missing_entity_fails_cleanly(self):
        units, directory, mover = make_world()
        report = mover.move("order", "ghost", "u2")
        assert not report.moved
        assert "not found" in report.reason
        assert mover.moves_failed == 1

    def test_unknown_target_raises(self):
        units, directory, mover = make_world()
        seed_entity(units, directory)
        with pytest.raises(KeyError):
            mover.move("order", "hot", "u99")

    def test_locked_entity_not_moved(self):
        units, directory, mover = make_world()
        source = seed_entity(units, directory)
        units[source].locks.acquire("order/hot", "busy-user", LockMode.EXCLUSIVE)
        target = "u2" if source != "u2" else "u3"
        report = mover.move("order", "hot", target)
        assert not report.moved
        assert "locked" in report.reason
        # Directory unchanged: the entity stays reachable at the source.
        assert mover.location_of("order", "hot") == source

    def test_lock_released_after_move(self):
        units, directory, mover = make_world()
        source = seed_entity(units, directory)
        target = "u2" if source != "u2" else "u3"
        mover.move("order", "hot", target)
        assert units[source].locks.acquire("order/hot", "someone", LockMode.EXCLUSIVE)


class TestRebalance:
    def test_batch_move(self):
        units, directory, mover = make_world()
        keys = []
        for index in range(6):
            key = f"k{index}"
            seed_entity(units, directory, key=key, fields={"n": index})
            keys.append(key)
        reports = mover.rebalance_hot_keys("order", keys, "u1")
        assert all(
            report.moved or report.reason == "already at target"
            for report in reports
        )
        assert all(mover.location_of("order", key) == "u1" for key in keys)

    def test_moved_entity_writable_at_target(self):
        units, directory, mover = make_world()
        source = seed_entity(units, directory)
        target = "u2" if source != "u2" else "u3"
        mover.move("order", "hot", target)
        from repro.merge.deltas import Delta

        units[target].store.apply_delta("order", "hot", Delta.add("total", 3))
        assert units[target].store.get("order", "hot").fields["total"] == 8


class TestOverrideCompaction:
    """Regression: bulk moves used to leave one directory override per
    moved entity forever, even once the base router agreed — directory
    memory grew with every rebalance and never shrank."""

    def test_move_back_to_base_placement_leaves_no_override(self):
        units, directory, mover = make_world()
        source = seed_entity(units, directory)
        target = "u2" if source != "u2" else "u3"
        mover.move("order", "hot", target)
        assert directory.override_count == 1
        mover.move("order", "hot", source)  # back where the base says
        assert directory.override_count == 0
        assert mover.location_of("order", "hot") == source

    def test_compact_drops_only_agreeing_overrides(self):
        directory = DynamicDirectory(HashRouter(["u1", "u2", "u3"]))
        base_of_a = directory.unit_for("order", "a")
        disagreeing = "u2" if base_of_a != "u2" else "u3"
        directory._overrides[("order", "a")] = base_of_a  # stale (pre-fix state)
        directory.move("order", "b", disagreeing if directory.unit_for("order", "b") != disagreeing else "u1")
        live = directory.override_count
        assert directory.compact_overrides() == 1
        assert directory.override_count == live - 1
        assert directory.placement_of("order", "a") is None
        assert directory.unit_for("order", "a") == base_of_a

    def test_bulk_rebalance_does_not_grow_the_directory(self):
        from repro.partition.rebalance import Rebalancer
        from repro.partition.ring import ConsistentHashRing, RebalancePlanner

        ring = ConsistentHashRing(["u1", "u2", "u3"], vnodes=32)
        units = {name: SerializationUnit(name) for name in ring.units}
        units["u4"] = SerializationUnit("u4")
        directory = DynamicDirectory(ring)
        mover = EntityMover(units, directory)
        for index in range(120):
            key = f"k{index}"
            units[directory.unit_for("order", key)].store.insert(
                "order", key, {"n": index}
            )
        grown = ring.with_unit("u4")
        plan = RebalancePlanner(directory, grown).plan_from_units(units)
        assert plan.keys_moved > 0
        run = Rebalancer(mover, sim=None).execute(plan, new_router=grown)
        assert run.done
        assert run.report.completed == plan.keys_moved
        # The fix: the flip compacts every override the new base absorbs.
        assert directory.base is grown
        assert directory.override_count == 0
        assert run.report.overrides_compacted == plan.keys_moved
        # Routing still resolves every entity to where its data is.
        for index in range(120):
            key = f"k{index}"
            owner = directory.unit_for("order", key)
            assert units[owner].store.get("order", key).fields["n"] == index

    def test_given_up_move_is_pinned_at_its_physical_unit(self):
        """Regression: pins used to be resolved *after* the base flip,
        so ``unit_for`` answered with the new base's target — where the
        data is not — and the 'pin' compacted away as agreeing with the
        base, stranding the entity."""
        from repro.core.policy import RetryPolicy
        from repro.locks.logical import LockMode
        from repro.partition.rebalance import Rebalancer
        from repro.partition.ring import ConsistentHashRing, RebalancePlanner

        ring = ConsistentHashRing(["u1", "u2", "u3"], vnodes=32)
        grown = ring.with_unit("u4")
        units = {name: SerializationUnit(name) for name in grown.units}
        directory = DynamicDirectory(ring)
        mover = EntityMover(units, directory)
        for index in range(80):
            key = f"k{index}"
            units[directory.unit_for("order", key)].store.insert(
                "order", key, {"n": index}
            )
        stuck_key = next(
            f"k{index}" for index in range(80)
            if grown.unit_for("order", f"k{index}")
            != ring.unit_for("order", f"k{index}")
        )
        source = ring.unit_for("order", stuck_key)
        units[source].locks.acquire(
            f"order/{stuck_key}", "busy-user", LockMode.EXCLUSIVE
        )
        plan = RebalancePlanner(directory, grown).plan_from_units(units)
        rebalancer = Rebalancer(
            mover, sim=None, retry=RetryPolicy.fixed(max_attempts=1, delay=0.0)
        )
        run = rebalancer.execute(plan, new_router=grown)
        assert run.done
        assert run.report.failed == 1
        # The stuck entity is pinned where its data physically is...
        assert directory.unit_for("order", stuck_key) == source
        assert units[source].store.get("order", stuck_key).fields is not None
        # ...as a real override the compaction must not drop.
        assert directory.placement_of("order", stuck_key) == source
        assert directory.override_count == 1

    def test_deadline_expiry_pins_everything_unresolved(self):
        from repro.core.policy import RetryPolicy, TimeoutPolicy
        from repro.partition.rebalance import Rebalancer
        from repro.partition.ring import ConsistentHashRing, RebalancePlanner
        from repro.sim.scheduler import Simulator

        ring = ConsistentHashRing(["u1", "u2"], vnodes=32)
        grown = ring.with_unit("u3")
        sim = Simulator(seed=5)
        units = {name: SerializationUnit(name, sim) for name in grown.units}
        directory = DynamicDirectory(ring)
        mover = EntityMover(units, directory)
        for index in range(40):
            key = f"k{index}"
            units[directory.unit_for("order", key)].store.insert(
                "order", key, {"n": index}
            )
        plan = RebalancePlanner(directory, grown).plan_from_units(units)
        assert plan.keys_moved > 1
        rebalancer = Rebalancer(
            mover,
            sim=sim,
            retry=RetryPolicy.fixed(max_attempts=100, delay=5.0),
            timeout=TimeoutPolicy(overall=12.0),
            gate=lambda source, target: False,  # nothing is ever reachable
        )
        run = rebalancer.execute(plan, new_router=grown)
        report = run.wait()
        assert run.done
        assert report.deadline_exceeded
        assert report.completed == 0
        assert report.failed == plan.keys_moved
        assert run.outstanding == 0
        # Every entity stays reachable at its pre-rebalance unit.
        for index in range(40):
            key = f"k{index}"
            owner = directory.unit_for("order", key)
            assert units[owner].store.get("order", key).fields["n"] == index

    def test_pinned_override_survives_rebase(self):
        """An override the new base disagrees with is a real placement
        decision and must not be compacted away."""
        from repro.partition.ring import ConsistentHashRing

        old = ConsistentHashRing(["u1", "u2"], vnodes=16)
        new = old.with_unit("u3")
        directory = DynamicDirectory(old)
        pinned_key = next(
            f"k{index}" for index in range(100)
            if new.unit_for("order", f"k{index}") != old.unit_for("order", f"k{index}")
        )
        stay_at = old.unit_for("order", pinned_key)
        directory.move("order", pinned_key, stay_at)  # no-op vs old base
        directory.rebase(new)
        directory.move("order", pinned_key, stay_at)  # now a real pin
        assert directory.placement_of("order", pinned_key) == stay_at
        assert directory.compact_overrides() == 0
        assert directory.unit_for("order", pinned_key) == stay_at
