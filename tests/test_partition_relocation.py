"""Tests for online entity relocation between serialization units."""

from __future__ import annotations

import pytest

from repro.locks.logical import LockMode
from repro.partition.relocation import EntityMover
from repro.partition.router import DynamicDirectory, HashRouter
from repro.partition.units import SerializationUnit


def make_world():
    units = {name: SerializationUnit(name) for name in ("u1", "u2", "u3")}
    directory = DynamicDirectory(HashRouter(["u1", "u2", "u3"]))
    return units, directory, EntityMover(units, directory)


def seed_entity(units, directory, key="hot", fields=None):
    source = directory.unit_for("order", key)
    units[source].store.insert("order", key, fields or {"total": 5})
    return source


class TestMove:
    def test_state_carried_to_target(self):
        units, directory, mover = make_world()
        source = seed_entity(units, directory, fields={"total": 5, "customer": "ada"})
        target = "u2" if source != "u2" else "u3"
        report = mover.move("order", "hot", target)
        assert report.moved
        assert report.fields_carried == 2
        assert units[target].store.get("order", "hot").fields == {
            "total": 5, "customer": "ada",
        }

    def test_directory_updated(self):
        units, directory, mover = make_world()
        source = seed_entity(units, directory)
        target = "u2" if source != "u2" else "u3"
        mover.move("order", "hot", target)
        assert mover.location_of("order", "hot") == target

    def test_source_keeps_tombstoned_audit_copy(self):
        units, directory, mover = make_world()
        source = seed_entity(units, directory)
        target = "u2" if source != "u2" else "u3"
        mover.move("order", "hot", target)
        residue = units[source].store.get("order", "hot")
        assert residue.deleted  # a mark, not an erasure (2.7)
        assert residue.fields["total"] == 5
        tombstones = [
            event for event in units[source].store.log.for_entity("order", "hot")
            if "migrated-out" in event.tags
        ]
        assert tombstones

    def test_provenance_tags_on_target(self):
        units, directory, mover = make_world()
        source = seed_entity(units, directory)
        target = "u2" if source != "u2" else "u3"
        mover.move("order", "hot", target)
        inserted = units[target].store.log.for_entity("order", "hot")[0]
        assert "migrated-in" in inserted.tags
        assert f"from:{source}" in inserted.tags

    def test_move_to_current_location_is_noop(self):
        units, directory, mover = make_world()
        source = seed_entity(units, directory)
        report = mover.move("order", "hot", source)
        assert not report.moved
        assert report.reason == "already at target"
        assert mover.moves_completed == 0

    def test_missing_entity_fails_cleanly(self):
        units, directory, mover = make_world()
        report = mover.move("order", "ghost", "u2")
        assert not report.moved
        assert "not found" in report.reason
        assert mover.moves_failed == 1

    def test_unknown_target_raises(self):
        units, directory, mover = make_world()
        seed_entity(units, directory)
        with pytest.raises(KeyError):
            mover.move("order", "hot", "u99")

    def test_locked_entity_not_moved(self):
        units, directory, mover = make_world()
        source = seed_entity(units, directory)
        units[source].locks.acquire("order/hot", "busy-user", LockMode.EXCLUSIVE)
        target = "u2" if source != "u2" else "u3"
        report = mover.move("order", "hot", target)
        assert not report.moved
        assert "locked" in report.reason
        # Directory unchanged: the entity stays reachable at the source.
        assert mover.location_of("order", "hot") == source

    def test_lock_released_after_move(self):
        units, directory, mover = make_world()
        source = seed_entity(units, directory)
        target = "u2" if source != "u2" else "u3"
        mover.move("order", "hot", target)
        assert units[source].locks.acquire("order/hot", "someone", LockMode.EXCLUSIVE)


class TestRebalance:
    def test_batch_move(self):
        units, directory, mover = make_world()
        keys = []
        for index in range(6):
            key = f"k{index}"
            seed_entity(units, directory, key=key, fields={"n": index})
            keys.append(key)
        reports = mover.rebalance_hot_keys("order", keys, "u1")
        assert all(
            report.moved or report.reason == "already at target"
            for report in reports
        )
        assert all(mover.location_of("order", key) == "u1" for key in keys)

    def test_moved_entity_writable_at_target(self):
        units, directory, mover = make_world()
        source = seed_entity(units, directory)
        target = "u2" if source != "u2" else "u3"
        mover.move("order", "hot", target)
        from repro.merge.deltas import Delta

        units[target].store.apply_delta("order", "hot", Delta.add("total", 3))
        assert units[target].store.get("order", "hot").fields["total"] == 8
