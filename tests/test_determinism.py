"""Determinism properties: equal seeds produce identical histories.

The entire experiment suite's reproducibility rests on this: a seeded
simulation is a pure function of its seed.  These properties run a
randomized distributed scenario twice per seed and require bit-equal
outcomes, and run *different* seeds to confirm the randomness is real.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.merge.deltas import Delta
from repro.core.policy import RetryPolicy
from repro.queues.idempotence import IdempotentReceiver
from repro.queues.reliable import ReliableQueue
from repro.replication import ActiveActiveGroup
from repro.sim.network import Network
from repro.sim.scheduler import Simulator


def run_replicated_scenario(seed: int) -> tuple:
    """A lossy active/active run; returns its observable outcome."""
    sim = Simulator(seed=seed)
    net = Network(sim, latency=lambda rng: rng.uniform(1.0, 4.0),
                  loss_probability=0.2)
    group = ActiveActiveGroup(sim, net, ["r1", "r2", "r3"],
                              anti_entropy_interval=10.0)
    rng = sim.fork_rng()
    for index in range(30):
        replica = ["r1", "r2", "r3"][rng.randint(0, 2)]
        sim.schedule_at(
            float(index),
            lambda bound=replica: group.write_delta(
                bound, "stock", "k", Delta.add("n", 1)
            ),
        )
    sim.run(until=500.0)
    state = group.read("r1", "stock", "k")
    return (
        sim.processed,
        net.stats.sent,
        net.stats.delivered,
        net.stats.dropped_loss,
        state.fields["n"] if state else None,
        group.is_converged(),
    )


def run_queue_scenario(seed: int) -> tuple:
    """A lossy-ack queue run; returns delivery accounting."""
    sim = Simulator(seed=seed)
    queue = ReliableQueue(sim, ack_loss_probability=0.3,
                          retry=RetryPolicy(max_attempts=30, base_delay=1.0))
    receiver = IdempotentReceiver(lambda message: True)
    queue.subscribe("t", receiver)
    for _ in range(40):
        queue.enqueue("t", {})
    sim.run()
    return (
        queue.stats.delivered,
        queue.stats.redelivered,
        receiver.duplicates_skipped,
        sim.processed,
    )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_replicated_scenario_is_seed_deterministic(seed):
    assert run_replicated_scenario(seed) == run_replicated_scenario(seed)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_queue_scenario_is_seed_deterministic(seed):
    assert run_queue_scenario(seed) == run_queue_scenario(seed)


def test_different_seeds_differ_somewhere():
    """The randomness is real: across a handful of seeds the lossy
    network produces different traffic patterns."""
    outcomes = {run_replicated_scenario(seed) for seed in range(5)}
    assert len(outcomes) > 1


def test_convergence_holds_across_seeds():
    """Whatever the loss pattern, every seed converges to the same
    business value — determinism of the *outcome*, not just the run."""
    for seed in range(8):
        result = run_replicated_scenario(seed)
        assert result[-1] is True  # converged
        assert result[-2] == 30  # all 30 increments present
