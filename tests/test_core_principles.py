"""Tests keeping the principles metadata aligned with the codebase."""

from __future__ import annotations

import importlib
import pathlib

import pytest

from repro.core.principles import PRINCIPLES, get_principle, principles_for_experiment

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"


class TestCatalogue:
    def test_exactly_eleven_principles(self):
        assert len(PRINCIPLES) == 11
        assert [principle.number for principle in PRINCIPLES] == list(range(1, 12))

    def test_slugs_unique(self):
        slugs = [principle.slug for principle in PRINCIPLES]
        assert len(set(slugs)) == len(slugs)

    def test_every_principle_has_statement_and_mechanisms(self):
        for principle in PRINCIPLES:
            assert principle.statement
            assert principle.mechanisms
            assert principle.experiments

    def test_lookup_by_number(self):
        assert get_principle(6).slug == "soups"
        assert get_principle(11).title == "The show must go on"

    def test_unknown_number_raises(self):
        with pytest.raises(KeyError):
            get_principle(12)

    def test_experiment_reverse_lookup(self):
        soups_like = principles_for_experiment("E3")
        assert {principle.number for principle in soups_like} == {5, 6}


class TestAlignment:
    def test_every_mechanism_module_imports(self):
        for principle in PRINCIPLES:
            for module_path in principle.mechanisms:
                importlib.import_module(module_path)

    def test_every_experiment_has_a_bench_file(self):
        bench_files = {path.name for path in BENCH_DIR.glob("bench_e*.py")}
        for principle in PRINCIPLES:
            for experiment in principle.experiments:
                number = int(experiment[1:])
                matches = [
                    name for name in bench_files
                    if name.startswith(f"bench_e{number:02d}_")
                ]
                assert matches, f"{experiment} has no bench file in benchmarks/"
