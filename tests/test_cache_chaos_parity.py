"""Chaos soak parity: the hot path may change performance, never answers.

A soak with the read cache and write coalescing enabled must produce a
report **byte-identical** to the cache-off run on the same seed — the
cache serves revalidated (watermark-current) folds under chaos, and the
coalescer defers only the incremental fold with a read barrier, so no
invariant, value, or network count may shift.  ``SoakConfig``'s hot-path
knobs are deliberately excluded from the report's ``config`` dict to
make that comparison literal.
"""

from __future__ import annotations

from repro.chaos.soak import SoakConfig, report_json, run_soak

# Small but chaotic enough to exercise crashes, partitions and repair.
_BASE = dict(seed=11, duration=400.0, quiesce_grace=200.0)


class TestCacheChaosParity:
    def test_cache_on_report_is_byte_identical_to_cache_off(self):
        off = report_json(run_soak(SoakConfig(**_BASE)))
        on = report_json(
            run_soak(
                SoakConfig(**_BASE, read_cache=True, coalesce_window=5.0)
            )
        )
        assert on == off

    def test_cache_on_soak_is_deterministic(self):
        config = SoakConfig(**_BASE, read_cache=True, coalesce_window=5.0)
        assert report_json(run_soak(config)) == report_json(run_soak(config))

    def test_cache_only_parity(self):
        off = report_json(run_soak(SoakConfig(**_BASE)))
        on = report_json(run_soak(SoakConfig(**_BASE, read_cache=True)))
        assert on == off

    def test_coalescing_only_parity(self):
        off = report_json(run_soak(SoakConfig(**_BASE)))
        on = report_json(
            run_soak(SoakConfig(**_BASE, coalesce_window=5.0))
        )
        assert on == off
