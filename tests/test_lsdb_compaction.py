"""Tests for summarization, archival and retention."""

from __future__ import annotations

import json

from repro.lsdb.compaction import Archive, Compactor
from repro.lsdb.events import EventKind, LogEvent
from repro.lsdb.log import AppendOnlyLog
from repro.lsdb.rollup import Rollup
from repro.merge.deltas import Delta


def delta_event(amount, key="k", tags=()):
    return LogEvent(
        lsn=0, timestamp=0.0, entity_type="t", entity_key=key,
        kind=EventKind.DELTA, payload=Delta.add("v", amount).to_payload(),
        tags=frozenset(tags),
    )


def make_world():
    log = AppendOnlyLog()
    rollup = Rollup()
    compactor = Compactor(log, rollup)
    return log, rollup, compactor


class TestCompaction:
    def test_prefix_becomes_one_summary_per_entity(self):
        log, rollup, compactor = make_world()
        for _ in range(4):
            log.append(delta_event(1, key="a"))
        for _ in range(3):
            log.append(delta_event(2, key="b"))
        report = compactor.compact_before(log.head_lsn)
        assert report.events_removed == 7
        assert report.summaries_written == 2
        assert len(log) == 2

    def test_state_is_preserved_across_compaction(self):
        log, rollup, compactor = make_world()
        for amount in (5, -2, 4):
            log.append(delta_event(amount))
        compactor.compact_before(log.head_lsn)
        state = rollup.fold(log.events())[("t", "k")]
        assert state.fields["v"] == 7

    def test_suffix_events_survive(self):
        log, rollup, compactor = make_world()
        for _ in range(5):
            log.append(delta_event(1))
        compactor.compact_before(3)
        state = rollup.fold(log.events())[("t", "k")]
        assert state.fields["v"] == 5
        assert len(log) == 3  # 1 summary + 2 live

    def test_deleted_entities_stay_deleted(self):
        log, rollup, compactor = make_world()
        log.append(delta_event(1))
        log.append(
            LogEvent(lsn=0, timestamp=0.0, entity_type="t", entity_key="k",
                     kind=EventKind.TOMBSTONE)
        )
        compactor.compact_before(log.head_lsn)
        state = rollup.fold(log.events())[("t", "k")]
        assert state.deleted

    def test_compact_keep_recent(self):
        log, rollup, compactor = make_world()
        for _ in range(10):
            log.append(delta_event(1))
        report = compactor.compact_keep_recent(3)
        assert report.shrinkage == 6  # 7 removed, 1 summary
        assert len(log) == 4

    def test_keep_recent_noop_when_small(self):
        log, rollup, compactor = make_world()
        log.append(delta_event(1))
        report = compactor.compact_keep_recent(5)
        assert report.events_removed == 0

    def test_empty_prefix_is_noop(self):
        log, rollup, compactor = make_world()
        report = compactor.compact_before(0)
        assert report.events_removed == 0


class TestArchive:
    def test_removed_events_are_archived(self):
        log, rollup, compactor = make_world()
        for _ in range(4):
            log.append(delta_event(1))
        compactor.compact_before(log.head_lsn)
        assert len(compactor.archive) == 4

    def test_entity_history_recoverable_from_archive(self):
        log, rollup, compactor = make_world()
        log.append(delta_event(3, key="a"))
        log.append(delta_event(9, key="b"))
        compactor.compact_before(log.head_lsn)
        archived = compactor.archive.events_for("t", "a")
        assert len(archived) == 1
        assert Delta.from_payload(archived[0].payload).numeric["v"] == 3

    def test_regulatory_events_queryable(self):
        log, rollup, compactor = make_world()
        log.append(delta_event(1, tags=("regulatory",)))
        log.append(delta_event(2))
        compactor.compact_before(log.head_lsn)
        regulatory = compactor.archive.regulatory_events()
        assert len(regulatory) == 1

    def test_jsonl_dump(self, tmp_path):
        log, rollup, compactor = make_world()
        log.append(delta_event(1))
        compactor.compact_before(log.head_lsn)
        path = tmp_path / "archive.jsonl"
        count = compactor.archive.dump_jsonl(str(path))
        assert count == 1
        lines = path.read_text().strip().splitlines()
        assert json.loads(lines[0])["entity_key"] == "k"
