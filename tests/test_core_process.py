"""Tests for the SOUPS process engine and step collapsing."""

from __future__ import annotations

import pytest

from repro.core.process import ProcessEngine, ProcessStep
from repro.core.policy import RetryPolicy
from repro.core.transaction import TransactionManager
from repro.errors import SoupsViolation
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta
from repro.queues.reliable import ReliableQueue
from repro.sim.scheduler import Simulator


def make_engine(sim=None, enforce_soups=True, max_attempts=2):
    sim = sim or Simulator()
    queue = ReliableQueue(
        sim, retry=RetryPolicy(max_attempts=max_attempts, base_delay=1.0)
    )
    store = LSDBStore(clock=lambda: sim.now)
    manager = TransactionManager(store, sim=sim, queue=queue)
    return sim, ProcessEngine(manager, queue, enforce_soups=enforce_soups)


class TestSteps:
    def test_step_runs_one_transaction_and_acks(self):
        sim, engine = make_engine()

        @engine.step("create", "order.requested")
        def create(ctx):
            ctx.insert("order", ctx.message.payload["key"], {"total": 1})

        engine.start_process("order.requested", {"key": "o1"})
        sim.run()
        assert engine.stats.steps_committed == 1
        assert engine.tx_manager.store.get("order", "o1") is not None

    def test_chained_steps_via_events(self):
        sim, engine = make_engine()

        @engine.step("create", "order.requested")
        def create(ctx):
            ctx.insert("order", "o1", {"total": 40})
            ctx.emit("order.created", {"key": "o1"})

        @engine.step("invoice", "order.created")
        def invoice(ctx):
            order = ctx.read("order", ctx.message.payload["key"])
            ctx.insert("invoice", "inv-o1", {"amount": order.fields["total"]})

        engine.start_process("order.requested", {})
        sim.run()
        assert engine.tx_manager.store.get("invoice", "inv-o1").fields["amount"] == 40
        assert engine.stats.steps_committed == 2

    def test_failed_handler_nacks_and_retries(self):
        sim, engine = make_engine(max_attempts=3)
        attempts = []

        @engine.step("flaky", "topic")
        def flaky(ctx):
            attempts.append(1)
            if len(attempts) < 2:
                raise RuntimeError("transient")
            ctx.insert("done", "d", {})

        engine.start_process("topic", {})
        sim.run()
        assert len(attempts) == 2
        assert engine.stats.handler_errors == 1
        assert engine.tx_manager.store.get("done", "d") is not None

    def test_aborted_step_emits_nothing(self):
        sim, engine = make_engine(max_attempts=1)
        downstream = []

        @engine.step("fails", "start")
        def fails(ctx):
            ctx.insert("order", "o1", {})
            ctx.emit("next", {})
            raise RuntimeError("boom")

        @engine.step("never", "next")
        def never(ctx):
            downstream.append(1)

        engine.start_process("start", {})
        sim.run()
        assert downstream == []
        assert engine.tx_manager.store.get("order", "o1") is None

    def test_duplicate_step_name_rejected(self):
        _, engine = make_engine()
        engine.register_step(ProcessStep("s", "t", lambda ctx: None))
        with pytest.raises(ValueError):
            engine.register_step(ProcessStep("s", "t2", lambda ctx: None))

    def test_idempotent_redelivery_does_not_rerun_handler(self):
        sim = Simulator(seed=2)
        queue = ReliableQueue(
            sim, ack_loss_probability=0.5, retry=RetryPolicy(max_attempts=30, base_delay=1.0)
        )
        store = LSDBStore(clock=lambda: sim.now)
        engine = ProcessEngine(TransactionManager(store, sim=sim, queue=queue), queue)
        runs = []

        @engine.step("once", "topic")
        def once(ctx):
            runs.append(ctx.message.message_id)
            ctx.apply_delta("counter", "c", Delta.add("n", 1))

        for _ in range(10):
            engine.start_process("topic", {})
        sim.run()
        # Exactly-once effect: one run per distinct message.
        assert len(runs) == 10
        assert store.get("counter", "c").fields["n"] == 10


class TestSoupsEnforcement:
    def test_second_entity_update_aborts_and_dead_letters(self):
        sim, engine = make_engine(max_attempts=2)

        @engine.step("greedy", "topic")
        def greedy(ctx):
            ctx.insert("a", "1", {})
            ctx.insert("b", "1", {})

        engine.start_process("topic", {})
        sim.run()
        assert engine.stats.soups_violations >= 1
        assert len(engine.queue.dead_letters) == 1
        # Nothing from the violating step became durable.
        assert engine.tx_manager.store.get("a", "1") is None

    def test_same_entity_repeatedly_is_fine(self):
        sim, engine = make_engine()

        @engine.step("focused", "topic")
        def focused(ctx):
            ctx.insert("a", "1", {"v": 1})
            ctx.apply_delta("a", "1", Delta.add("v", 1))
            ctx.set_fields("a", "1", {"note": "ok"})

        engine.start_process("topic", {})
        sim.run()
        assert engine.stats.steps_committed == 1

    def test_reads_are_unrestricted(self):
        sim, engine = make_engine()
        engine.tx_manager.store.insert("ref", "r1", {"v": 7})

        @engine.step("reader", "topic")
        def reader(ctx):
            ctx.read("ref", "r1")
            ctx.read("other", "o1")
            ctx.insert("a", "1", {})

        engine.start_process("topic", {})
        sim.run()
        assert engine.stats.soups_violations == 0

    def test_enforcement_can_be_disabled(self):
        sim, engine = make_engine(enforce_soups=False)

        @engine.step("multi", "topic")
        def multi(ctx):
            ctx.insert("a", "1", {})
            ctx.insert("b", "1", {})

        engine.start_process("topic", {})
        sim.run()
        assert engine.stats.steps_committed == 1

    def test_updated_entity_exposed(self):
        sim, engine = make_engine()
        observed = []

        @engine.step("probe", "topic")
        def probe(ctx):
            ctx.insert("order", "o9", {})
            observed.append(ctx.updated_entity)

        engine.start_process("topic", {})
        sim.run()
        assert observed == [("order", "o9")]


class TestVerticalCollapse:
    def _chain_steps(self):
        def first(ctx):
            ctx.insert("a", "1", {"stage": 1})
            ctx.emit("stage.two", {"from": "first"})

        def second(ctx):
            ctx.insert("b", "1", {"stage": 2})
            ctx.emit("stage.three", {"from": "second"})
            ctx.emit("audit.trail", {"note": "external"})

        def third(ctx):
            ctx.insert("c", "1", {"stage": 3})

        return [
            ProcessStep("first", "stage.one", first),
            ProcessStep("second", "stage.two", second),
            ProcessStep("third", "stage.three", third),
        ]

    def test_collapsed_chain_runs_in_one_transaction(self):
        sim, engine = make_engine()
        engine.collapse_vertical("fused", self._chain_steps(), "stage.one")
        engine.start_process("stage.one", {})
        sim.run()
        assert engine.stats.steps_run == 1
        assert engine.stats.steps_committed == 1
        for etype in ("a", "b", "c"):
            assert engine.tx_manager.store.get(etype, "1") is not None

    def test_collapsed_chain_still_publishes_external_events(self):
        sim, engine = make_engine()
        external = []
        engine.queue.subscribe("audit.trail", lambda m: external.append(m.payload) or True)
        engine.collapse_vertical("fused", self._chain_steps(), "stage.one")
        engine.start_process("stage.one", {})
        sim.run()
        assert external == [{"note": "external"}]

    def test_chain_stops_when_no_handoff_emitted(self):
        sim, engine = make_engine()

        def first(ctx):
            ctx.insert("a", "1", {})
            # no emit: chain ends here

        def second(ctx):
            ctx.insert("b", "1", {})

        engine.collapse_vertical(
            "fused",
            [ProcessStep("f", "go", first), ProcessStep("s", "next", second)],
            "go",
        )
        engine.start_process("go", {})
        sim.run()
        assert engine.tx_manager.store.get("a", "1") is not None
        assert engine.tx_manager.store.get("b", "1") is None

    def test_empty_chain_rejected(self):
        _, engine = make_engine()
        with pytest.raises(ValueError):
            engine.collapse_vertical("fused", [], "topic")


class TestHorizontalCollapse:
    def test_batch_runs_as_one_transaction(self):
        sim, engine = make_engine()
        step = ProcessStep(
            "count", "tick",
            lambda ctx: ctx.apply_delta("counter", "c", Delta.add("n", 1)),
        )
        engine.collapse_horizontal("batched", step, batch_size=4)
        for _ in range(8):
            engine.start_process("tick", {})
        sim.run()
        assert engine.stats.batches_run == 2
        assert engine.tx_manager.store.get("counter", "c").fields["n"] == 8

    def test_partial_batch_waits(self):
        sim, engine = make_engine()
        step = ProcessStep(
            "count", "tick",
            lambda ctx: ctx.apply_delta("counter", "c", Delta.add("n", 1)),
        )
        engine.collapse_horizontal("batched", step, batch_size=5)
        for _ in range(3):
            engine.start_process("tick", {})
        sim.run()
        assert engine.stats.batches_run == 0
        assert engine.tx_manager.store.get("counter", "c") is None

    def test_invalid_batch_size_rejected(self):
        _, engine = make_engine()
        step = ProcessStep("s", "t", lambda ctx: None)
        with pytest.raises(ValueError):
            engine.collapse_horizontal("b", step, batch_size=0)
