"""Tests for serialization units and routing."""

from __future__ import annotations

import pytest

from repro.partition.router import DynamicDirectory, HashRouter, RangeRouter
from repro.partition.units import SerializationUnit
from repro.sim.scheduler import Simulator


class TestHashRouter:
    def test_placement_is_deterministic(self):
        router_a = HashRouter(["u1", "u2", "u3"])
        router_b = HashRouter(["u1", "u2", "u3"])
        for key in ("alpha", "beta", "gamma"):
            assert router_a.unit_for("order", key) == router_b.unit_for("order", key)

    def test_all_units_receive_some_keys(self):
        router = HashRouter(["u1", "u2", "u3"])
        placements = {router.unit_for("order", f"k{i}") for i in range(100)}
        assert placements == {"u1", "u2", "u3"}

    def test_type_participates_in_placement(self):
        router = HashRouter(["u1", "u2", "u3", "u4"])
        differs = any(
            router.unit_for("order", f"k{i}") != router.unit_for("invoice", f"k{i}")
            for i in range(20)
        )
        assert differs

    def test_needs_at_least_one_unit(self):
        with pytest.raises(ValueError):
            HashRouter([])


class TestRangeRouter:
    def test_key_ranges(self):
        router = RangeRouter([("h", "u1"), ("p", "u2")], default_unit="u3")
        assert router.unit_for("customer", "alice") == "u1"
        assert router.unit_for("customer", "mike") == "u2"
        assert router.unit_for("customer", "zoe") == "u3"

    def test_boundary_is_exclusive(self):
        router = RangeRouter([("m", "low")], default_unit="high")
        assert router.unit_for("t", "m") == "high"
        assert router.unit_for("t", "lzz") == "low"


class TestDynamicDirectory:
    def test_falls_back_to_base_router(self):
        directory = DynamicDirectory(HashRouter(["u1", "u2"]))
        base = HashRouter(["u1", "u2"])
        assert directory.unit_for("order", "k") == base.unit_for("order", "k")

    def test_move_overrides_placement(self):
        directory = DynamicDirectory(HashRouter(["u1", "u2"]))
        directory.move("order", "hot-key", "u2")
        assert directory.unit_for("order", "hot-key") == "u2"
        assert directory.placement_of("order", "hot-key") == "u2"
        assert directory.override_count == 1

    def test_other_entities_unaffected_by_move(self):
        directory = DynamicDirectory(HashRouter(["u1", "u2"]))
        before = directory.unit_for("order", "other")
        directory.move("order", "hot-key", "u2")
        assert directory.unit_for("order", "other") == before


class TestSerializationUnit:
    def test_unit_owns_independent_store_and_log(self):
        sim = Simulator()
        unit_a = SerializationUnit("u1", sim)
        unit_b = SerializationUnit("u2", sim)
        unit_a.store.insert("order", "o1", {"v": 1})
        assert unit_b.store.get("order", "o1") is None
        assert unit_a.store.log.head_lsn == 1
        assert unit_b.store.log.head_lsn == 0

    def test_store_origin_matches_unit(self):
        unit = SerializationUnit("u7", Simulator())
        event = unit.store.insert("t", "k", {})
        assert event.origin == "u7"

    def test_commit_slots_serialize(self):
        sim = Simulator()
        unit = SerializationUnit("u1", sim, local_commit_cost=2.0)
        first = unit.next_commit_slot()
        second = unit.next_commit_slot()
        assert first == 2.0
        assert second == 4.0  # queued behind the first
        assert unit.commits == 2

    def test_commit_slot_respects_current_time(self):
        sim = Simulator()
        unit = SerializationUnit("u1", sim, local_commit_cost=1.0)
        unit.next_commit_slot()
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert unit.next_commit_slot() == 11.0
