"""Tests for multi-event (join) step scheduling — section 3.1."""

from __future__ import annotations

import pytest

from repro.core.process import JoinContext, ProcessEngine, ProcessStep
from repro.core.policy import RetryPolicy
from repro.core.transaction import TransactionManager
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta
from repro.queues.reliable import ReliableQueue
from repro.sim.scheduler import Simulator


def make_engine(seed=0, ack_loss=0.0):
    sim = Simulator(seed=seed)
    queue = ReliableQueue(
        sim,
        ack_loss_probability=ack_loss,
        retry=RetryPolicy(max_attempts=30, base_delay=1.0),
    )
    store = LSDBStore(clock=lambda: sim.now)
    engine = ProcessEngine(TransactionManager(store, sim=sim, queue=queue), queue)
    return sim, store, engine


def register_settlement(engine):
    def settle(ctx: JoinContext):
        order = ctx.messages["payment.received"].payload["order"]
        ctx.insert(
            "settlement",
            order,
            {
                "paid": ctx.messages["payment.received"].payload["amount"],
                "carrier": ctx.messages["goods.shipped"].payload["carrier"],
            },
        )

    engine.register_join(
        "settle",
        ["payment.received", "goods.shipped"],
        correlate=lambda message: message.payload["order"],
        handler=settle,
    )


class TestJoinScheduling:
    def test_fires_only_when_all_topics_arrived(self):
        sim, store, engine = make_engine()
        register_settlement(engine)
        engine.start_process("payment.received", {"order": "o1", "amount": 42})
        sim.run()
        assert store.get("settlement", "o1") is None
        engine.start_process("goods.shipped", {"order": "o1", "carrier": "DHL"})
        sim.run()
        assert store.get("settlement", "o1").fields == {"paid": 42, "carrier": "DHL"}

    def test_arrival_order_is_irrelevant(self):
        sim, store, engine = make_engine()
        register_settlement(engine)
        engine.start_process("goods.shipped", {"order": "o1", "carrier": "DHL"})
        engine.start_process("payment.received", {"order": "o1", "amount": 42})
        sim.run()
        assert store.get("settlement", "o1") is not None

    def test_correlation_keys_isolate_joins(self):
        sim, store, engine = make_engine()
        register_settlement(engine)
        engine.start_process("payment.received", {"order": "o1", "amount": 1})
        engine.start_process("goods.shipped", {"order": "o2", "carrier": "UPS"})
        sim.run()
        assert store.get("settlement", "o1") is None
        assert store.get("settlement", "o2") is None
        engine.start_process("goods.shipped", {"order": "o1", "carrier": "DHL"})
        engine.start_process("payment.received", {"order": "o2", "amount": 2})
        sim.run()
        assert store.get("settlement", "o1").fields["paid"] == 1
        assert store.get("settlement", "o2").fields["paid"] == 2

    def test_many_interleaved_joins_all_complete(self):
        sim, store, engine = make_engine()
        register_settlement(engine)
        for index in range(20):
            engine.start_process(
                "payment.received", {"order": f"o{index}", "amount": index}
            )
        for index in reversed(range(20)):
            engine.start_process(
                "goods.shipped", {"order": f"o{index}", "carrier": "DHL"}
            )
        sim.run()
        assert engine.stats.steps_committed == 20

    def test_join_step_is_one_soups_transaction(self):
        sim, store, engine = make_engine()

        def greedy(ctx: JoinContext):
            ctx.insert("a", "1", {})
            ctx.insert("b", "1", {})  # second entity: SOUPS violation

        engine.register_join(
            "greedy", ["x", "y"],
            correlate=lambda m: m.payload["k"], handler=greedy,
        )
        engine.start_process("x", {"k": "1"})
        engine.start_process("y", {"k": "1"})
        sim.run()
        assert engine.stats.soups_violations >= 1
        assert store.get("a", "1") is None

    def test_duplicate_deliveries_do_not_double_fire(self):
        sim, store, engine = make_engine(seed=5, ack_loss=0.4)

        def tally(ctx: JoinContext):
            ctx.apply_delta("stats", "joins", Delta.add("n", 1))

        engine.register_join(
            "tally", ["left", "right"],
            correlate=lambda m: m.payload["k"], handler=tally,
        )
        for index in range(10):
            engine.start_process("left", {"k": f"k{index}"})
            engine.start_process("right", {"k": f"k{index}"})
        sim.run()
        assert store.get("stats", "joins").fields["n"] == 10

    def test_handler_failure_aborts_without_effects(self):
        sim, store, engine = make_engine()

        def explode(ctx: JoinContext):
            ctx.insert("a", "1", {})
            raise RuntimeError("boom")

        engine.register_join(
            "explode", ["x", "y"],
            correlate=lambda m: m.payload["k"], handler=explode,
        )
        engine.start_process("x", {"k": "1"})
        engine.start_process("y", {"k": "1"})
        sim.run()
        assert store.get("a", "1") is None
        assert engine.stats.handler_errors >= 1

    def test_registration_validation(self):
        _, _, engine = make_engine()
        with pytest.raises(ValueError):
            engine.register_join("empty", [], correlate=lambda m: "", handler=lambda c: None)
        engine.register_join(
            "ok", ["t"], correlate=lambda m: "", handler=lambda c: None
        )
        with pytest.raises(ValueError):
            engine.register_join(
                "ok", ["t2"], correlate=lambda m: "", handler=lambda c: None
            )

    def test_join_context_exposes_all_messages(self):
        sim, store, engine = make_engine()
        captured = {}

        def capture(ctx: JoinContext):
            captured["topics"] = sorted(ctx.messages)
            ctx.insert("done", "d", {})

        engine.register_join(
            "capture", ["x", "y", "z"],
            correlate=lambda m: m.payload["k"], handler=capture,
        )
        for topic in ("x", "y", "z"):
            engine.start_process(topic, {"k": "1"})
        sim.run()
        assert captured["topics"] == ["x", "y", "z"]
