"""Property tests for the clock laws the isolation spectrum leans on.

SI/NMSI snapshots are `VectorClock`s cut from per-site commit
sequences, and "two transactions observed incomparable states" is
literally ``concurrent_with`` — so the spectrum's correctness rests on
``compare`` being a genuine partial order and ``merge`` a genuine join.
These are the laws, stated as hypothesis properties.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.merge.clock import Ordering, VectorClock, VersionVector

REPLICAS = ("r1", "r2", "r3", "r4")

counts = st.dictionaries(
    st.sampled_from(REPLICAS), st.integers(min_value=0, max_value=8)
)
clocks = counts.map(VectorClock)
vectors = counts.map(VersionVector)

_FLIP = {
    Ordering.BEFORE: Ordering.AFTER,
    Ordering.AFTER: Ordering.BEFORE,
    Ordering.EQUAL: Ordering.EQUAL,
    Ordering.CONCURRENT: Ordering.CONCURRENT,
}


def _at_most(a: VectorClock, b: VectorClock) -> bool:
    """a <= b in the causal order."""
    return a.compare(b) in (Ordering.BEFORE, Ordering.EQUAL)


class TestVectorClockPartialOrder:
    @given(clocks)
    def test_reflexive_equal(self, a):
        assert a.compare(a) is Ordering.EQUAL

    @given(clocks, clocks)
    def test_comparison_antisymmetric(self, a, b):
        # Swapping the operands flips BEFORE/AFTER and fixes
        # EQUAL/CONCURRENT; in particular a<=b and b<=a force a == b.
        assert b.compare(a) is _FLIP[a.compare(b)]
        if _at_most(a, b) and _at_most(b, a):
            assert a == b

    @given(clocks, clocks, clocks)
    def test_transitive(self, a, b, c):
        if _at_most(a, b) and _at_most(b, c):
            assert _at_most(a, c)

    @given(clocks, clocks)
    def test_concurrent_symmetric(self, a, b):
        assert a.concurrent_with(b) == b.concurrent_with(a)

    @given(clocks, clocks)
    def test_concurrent_excludes_order(self, a, b):
        if a.concurrent_with(b):
            assert not _at_most(a, b)
            assert not _at_most(b, a)

    @given(clocks, st.sampled_from(REPLICAS))
    def test_increment_strictly_after(self, a, replica):
        assert a.compare(a.increment(replica)) is Ordering.BEFORE


class TestVectorClockMergeLaws:
    @given(clocks, clocks)
    def test_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @given(clocks, clocks, clocks)
    def test_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(clocks)
    def test_idempotent(self, a):
        assert a.merge(a) == a

    @given(clocks, clocks)
    def test_merge_is_upper_bound(self, a, b):
        joined = a.merge(b)
        assert joined.dominates(a)
        assert joined.dominates(b)

    @given(clocks, clocks, clocks)
    def test_merge_is_least_upper_bound(self, a, b, c):
        if c.dominates(a) and c.dominates(b):
            assert c.dominates(a.merge(b))


class TestVersionVectorLaws:
    @given(vectors, vectors)
    def test_merge_commutative(self, a, b):
        left = VersionVector(a.to_dict())
        left.merge(b)
        right = VersionVector(b.to_dict())
        right.merge(a)
        assert left == right

    @given(vectors, vectors, vectors)
    def test_merge_associative(self, a, b, c):
        left = VersionVector(a.to_dict())
        left.merge(b)
        left.merge(c)
        bc = VersionVector(b.to_dict())
        bc.merge(c)
        right = VersionVector(a.to_dict())
        right.merge(bc)
        assert left == right

    @given(vectors)
    def test_merge_idempotent(self, a):
        merged = VersionVector(a.to_dict())
        merged.merge(a)
        assert merged == a

    @given(vectors, st.sampled_from(REPLICAS), st.integers(0, 8),
           st.integers(0, 8))
    def test_record_monotone(self, a, replica, first, second):
        a.record(replica, first)
        high = a.get(replica)
        a.record(replica, second)
        assert a.get(replica) == max(high, second)

    @given(vectors, vectors)
    def test_missing_from_closes_the_gap(self, a, b):
        # Applying exactly the ranges missing_from reports leaves
        # nothing missing — the anti-entropy convergence step.
        for origin, (_, want) in a.missing_from(b).items():
            a.record(origin, want)
        assert a.missing_from(b) == {}

    @given(vectors, vectors)
    def test_snapshot_reflects_merge(self, a, b):
        before = a.snapshot()
        other = b.snapshot()
        a.merge(b)
        after = a.snapshot()
        assert after == before.merge(other)
        assert after.dominates(before)

    @given(vectors, st.sampled_from(REPLICAS))
    def test_advance_is_increment(self, a, replica):
        before = a.snapshot()
        sequence = a.advance(replica)
        assert sequence == before.get(replica) + 1
        assert a.snapshot() == before.increment(replica)
