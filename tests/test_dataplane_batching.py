"""Batched data plane: frames on the wire, chunking, coalescing.

PR 5 changed the replication wire unit from one message per event to one
*frame* per LSN-contiguous run.  These tests pin the frame semantics
(one latency draw and one loss/duplication coin per frame), the chunking
invariants (frames never span sequence gaps), the coalescing shipper,
the batched apply fast path, the builder/scheme knobs and the
deprecation shim — plus the broadcast regression from the same change.
"""

from __future__ import annotations

import json

import pytest

from repro.lsdb.events import EventKind, LogEvent
from repro.merge.deltas import Delta
from repro.replication.asynchronous import AsyncPrimaryBackup
from repro.replication.batching import BatchPolicy, FrameShipper
from repro.replication.active_active import ActiveActiveGroup
from repro.replication.master_slave import MasterSlaveGroup
from repro.replication.replica import ReplicaNode
from repro.sim.network import Network, Node
from repro.sim.scheduler import Simulator


def make_events(count: int, origin: str = "src", start_lsn: int = 1) -> list[LogEvent]:
    return [
        LogEvent(
            lsn=start_lsn + index,
            timestamp=float(index),
            entity_type="acct",
            entity_key=f"a{index}",
            kind=EventKind.INSERT,
            payload={"bal": index},
            origin=origin,
            origin_seq=index + 1,
        )
        for index in range(count)
    ]


class Recorder(Node):
    """Sink node that records every delivered payload."""

    def __init__(self, node_id: str):
        super().__init__(node_id)
        self.messages: list = []

    def handle_message(self, source, message):
        self.messages.append((source, message))


class TestBatchPolicy:
    def test_default_is_one_event_per_frame(self):
        events = make_events(5)
        chunks = list(BatchPolicy().chunk(events))
        assert [len(chunk) for chunk in chunks] == [1, 1, 1, 1, 1]

    def test_max_batch_splits_contiguous_runs(self):
        events = make_events(10)
        chunks = list(BatchPolicy(max_batch=4).chunk(events))
        assert [len(chunk) for chunk in chunks] == [4, 4, 2]
        assert [event.lsn for event in chunks[0]] == [1, 2, 3, 4]

    def test_frames_never_span_lsn_gaps(self):
        events = make_events(3) + make_events(3, start_lsn=10)
        chunks = list(BatchPolicy(max_batch=100).chunk(events))
        # origin_seq restarts make the second run non-successive too.
        assert len(chunks) >= 2
        for chunk in chunks:
            lsns = [event.lsn for event in chunk]
            assert lsns == list(range(lsns[0], lsns[0] + len(lsns)))

    def test_unappended_events_chunk_by_origin_seq(self):
        # lsn=0 (not yet appended locally) falls back to origin_seq
        # contiguity — anti-entropy ships such runs.
        events = [
            LogEvent(lsn=0, timestamp=0.0, entity_type="t", entity_key="k",
                     kind=EventKind.INSERT, payload={}, origin="o",
                     origin_seq=seq)
            for seq in (1, 2, 3, 7, 8)
        ]
        chunks = list(BatchPolicy(max_batch=100).chunk(events))
        assert [len(chunk) for chunk in chunks] == [3, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(flush_interval=-1.0)
        assert BatchPolicy(flush_interval=2.0).coalesces
        assert not BatchPolicy(max_batch=8).coalesces


class TestFrameWire:
    def test_send_batch_is_one_wire_message(self):
        sim = Simulator(seed=1)
        net = Network(sim, latency=2.0)
        sender = net.register(Recorder("a"))
        receiver = net.register(Recorder("b"))
        assert net.send_batch("a", "b", ["m1", "m2", "m3"], size=3)
        sim.run()
        # One frame on the wire, three payloads delivered in order.
        assert net.stats.sent == 1
        assert net.stats.frames == 1
        assert net.stats.frame_payloads == 3
        assert [payload for _, payload in receiver.messages] == ["m1", "m2", "m3"]
        assert sender.messages == []

    def test_loss_hits_the_whole_frame(self):
        sim = Simulator(seed=2)
        net = Network(sim, latency=1.0, loss_probability=1.0)
        net.register(Recorder("a"))
        receiver = net.register(Recorder("b"))
        assert not net.send_batch("a", "b", ["m1", "m2"], size=2)
        sim.run()
        assert receiver.messages == []
        # One loss coin for the frame, not one per payload.
        assert net.stats.dropped_loss == 1

    def test_duplication_replays_the_whole_frame(self):
        sim = Simulator(seed=3)
        net = Network(sim, latency=1.0, duplication_probability=1.0)
        net.register(Recorder("a"))
        receiver = net.register(Recorder("b"))
        net.send_batch("a", "b", ["m1", "m2"], size=2)
        sim.run()
        assert net.stats.duplicated == 1
        assert [payload for _, payload in receiver.messages] == [
            "m1", "m2", "m1", "m2",
        ]

    def test_broadcast_under_partition_reaches_exactly_reachable_side(self):
        # Regression for the shared-draw broadcast rewrite: a partition
        # must drop exactly the cross-partition copies, nothing else.
        sim = Simulator(seed=4)
        net = Network(sim, latency=1.0)
        for node_id in ("a", "b", "c", "d"):
            net.register(Recorder(node_id))
        net.partition_into({"a", "b"}, {"c", "d"})
        accepted = net.broadcast("a", {"type": "ping"})
        sim.run()
        assert accepted == 1  # only b
        assert len(net.nodes["b"].messages) == 1
        assert net.nodes["c"].messages == []
        assert net.nodes["d"].messages == []
        assert net.stats.dropped_partition == 2

    def test_broadcast_shares_one_latency_draw(self):
        sim = Simulator(seed=5)
        draws = []

        def latency(rng):
            draws.append(1)
            return 2.0

        net = Network(sim, latency=latency)
        for node_id in ("a", "b", "c", "d"):
            net.register(Recorder(node_id))
        net.broadcast("a", "hello")
        sim.run()
        assert len(draws) == 1  # one draw shared by all three copies
        for node_id in ("b", "c", "d"):
            assert len(net.nodes[node_id].messages) == 1


class TestFrameShipper:
    def test_flush_at_max_batch(self):
        sim = Simulator(seed=6)
        net = Network(sim, latency=1.0)
        policy = BatchPolicy(max_batch=3, flush_interval=50.0)
        source = net.register(ReplicaNode("src", sim, batching=policy))
        sink = net.register(ReplicaNode("dst", sim))
        shipper = source.shipper
        assert isinstance(shipper, FrameShipper)
        events = [
            source.store.insert("acct", f"a{i}", {"bal": i}) for i in range(3)
        ]
        shipper.offer("dst", events)
        assert shipper.pending("dst") == 0  # size trigger flushed eagerly
        sim.run(until=5.0)
        assert sink.events_received == 3
        assert net.stats.frames == 1

    def test_timer_flushes_partial_buffer(self):
        sim = Simulator(seed=7)
        net = Network(sim, latency=1.0)
        source = net.register(
            ReplicaNode(
                "src", sim, batching=BatchPolicy(max_batch=10, flush_interval=4.0)
            )
        )
        sink = net.register(ReplicaNode("dst", sim))
        shipper = source.shipper
        event = source.store.insert("acct", "a", {"bal": 1})
        shipper.offer("dst", [event])
        assert shipper.pending("dst") == 1
        sim.run(until=3.0)
        assert sink.events_received == 0  # still buffered
        sim.run(until=10.0)
        assert sink.events_received == 1
        assert shipper.pending() == 0


class TestBatchedReplication:
    def _shipped_state(self, max_batch):
        sim = Simulator(seed=8)
        net = Network(sim, latency=1.0)
        policy = BatchPolicy(max_batch=max_batch)
        primary = net.register(ReplicaNode("p", sim, batching=policy))
        backup = net.register(ReplicaNode("b", sim, batching=policy))
        primary.store.insert("acct", "a", {"bal": 0})
        for index in range(40):
            primary.store.apply_delta("acct", "a", Delta.add("bal", 1))
            primary.store.insert("acct", f"k{index}", {"bal": index})
        primary.ship_events("b", primary.store.events_since(0))
        sim.run()
        return backup, net.stats

    def test_batched_apply_equals_per_event_apply(self):
        unbatched, _ = self._shipped_state(None)
        batched, _ = self._shipped_state(16)
        assert batched.observable_state() == unbatched.observable_state()
        assert (
            batched.store.version_vector.to_dict()
            == unbatched.store.version_vector.to_dict()
        )
        assert batched.events_received == unbatched.events_received

    def test_equal_volume_far_fewer_wire_messages(self):
        _, unbatched_stats = self._shipped_state(None)
        _, batched_stats = self._shipped_state(16)
        assert unbatched_stats.sent == 81
        assert batched_stats.sent <= 81 / 10
        assert batched_stats.frame_payloads == unbatched_stats.frame_payloads

    def test_lossy_batched_replication_repairs_and_converges(self):
        sim = Simulator(seed=9)
        net = Network(sim, latency=2.0, loss_probability=0.2)
        group = ActiveActiveGroup(
            sim, net, ["r1", "r2", "r3"],
            anti_entropy_interval=10.0,
            batching=BatchPolicy(max_batch=8, flush_interval=3.0),
        )
        for index in range(60):
            sim.schedule_at(
                float(index),
                lambda i=index: group.write_delta(
                    f"r{1 + i % 3}", "acct", f"k{i % 5}", Delta.add("bal", 1)
                ),
                label="write",
            )
        sim.run(until=600.0)
        assert group.is_converged()
        total = sum(
            group.replicas["r1"].store.get("acct", f"k{i}").fields["bal"]
            for i in range(5)
        )
        assert total == 60

    def test_determinism_with_batching_and_loss(self):
        def signature():
            sim = Simulator(seed=10)
            net = Network(
                sim, latency=2.0, loss_probability=0.1,
                duplication_probability=0.05,
            )
            pair = AsyncPrimaryBackup(
                sim, net, ship_interval=5.0,
                batching=BatchPolicy(max_batch=8, flush_interval=2.0),
            )
            for index in range(50):
                sim.schedule_at(
                    float(index),
                    lambda i=index: pair.write_delta(
                        "acct", f"k{i % 4}", Delta.add("bal", 1)
                    ),
                    label="write",
                )
            sim.run(until=200.0)
            return json.dumps(
                {
                    "now": sim.now,
                    "sent": net.stats.sent,
                    "frames": net.stats.frames,
                    "loss": net.stats.dropped_loss,
                    "dup": net.stats.duplicated,
                    "vv": pair.backup.store.version_vector.to_dict(),
                },
                sort_keys=True,
            )

        assert signature() == signature()


class TestSchemeKnobs:
    def test_ship_interval_alone_is_an_error(self):
        # The PR 5 deprecation completed its cycle: a shipping cadence
        # without a frame policy no longer falls back to unbatched wire.
        sim = Simulator(seed=11)
        net = Network(sim, latency=1.0)
        with pytest.raises(TypeError, match="batching"):
            AsyncPrimaryBackup(sim, net, ship_interval=7.0)

    def test_master_slave_shim_matches(self):
        sim = Simulator(seed=12)
        net = Network(sim, latency=1.0)
        with pytest.raises(TypeError, match="batching"):
            MasterSlaveGroup(sim, net, "m", ["s1"], ship_interval=3.0)

    def test_batching_kwarg_does_not_warn(self):
        import warnings

        sim = Simulator(seed=13)
        net = Network(sim, latency=1.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            pair = AsyncPrimaryBackup(
                sim, net, ship_interval=7.0, batching=BatchPolicy(max_batch=32)
            )
        assert pair.batching.max_batch == 32

    def test_cluster_builder_with_batching(self):
        from repro import Cluster

        cluster = (
            Cluster.build(seed=14)
            .with_replicas(2, mode="async", ship_interval=5.0)
            .with_batching(max_batch=16)
            .with_warehouse(interval=10.0)
            .create()
        )
        assert cluster.batching.max_batch == 16
        assert cluster.replication.batching.max_batch == 16
        assert cluster.replication.primary.batching.max_batch == 16
        assert cluster.warehouse.max_batch == 16
        cluster.replication.write_insert("order", "o1", {"total": 1})
        cluster.sim.run(until=30.0)
        assert cluster.replication.backup.store.get("order", "o1") is not None

    def test_explicit_scheme_batching_wins_over_builder_default(self):
        from repro import Cluster

        cluster = (
            Cluster.build(seed=15)
            .with_replicas(
                2, mode="async", batching=BatchPolicy(max_batch=4)
            )
            .with_batching(max_batch=99)
            .create()
        )
        assert cluster.replication.batching.max_batch == 4
