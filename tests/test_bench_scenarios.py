"""The pluggable scenario registry and the time-varying choosers.

The suite pins the registry contract (lookup, unknown-name error,
duplicate rejection), the determinism contract every scenario inherits
(same seed, byte-identical op schedule), and the *shape* each stock
scenario promises: Zipf skew concentrates traffic, the flash crowd's
star absorbs its share mid-run, the diurnal hot set actually rotates.
"""

from __future__ import annotations

import pytest

from repro.bench import scenarios
from repro.bench.workloads import (
    FlashCrowdChooser,
    KeyChooser,
    RotatingHotSetChooser,
    open_loop_arrivals,
)
from repro.sim.rng import SeededRNG


class TestRegistry:
    def test_stock_suite_registered(self):
        assert scenarios.names() == [
            "diurnal",
            "flash_crowd",
            "zipf_hot",
            "zipf_mild",
        ]

    def test_get_returns_fresh_specs(self):
        assert scenarios.get("zipf_hot").theta == 0.99
        assert scenarios.get("zipf_mild").theta == 0.5

    def test_unknown_name_lists_what_exists(self):
        with pytest.raises(KeyError, match="zipf_hot"):
            scenarios.get("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            scenarios.register(lambda: scenarios.Scenario(
                name="zipf_hot", description="dup"
            ))


class TestDeterminism:
    @pytest.mark.parametrize("name", ["zipf_hot", "flash_crowd", "diurnal"])
    def test_same_seed_same_schedule(self, name):
        spec = scenarios.get(name).scaled(0.1)
        assert spec.ops(seed=3) == spec.ops(seed=3)

    def test_different_seeds_differ(self):
        spec = scenarios.get("zipf_hot").scaled(0.1)
        assert spec.ops(seed=3) != spec.ops(seed=4)

    def test_schedule_sorted_and_indexed(self):
        ops = scenarios.get("zipf_hot").scaled(0.1).ops(seed=1)
        assert [op.index for op in ops] == list(range(len(ops)))
        assert all(a.at <= b.at for a, b in zip(ops, ops[1:]))
        kinds = {op.kind for op in ops}
        assert kinds == {"read", "write"}


class TestShapes:
    def test_zipf_hot_concentrates_traffic(self):
        spec = scenarios.get("zipf_hot").scaled(0.1)
        ops = spec.ops(seed=2)
        hot = set(spec.hot_keys_at(0.0))
        share = sum(1 for op in ops if op.key in hot) / len(ops)
        assert share > 0.4  # theta=0.99: the top-16 dominate

    def test_flash_crowd_star_takes_its_share(self):
        spec = scenarios.get("flash_crowd").scaled(0.1)
        ops = spec.ops(seed=2)
        flash_at = spec.flash_start * spec.duration
        star = spec.hot_keys_at(spec.duration)[0]
        before = [op for op in ops if op.at < flash_at]
        after = [op for op in ops if op.at >= flash_at]
        share_before = sum(1 for op in before if op.key == star) / len(before)
        share_after = sum(1 for op in after if op.key == star) / len(after)
        assert share_before < 0.05  # cold before the crowd
        assert 0.2 < share_after < 0.45  # ~30% after

    def test_flash_crowd_star_leads_hot_set_only_after_start(self):
        spec = scenarios.get("flash_crowd").scaled(0.1)
        star = spec.hot_keys_at(spec.duration)[0]
        assert spec.hot_keys_at(0.0)[0] != star
        assert spec.hot_keys_at(spec.duration)[0] == star

    def test_diurnal_hot_set_rotates(self):
        spec = scenarios.get("diurnal").scaled(0.1)
        early = set(spec.hot_keys_at(0.0))
        late = set(spec.hot_keys_at(spec.duration - 1.0))
        assert early != late
        # And the traffic follows: keys hot late in the run receive
        # most of their ops late in the run.
        ops = spec.ops(seed=5)
        late_only = late - early
        assert late_only
        late_ops = [op for op in ops if op.key in late_only]
        assert late_ops
        median = sorted(op.at for op in late_ops)[len(late_ops) // 2]
        assert median > spec.duration / 4

    def test_scaled_preserves_shape(self):
        spec = scenarios.get("flash_crowd")
        small = spec.scaled(0.05)
        assert small.theta == spec.theta
        assert small.flash_start == spec.flash_start
        assert small.entities < spec.entities


class TestChoosers:
    def test_key_chooser_accepts_time_argument(self):
        rng = SeededRNG(1)
        chooser = KeyChooser(rng, ["a", "b", "c"], theta=0.9)
        assert chooser.choose(5.0) in ("a", "b", "c")
        assert chooser.hot_keys_at(0.0, 2) == ("a", "b")

    def test_flash_chooser_determinism(self):
        keys = [f"k{i}" for i in range(50)]
        draws = [
            [
                FlashCrowdChooser(
                    SeededRNG(9), keys, star_index=30, start=10.0
                ).choose(at)
                for at in (0.0, 5.0, 15.0, 20.0)
            ]
            for _ in range(2)
        ]
        assert draws[0] == draws[1]

    def test_flash_chooser_rejects_bad_share(self):
        with pytest.raises(ValueError):
            FlashCrowdChooser(SeededRNG(1), ["a"], share=1.5)

    def test_rotating_chooser_phase_and_rotation(self):
        keys = [f"k{i}" for i in range(16)]
        chooser = RotatingHotSetChooser(
            SeededRNG(3), keys, period=10.0, stride=4
        )
        assert chooser.phase_at(0.0) == 0
        assert chooser.phase_at(25.0) == 2
        assert chooser.hot_keys_at(0.0, 2) == ("k0", "k1")
        assert chooser.hot_keys_at(10.0, 2) == ("k4", "k5")

    def test_rotating_chooser_rejects_bad_period(self):
        with pytest.raises(ValueError):
            RotatingHotSetChooser(SeededRNG(1), ["a"], period=0.0)

    def test_open_loop_arrivals_accepts_prebuilt_chooser(self):
        keys = [f"k{i}" for i in range(8)]
        rng = SeededRNG(4)
        chooser = RotatingHotSetChooser(rng, keys, period=20.0, stride=2)
        arrivals = open_loop_arrivals(
            rng, rate=1.0, duration=50.0, keys=keys, chooser=chooser
        )
        assert arrivals
        assert all(arrival.key in keys for arrival in arrivals)

    def test_open_loop_arrivals_default_stream_unchanged(self):
        # The chooser= parameter must not disturb the legacy seeded
        # stream: the default path draws exactly as before.
        keys = [f"k{i}" for i in range(8)]
        a = open_loop_arrivals(SeededRNG(7), 1.0, 50.0, keys, theta=0.6)
        b = open_loop_arrivals(SeededRNG(7), 1.0, 50.0, keys, theta=0.6)
        assert a == b
