"""Tests for the LSDB store facade."""

from __future__ import annotations

import pytest

from repro.errors import EntityNotFound
from repro.lsdb.events import EventKind, LogEvent
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta


def remote_delta(origin, seq, amount, key="k"):
    return LogEvent(
        lsn=0, timestamp=0.0, entity_type="t", entity_key=key,
        kind=EventKind.DELTA, payload=Delta.add("v", amount).to_payload(),
        origin=origin, origin_seq=seq,
    )


class TestLocalWrites:
    def test_insert_then_get(self):
        store = LSDBStore()
        store.insert("order", "o1", {"total": 5})
        assert store.get("order", "o1").fields["total"] == 5

    def test_delta_accumulates(self):
        store = LSDBStore()
        store.insert("acct", "a", {"bal": 0})
        store.apply_delta("acct", "a", Delta.add("bal", 10))
        store.apply_delta("acct", "a", Delta.add("bal", -3))
        assert store.get("acct", "a").fields["bal"] == 7

    def test_set_fields_overwrites(self):
        store = LSDBStore()
        store.insert("order", "o1", {"status": "open"})
        store.set_fields("order", "o1", {"status": "closed"})
        assert store.get("order", "o1").fields["status"] == "closed"

    def test_tombstone_marks_not_erases(self):
        store = LSDBStore()
        store.insert("order", "o1", {"total": 5})
        store.tombstone("order", "o1")
        state = store.get("order", "o1")
        assert state.deleted and state.fields["total"] == 5

    def test_require_raises_for_missing_and_deleted(self):
        store = LSDBStore()
        with pytest.raises(EntityNotFound):
            store.require("order", "nope")
        store.insert("order", "o1", {})
        store.tombstone("order", "o1")
        with pytest.raises(EntityNotFound):
            store.require("order", "o1")

    def test_mark_obsolete(self):
        store = LSDBStore()
        store.insert("offer", "f1", {"qty": 5})
        store.mark_obsolete("offer", "f1")
        state = store.get("offer", "f1")
        assert state.obsolete and not state.live

    def test_origin_sequence_stamps_local_events(self):
        store = LSDBStore(origin="r1")
        first = store.insert("t", "a", {})
        second = store.insert("t", "b", {})
        assert first.identity == ("r1", 1)
        assert second.identity == ("r1", 2)
        assert store.version_vector.get("r1") == 2

    def test_clock_stamps_timestamps(self):
        times = iter([1.5, 2.5])
        store = LSDBStore(clock=lambda: next(times))
        event = store.insert("t", "a", {})
        assert event.timestamp == 1.5


class TestRemoteApply:
    def test_in_order_apply(self):
        store = LSDBStore(origin="r2")
        assert store.apply_remote(remote_delta("r1", 1, 5))
        assert store.apply_remote(remote_delta("r1", 2, 3))
        assert store.get("t", "k").fields["v"] == 8
        assert store.version_vector.get("r1") == 2

    def test_duplicates_rejected(self):
        store = LSDBStore(origin="r2")
        event = remote_delta("r1", 1, 5)
        assert store.apply_remote(event)
        assert not store.apply_remote(event)
        assert store.get("t", "k").fields["v"] == 5
        assert store.duplicates_rejected == 1

    def test_out_of_order_buffered_then_drained(self):
        store = LSDBStore(origin="r2")
        assert not store.apply_remote(remote_delta("r1", 3, 1))
        assert not store.apply_remote(remote_delta("r1", 2, 1))
        assert store.get("t", "k") is None  # nothing applied yet
        assert store.apply_remote(remote_delta("r1", 1, 1))
        assert store.get("t", "k").fields["v"] == 3
        assert store.version_vector.get("r1") == 3

    def test_interleaved_origins_are_independent(self):
        store = LSDBStore(origin="r3")
        store.apply_remote(remote_delta("r1", 1, 1))
        store.apply_remote(remote_delta("r2", 1, 10))
        assert store.get("t", "k").fields["v"] == 11

    def test_events_from_origin_feed(self):
        store = LSDBStore(origin="r1")
        store.insert("t", "a", {})
        store.insert("t", "b", {})
        feed = store.events_from_origin("r1", after_seq=1)
        assert [event.origin_seq for event in feed] == [2]


class TestReads:
    def test_entities_of_type_excludes_dead_by_default(self):
        store = LSDBStore()
        store.insert("order", "o1", {})
        store.insert("order", "o2", {})
        store.tombstone("order", "o2")
        assert {s.entity_key for s in store.entities_of_type("order")} == {"o1"}
        assert len(store.entities_of_type("order", live_only=False)) == 2

    def test_rollup_from_scratch_matches_cache(self):
        store = LSDBStore()
        store.insert("acct", "a", {"bal": 0})
        store.apply_delta("acct", "a", Delta.add("bal", 42))
        fresh = store.rollup_from_scratch()
        assert fresh[("acct", "a")].fields == store.get("acct", "a").fields

    def test_state_as_of_time_travel(self):
        store = LSDBStore(snapshot_interval=2)
        store.insert("acct", "a", {"bal": 0})
        store.apply_delta("acct", "a", Delta.add("bal", 10))
        store.apply_delta("acct", "a", Delta.add("bal", 10))
        past = store.state_as_of(2)
        assert past[("acct", "a")].fields["bal"] == 10

    def test_history_spans_archive_and_live_log(self):
        store = LSDBStore()
        store.insert("acct", "a", {"bal": 0})
        for _ in range(4):
            store.apply_delta("acct", "a", Delta.add("bal", 1))
        store.compact(keep_recent=1)
        history = store.history("acct", "a")
        # 4 archived raw events + 1 summary + 1 live delta
        assert len(history) == 6

    def test_query_via_index_is_stale_until_refresh(self):
        store = LSDBStore()
        store.register_index("order", "status")
        store.insert("order", "o1", {"status": "open"})
        assert store.query("order", "status", "open") == set()
        store.refresh_indexes()
        assert store.query("order", "status", "open") == {"o1"}

    def test_query_without_index_raises(self):
        store = LSDBStore()
        with pytest.raises(KeyError):
            store.query("order", "status", "open")

    def test_current_state_returns_copies(self):
        store = LSDBStore()
        store.insert("t", "a", {"v": 1})
        snapshot = store.current_state()
        snapshot[("t", "a")].fields["v"] = 99
        assert store.get("t", "a").fields["v"] == 1


class TestCompactionIntegration:
    def test_compact_preserves_observable_state(self):
        store = LSDBStore()
        store.insert("acct", "a", {"bal": 0})
        for _ in range(9):
            store.apply_delta("acct", "a", Delta.add("bal", 1))
        before = store.get("acct", "a").fields["bal"]
        store.compact(keep_recent=2)
        assert store.rollup_from_scratch()[("acct", "a")].fields["bal"] == before
        assert store.live_events < 10
