"""Tests for the bookstore: entry/fulfilment separation and apologies."""

from __future__ import annotations

from repro.apps.bookstore import (
    APOLOGIZED,
    ENTERED,
    FULFILLED,
    REJECTED,
    Bookstore,
    ReplicaSurface,
    StoreSurface,
)
from repro.core.compensation import CompensationManager
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta
from repro.replication.active_active import ActiveActiveGroup
from repro.sim.network import Network
from repro.sim.scheduler import Simulator


def make_local_shop(copies=5):
    store = LSDBStore()
    shop = Bookstore(CompensationManager(store))
    surface = StoreSurface(store)
    shop.stock_book(surface, "moby", copies=copies)
    return store, shop, surface


class TestSingleStore:
    def test_entry_accepts_while_available(self):
        _, shop, surface = make_local_shop(copies=2)
        assert shop.place_order(surface, "o1", "ada", "moby") == ENTERED
        assert shop.place_order(surface, "o2", "bob", "moby") == ENTERED
        assert shop.place_order(surface, "o3", "cyn", "moby") == REJECTED
        assert shop.orders_entered == 2 and shop.orders_rejected == 1

    def test_fulfilment_in_entry_order(self):
        store, shop, surface = make_local_shop(copies=1)
        shop.place_order(surface, "o1", "ada", "moby", at=1.0)
        # Force a second acceptance despite zero availability, modelling a
        # replica that hadn't seen o1 (write directly):
        store.insert("book_order", "o2", {
            "customer": "bob", "book_key": "moby", "quantity": 1,
            "status": ENTERED, "entered_at": 2.0,
        })
        report = shop.fulfill(store, "moby")
        assert report.fulfilled == 1 and report.apologized == 1
        assert store.get("book_order", "o1").fields["status"] == FULFILLED
        assert store.get("book_order", "o2").fields["status"] == APOLOGIZED

    def test_apology_carries_refund_compensation(self):
        store, shop, surface = make_local_shop(copies=0)
        store.insert("book_order", "o1", {
            "customer": "ada", "book_key": "moby", "quantity": 1,
            "status": ENTERED, "entered_at": 1.0,
        })
        shop.fulfill(store, "moby")
        apology = shop.compensation.ledger.all()[0]
        assert apology.reason == "oversold"
        assert "refunded order o1" in apology.compensation

    def test_fulfilment_is_idempotent(self):
        store, shop, surface = make_local_shop(copies=1)
        shop.place_order(surface, "o1", "ada", "moby")
        shop.fulfill(store, "moby")
        second = shop.fulfill(store, "moby")
        assert second.fulfilled == 0
        assert second.already_final == 1
        assert shop.apology_count() == 0

    def test_multi_quantity_orders(self):
        store, shop, surface = make_local_shop(copies=5)
        shop.place_order(surface, "o1", "ada", "moby", quantity=3, at=1.0)
        shop.place_order(surface, "o2", "bob", "moby", quantity=3, at=2.0)
        # 6 > 5 subjective availability catches the second at entry:
        assert store.get("book_order", "o2") is None
        shop.place_order(surface, "o3", "cyn", "moby", quantity=2, at=3.0)
        report = shop.fulfill(store, "moby")
        assert report.fulfilled == 2

    def test_strong_entry_never_apologizes(self):
        store, shop, _ = make_local_shop(copies=2)
        outcomes = [
            shop.place_order_strong(store, f"o{i}", f"c{i}", "moby", at=float(i))
            for i in range(4)
        ]
        assert outcomes.count(ENTERED) == 2 and outcomes.count(REJECTED) == 2
        report = shop.fulfill(store, "moby")
        assert report.apologized == 0
        assert shop.apology_count() == 0


class TestReplicatedOverbooking:
    def test_partitioned_replicas_oversell_then_apologize(self):
        sim = Simulator(seed=1)
        net = Network(sim, latency=2.0)
        group = ActiveActiveGroup(sim, net, ["r1", "r2"], anti_entropy_interval=10.0)
        store = group.replicas["r1"].store
        shop = Bookstore(CompensationManager(store, clock=lambda: sim.now))
        surface_r1 = ReplicaSurface(group, "r1")
        surface_r2 = ReplicaSurface(group, "r2")
        shop.stock_book(surface_r1, "moby", copies=3)
        sim.run(until=10.0)
        net.partition_into({"r1"}, {"r2"})
        # Each side subjectively sees 3 copies and sells 3.
        for index in range(3):
            assert shop.place_order(
                surface_r1, f"a{index}", f"cust-a{index}", "moby", at=sim.now + index
            ) == ENTERED
            assert shop.place_order(
                surface_r2, f"b{index}", f"cust-b{index}", "moby", at=sim.now + index
            ) == ENTERED
        net.heal()
        sim.run(until=200.0)
        assert group.is_converged()
        # Converged availability is negative: 3 - 6.
        assert group.read("r1", "book_stock", "moby").fields["available"] == -3
        report = shop.fulfill(store, "moby")
        assert report.fulfilled == 3
        assert report.apologized == 3
        assert shop.apology_count() == 3

    def test_no_partition_no_apologies(self):
        sim = Simulator(seed=2)
        net = Network(sim, latency=1.0)
        group = ActiveActiveGroup(sim, net, ["r1", "r2"], anti_entropy_interval=5.0)
        store = group.replicas["r1"].store
        shop = Bookstore(CompensationManager(store, clock=lambda: sim.now))
        surface = ReplicaSurface(group, "r1")
        shop.stock_book(surface, "moby", copies=3)
        sim.run(until=10.0)
        entered = 0
        for index in range(6):
            if shop.place_order(
                surface, f"o{index}", f"c{index}", "moby", at=sim.now
            ) == ENTERED:
                entered += 1
            sim.run(until=sim.now + 5.0)
        assert entered == 3  # a single consistent view never over-accepts
        report = shop.fulfill(store, "moby")
        assert report.apologized == 0
