"""Property-based tests for routing: the elasticity contract.

Consistent hashing earns its keep through two *exact* properties —
adding a unit moves keys only **to** it, removing a unit moves keys
only **from** it — plus a statistical one (the moved fraction is
~``1/(N+1)``, nowhere near the ~``N/(N+1)`` a mod-N reshuffle causes).
All three are asserted here over hypothesis-generated memberships,
alongside the total-coverage and cross-instance-stability properties
every router must satisfy for deterministic simulation.
"""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.ring import ConsistentHashRing, RebalancePlanner
from repro.partition.router import DynamicDirectory, HashRouter, RangeRouter

#: A fixed key population large enough for the statistical bounds.
KEYS = [("order", f"k{index}") for index in range(400)]

UNIT_NAMES = st.lists(
    st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=8),
    min_size=2,
    max_size=8,
    unique=True,
)
EXTRA_UNIT = st.text(
    alphabet=string.ascii_uppercase, min_size=1, max_size=8
)  # uppercase: never collides with UNIT_NAMES draws
VNODES = st.sampled_from([1, 8, 64])


class TestRingMonotonicity:
    @given(units=UNIT_NAMES, extra=EXTRA_UNIT, vnodes=VNODES)
    @settings(max_examples=40, deadline=None)
    def test_adding_a_unit_moves_keys_only_to_it(self, units, extra, vnodes):
        ring = ConsistentHashRing(units, vnodes=vnodes)
        grown = ring.with_unit(extra)
        for key in KEYS:
            before, after = ring.unit_for(*key), grown.unit_for(*key)
            if before != after:
                assert after == extra

    @given(units=UNIT_NAMES, vnodes=VNODES)
    @settings(max_examples=40, deadline=None)
    def test_removing_a_unit_moves_only_its_keys(self, units, vnodes):
        ring = ConsistentHashRing(units, vnodes=vnodes)
        victim = ring.units[0]
        shrunk = ring.without_unit(victim)
        for key in KEYS:
            before, after = ring.unit_for(*key), shrunk.unit_for(*key)
            if before != victim:
                assert after == before  # untouched keys stay put
            else:
                assert after != victim

    @given(units=UNIT_NAMES, extra=EXTRA_UNIT)
    @settings(max_examples=25, deadline=None)
    def test_add_relocates_bounded_fraction(self, units, extra):
        """Adding one unit to N relocates ~1/(N+1) of the keys; 2/(N+1)
        is a generous ceiling that still excludes mod-N behaviour
        (which reshuffles ~N/(N+1))."""
        ring = ConsistentHashRing(units, vnodes=64)
        grown = ring.with_unit(extra)
        moved = sum(
            1 for key in KEYS if ring.unit_for(*key) != grown.unit_for(*key)
        )
        assert moved / len(KEYS) <= 2.0 / (len(units) + 1)

    def test_modn_baseline_actually_reshuffles(self):
        """The property the ring fixes: mod-N add-one moves most keys."""
        old = HashRouter(["u1", "u2", "u3", "u4"])
        new = HashRouter(["u1", "u2", "u3", "u4", "u5"])
        moved = sum(
            1 for key in KEYS if old.unit_for(*key) != new.unit_for(*key)
        )
        assert moved / len(KEYS) > 0.5  # ~4/5 in expectation


class TestRingStability:
    @given(units=UNIT_NAMES, vnodes=VNODES)
    @settings(max_examples=40, deadline=None)
    def test_identical_construction_identical_placement(self, units, vnodes):
        ring_a = ConsistentHashRing(units, vnodes=vnodes)
        ring_b = ConsistentHashRing(units, vnodes=vnodes)
        for key in KEYS[:100]:
            assert ring_a.unit_for(*key) == ring_b.unit_for(*key)

    @given(units=UNIT_NAMES, vnodes=VNODES)
    @settings(max_examples=40, deadline=None)
    def test_membership_is_a_set_not_a_sequence(self, units, vnodes):
        ring = ConsistentHashRing(units, vnodes=vnodes)
        reversed_ring = ConsistentHashRing(list(reversed(units)), vnodes=vnodes)
        for key in KEYS[:100]:
            assert ring.unit_for(*key) == reversed_ring.unit_for(*key)

    def test_placement_pinned_across_processes(self):
        """MD5, not salted ``hash``: these placements must never drift
        (a drift would silently reshuffle every persisted cluster)."""
        ring = ConsistentHashRing(["u1", "u2", "u3"], vnodes=8)
        placements = [ring.unit_for("order", f"k{index}") for index in range(6)]
        assert placements == ["u3", "u2", "u2", "u3", "u2", "u1"]


class TestTotalCoverage:
    @given(units=UNIT_NAMES, vnodes=VNODES)
    @settings(max_examples=40, deadline=None)
    def test_ring_always_answers_with_a_member(self, units, vnodes):
        ring = ConsistentHashRing(units, vnodes=vnodes)
        members = set(ring.units)
        for key in KEYS[:100]:
            assert ring.unit_for(*key) in members

    @given(units=UNIT_NAMES)
    @settings(max_examples=25, deadline=None)
    def test_ring_spread_reaches_every_unit(self, units):
        ring = ConsistentHashRing(units, vnodes=64)
        spread = ring.spread(KEYS)
        assert set(spread) == set(units)
        assert all(count > 0 for count in spread.values())

    @given(units=UNIT_NAMES)
    @settings(max_examples=40, deadline=None)
    def test_hash_router_always_answers_with_a_member(self, units):
        router = HashRouter(units)
        members = set(units)
        for key in KEYS[:100]:
            assert router.unit_for(*key) in members

    @given(
        bounds=st.lists(
            st.tuples(
                st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=4),
                st.sampled_from(["u1", "u2", "u3"]),
            ),
            max_size=5,
        ),
        key=st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_range_router_always_answers_with_a_member(self, bounds, key):
        router = RangeRouter(bounds, default_unit="fallback")
        members = {unit for _, unit in bounds} | {"fallback"}
        assert router.unit_for("order", key) in members


class TestDynamicDirectoryProperties:
    @given(units=UNIT_NAMES, vnodes=VNODES)
    @settings(max_examples=25, deadline=None)
    def test_directory_without_overrides_is_its_base(self, units, vnodes):
        ring = ConsistentHashRing(units, vnodes=vnodes)
        directory = DynamicDirectory(ring)
        for key in KEYS[:100]:
            assert directory.unit_for(*key) == ring.unit_for(*key)

    @given(units=UNIT_NAMES)
    @settings(max_examples=25, deadline=None)
    def test_rebase_compacts_exactly_the_agreeing_overrides(self, units):
        """After moving every key to its grown-ring placement and
        rebasing onto the grown ring, no override should survive —
        and routing must be unchanged by the compaction."""
        ring = ConsistentHashRing(units, vnodes=64)
        grown = ring.with_unit("NEW")
        directory = DynamicDirectory(ring)
        plan = RebalancePlanner(directory, grown).plan(KEYS)
        for move in plan.moves:
            directory.move(move.entity_type, move.entity_key, move.target)
        before = {key: directory.unit_for(*key) for key in KEYS}
        dropped = directory.rebase(grown)
        assert dropped == plan.keys_moved
        assert directory.override_count == 0
        assert {key: directory.unit_for(*key) for key in KEYS} == before


class TestPlannerProperties:
    @given(units=UNIT_NAMES, extra=EXTRA_UNIT)
    @settings(max_examples=25, deadline=None)
    def test_plan_is_minimal_and_complete(self, units, extra):
        """The plan contains exactly the keys the two routers disagree
        on — no gratuitous moves, no missed ones."""
        ring = ConsistentHashRing(units, vnodes=64)
        grown = ring.with_unit(extra)
        plan = RebalancePlanner(ring, grown).plan(KEYS)
        planned = {(move.entity_type, move.entity_key) for move in plan.moves}
        disagreeing = {
            key for key in KEYS if ring.unit_for(*key) != grown.unit_for(*key)
        }
        assert planned == disagreeing
        assert plan.keys_total == len(KEYS)
        for move in plan.moves:
            assert move.source == ring.unit_for(move.entity_type, move.entity_key)
            assert move.target == grown.unit_for(move.entity_type, move.entity_key)


class TestRingValidation:
    def test_rejects_empty_membership(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(["u1", "u1"])

    def test_rejects_removing_last_unit(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(["u1"]).without_unit("u1")

    def test_rejects_adding_existing_unit(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(["u1", "u2"]).with_unit("u1")

    def test_rejects_removing_unknown_unit(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(["u1", "u2"]).without_unit("u3")

    def test_rejects_nonpositive_vnodes(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(["u1"], vnodes=0)
