"""Smoke tests: every example script runs to completion.

Examples are the library's living documentation (deliverable (b)); a
refactor that breaks one should fail the suite, not a reader.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load_and_run(path: pathlib.Path, capsys) -> str:
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


def test_at_least_three_examples_exist():
    assert len(EXAMPLE_FILES) >= 3


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_runs_and_prints(path, capsys):
    output = _load_and_run(path, capsys)
    assert len(output.splitlines()) >= 5  # substantive narration


def test_quickstart_shows_staleness_then_consistency(capsys):
    output = _load_and_run(EXAMPLES_DIR / "quickstart.py", capsys)
    assert "staleness window" in output
    assert "repaired" in output
    assert "insert-only history" in output


def test_bookstore_example_apologizes(capsys):
    output = _load_and_run(EXAMPLES_DIR / "bookstore_apologies.py", capsys)
    assert "apologised" in output or "apologized" in output
    assert "we are sorry" in output


def test_scm_example_covers_all_offer_outcomes(capsys):
    output = _load_and_run(EXAMPLES_DIR / "supply_chain_atp.py", capsys)
    for status in ("confirmed", "expired", "cancelled"):
        assert status in output


def test_banking_example_balances(capsys):
    output = _load_and_run(EXAMPLES_DIR / "banking_ledger.py", capsys)
    assert "balance unchanged: 1515" in output


def test_mixed_consistency_example_routes_three_levels(capsys):
    output = _load_and_run(EXAMPLES_DIR / "mixed_consistency.py", capsys)
    for level in ("strong", "bounded_staleness", "extract"):
        assert level in output
