"""Tests for metadata-driven consistency routing."""

from __future__ import annotations

import pytest

from repro.core.consistency import (
    ConsistencyLevel,
    ConsistencyPolicy,
    PolicyRouter,
    SchemeBinding,
)
from repro.errors import ConsistencyPolicyError


def binding(tag):
    return SchemeBinding(
        write=lambda *args, **kwargs: f"{tag}-write",
        read=lambda *args, **kwargs: f"{tag}-read",
        describe=tag,
    )


class TestPolicies:
    def test_policy_requires_rationale(self):
        router = PolicyRouter()
        with pytest.raises(ConsistencyPolicyError):
            router.add_policy(
                ConsistencyPolicy("order", ConsistencyLevel.EVENTUAL, rationale="")
            )

    def test_explicit_policy_wins_over_default(self):
        router = PolicyRouter(default_level=ConsistencyLevel.EVENTUAL)
        router.add_policy(
            ConsistencyPolicy(
                "fulfillment", ConsistencyLevel.STRONG, rationale="no overselling"
            )
        )
        assert router.level_for("fulfillment") is ConsistencyLevel.STRONG
        assert router.level_for("anything-else") is ConsistencyLevel.EVENTUAL

    def test_no_policy_and_no_default_is_error(self):
        router = PolicyRouter()
        with pytest.raises(ConsistencyPolicyError):
            router.level_for("mystery")

    def test_policies_listing_sorted(self):
        router = PolicyRouter()
        router.add_policy(ConsistencyPolicy("z", ConsistencyLevel.STRONG, rationale="r"))
        router.add_policy(ConsistencyPolicy("a", ConsistencyLevel.EVENTUAL, rationale="r"))
        assert [policy.entity_type for policy in router.policies()] == ["a", "z"]


class TestRouting:
    def _router(self):
        router = PolicyRouter(default_level=ConsistencyLevel.EVENTUAL)
        router.bind(ConsistencyLevel.EVENTUAL, binding("eventual"))
        router.bind(ConsistencyLevel.STRONG, binding("strong"))
        router.add_policy(
            ConsistencyPolicy(
                "fulfillment", ConsistencyLevel.STRONG, rationale="no overselling"
            )
        )
        return router

    def test_writes_route_by_policy(self):
        router = self._router()
        assert router.write("order", "o1", {}) == "eventual-write"
        assert router.write("fulfillment", "f1", {}) == "strong-write"

    def test_reads_route_by_policy(self):
        router = self._router()
        assert router.read("order", "o1") == "eventual-read"
        assert router.read("fulfillment", "f1") == "strong-read"

    def test_unbound_level_is_error(self):
        router = PolicyRouter(default_level=ConsistencyLevel.EXTRACT)
        with pytest.raises(ConsistencyPolicyError):
            router.read("analytics", "a")

    def test_routing_counters(self):
        router = self._router()
        router.write("order", "o1", {})
        router.write("order", "o2", {})
        router.read("fulfillment", "f1")
        assert router.routed[ConsistencyLevel.EVENTUAL] == 2
        assert router.routed[ConsistencyLevel.STRONG] == 1

    def test_handlers_receive_entity_type_and_args(self):
        captured = {}

        def write(entity_type, key, fields):
            captured["args"] = (entity_type, key, fields)

        router = PolicyRouter(default_level=ConsistencyLevel.EVENTUAL)
        router.bind(
            ConsistencyLevel.EVENTUAL, SchemeBinding(write=write, read=lambda *a: None)
        )
        router.write("order", "o1", {"total": 5})
        assert captured["args"] == ("order", "o1", {"total": 5})
