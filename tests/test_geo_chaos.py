"""Site-level chaos: whole-datacenter faults and the geo soak.

With a :class:`~repro.sim.topology.SiteTopology` armed, the chaos
engine draws crash and partition targets over *sites* — a crash takes
every node of the site down, a partition cuts the site off from the
rest of the fabric — and the geo soak harness proves the partial
placement rides out a scripted whole-site outage byte-deterministically
without losing an acknowledged write.
"""

from __future__ import annotations

from repro.chaos import ChaosEngine, GeoSoakConfig, report_json, run_geo_soak
from repro.chaos.engine import FaultEvent
from repro.sim.network import Network, Node
from repro.sim.scheduler import Simulator
from repro.sim.topology import SiteTopology, WanLink


def make_sited_network(sim, sites=("dc1", "dc2"), nodes_per_site=2):
    network = Network(sim, latency=1.0)
    topology = SiteTopology(sites, default_link=WanLink(latency=10.0))
    network.attach_topology(topology)
    nodes = []
    for site in sites:
        for index in range(nodes_per_site):
            node = Node(f"{site}/n{index}")
            network.register(node)
            topology.assign(node.node_id, site)
            nodes.append(node)
    return network, topology, nodes


class TestSiteFaultDrawing:
    def test_crash_and_partition_details_are_sites(self):
        sim = Simulator(seed=5)
        network, topology, nodes = make_sited_network(sim)
        engine = ChaosEngine(
            sim, network, nodes, profile="heavy", topology=topology
        )
        plan = engine.plan(4000.0)
        targeted = [
            event for event in plan if event.kind in ("crash", "partition")
        ]
        assert targeted  # heavy profile draws both kinds over this horizon
        for event in targeted:
            assert event.detail.startswith("site:")
            assert event.detail[5:] in topology.sites

    def test_site_crash_downs_every_node_of_the_site(self):
        sim = Simulator(seed=5)
        network, topology, nodes = make_sited_network(sim)
        engine = ChaosEngine(sim, network, nodes, topology=topology)
        event = FaultEvent(
            kind="crash", at=1.0, duration=5.0, detail="site:dc1"
        )
        engine._apply(event)
        for node in nodes:
            assert node.crashed == (topology.site_of(node.node_id) == "dc1")
        engine._revert(event)
        assert not any(node.crashed for node in nodes)

    def test_site_partition_cuts_the_site_off(self):
        sim = Simulator(seed=5)
        network, topology, nodes = make_sited_network(sim)
        engine = ChaosEngine(sim, network, nodes, topology=topology)
        event = FaultEvent(
            kind="partition", at=0.0, duration=5.0, detail="site:dc1"
        )
        engine._apply(event)  # schedules the window [now, now+duration)
        sim.run(until=1.0)
        inside, outside = nodes[0], nodes[-1]
        assert not network.send(inside.node_id, outside.node_id, {"x": 1})
        assert network.send(inside.node_id, nodes[1].node_id, {"x": 1})
        sim.run(until=6.0)  # the window heals itself
        assert network.send(inside.node_id, outside.node_id, {"x": 2})

    def test_without_topology_details_stay_node_level(self):
        sim = Simulator(seed=5)
        network, topology, nodes = make_sited_network(sim)
        engine = ChaosEngine(sim, network, nodes, profile="heavy")
        for event in engine.plan(4000.0):
            assert not event.detail.startswith("site:")


class TestGeoSoak:
    CONFIG = GeoSoakConfig(seed=42, duration=800.0, quiesce_grace=400.0)

    def test_soak_survives_a_whole_site_outage(self):
        report = run_geo_soak(self.CONFIG)
        assert report["ok"]
        assert report["invariants"]["ok"]
        names = {
            result["name"]: result["passed"]
            for result in report["invariants"]["results"]
        }
        assert names["convergence"]
        assert names["no_lost_acked_writes"]
        assert names["monotonic_reads"]
        assert names["bounded_staleness"]
        # The scripted outage took down a whole site and the run still
        # injected the full randomized fault mix on top.
        assert report["outage"]["site"] in self.CONFIG.site_names()
        assert len(report["fault_kinds"]) >= 4

    def test_soak_reports_wan_link_traffic(self):
        report = run_geo_soak(self.CONFIG)
        links = report["network"]["links"]
        assert links  # cross-site shipping was booked per directed link
        for label, row in links.items():
            src, dst = label.split("->")
            assert src != dst
            assert row["sent"] >= row["delivered"]

    def test_soak_is_byte_deterministic(self):
        first = report_json(run_geo_soak(self.CONFIG))
        second = report_json(run_geo_soak(self.CONFIG))
        assert first == second

    def test_different_seeds_differ(self):
        base = run_geo_soak(self.CONFIG)
        other = run_geo_soak(
            GeoSoakConfig(seed=43, duration=800.0, quiesce_grace=400.0)
        )
        assert report_json(base) != report_json(other)
        assert other["ok"]
