"""Tests for asynchronously maintained secondary indexes."""

from __future__ import annotations

from repro.lsdb.events import EventKind, LogEvent
from repro.lsdb.log import AppendOnlyLog
from repro.lsdb.index import SecondaryIndex
from repro.lsdb.rollup import Rollup


def insert(key, fields, etype="order"):
    return LogEvent(
        lsn=0, timestamp=0.0, entity_type=etype, entity_key=key,
        kind=EventKind.INSERT, payload=fields,
    )


def set_fields(key, fields, etype="order", ts=1.0):
    return LogEvent(
        lsn=0, timestamp=ts, entity_type=etype, entity_key=key,
        kind=EventKind.SET_FIELDS, payload=fields,
    )


def tombstone(key, etype="order"):
    return LogEvent(
        lsn=0, timestamp=2.0, entity_type=etype, entity_key=key,
        kind=EventKind.TOMBSTONE,
    )


def make_index():
    log = AppendOnlyLog()
    index = SecondaryIndex(log, Rollup(), "order", "status")
    return log, index


class TestStaleness:
    def test_index_is_stale_until_refreshed(self):
        log, index = make_index()
        log.append(insert("o1", {"status": "open"}))
        assert index.lookup("open") == set()  # async: not applied yet
        assert index.lag == 1
        index.refresh()
        assert index.lookup("open") == {"o1"}
        assert index.lag == 0

    def test_partial_refresh_to_fixed_lsn(self):
        log, index = make_index()
        log.append(insert("o1", {"status": "open"}))
        log.append(insert("o2", {"status": "open"}))
        index.refresh(up_to_lsn=1)
        assert index.lookup("open") == {"o1"}
        assert index.lag == 1


class TestMaintenance:
    def test_value_change_moves_between_buckets(self):
        log, index = make_index()
        log.append(insert("o1", {"status": "open"}))
        log.append(set_fields("o1", {"status": "closed"}))
        index.refresh()
        assert index.lookup("open") == set()
        assert index.lookup("closed") == {"o1"}

    def test_tombstoned_entity_leaves_index(self):
        log, index = make_index()
        log.append(insert("o1", {"status": "open"}))
        log.append(tombstone("o1"))
        index.refresh()
        assert index.lookup("open") == set()

    def test_other_types_ignored(self):
        log, index = make_index()
        log.append(insert("c1", {"status": "open"}, etype="customer"))
        index.refresh()
        assert index.lookup("open") == set()
        assert index.lag == 0  # still consumed the LSN

    def test_multiple_entities_same_value(self):
        log, index = make_index()
        log.append(insert("o1", {"status": "open"}))
        log.append(insert("o2", {"status": "open"}))
        index.refresh()
        assert index.lookup("open") == {"o1", "o2"}

    def test_refresh_is_incremental(self):
        log, index = make_index()
        log.append(insert("o1", {"status": "open"}))
        assert index.refresh() == 1
        assert index.refresh() == 0
        log.append(insert("o2", {"status": "open"}))
        assert index.refresh() == 1

    def test_lookup_returns_copy(self):
        log, index = make_index()
        log.append(insert("o1", {"status": "open"}))
        index.refresh()
        result = index.lookup("open")
        result.add("bogus")
        assert index.lookup("open") == {"o1"}
