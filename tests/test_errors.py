"""Tests for the exception hierarchy's catchability contract."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        leaf_classes = [
            errors.SimulationError,
            errors.NetworkError,
            errors.TransactionAborted,
            errors.DeadlockDetected,
            errors.ValidationFailed,
            errors.LockUnavailable,
            errors.UnknownEntityType,
            errors.EntityNotFound,
            errors.SchemaViolation,
            errors.SoupsViolation,
            errors.DuplicateMessage,
            errors.QuorumUnavailable,
            errors.NotMaster,
            errors.ConsistencyPolicyError,
        ]
        for leaf in leaf_classes:
            assert issubclass(leaf, errors.ReproError)

    def test_concurrency_failures_are_transaction_aborted(self):
        assert issubclass(errors.DeadlockDetected, errors.TransactionAborted)
        assert issubclass(errors.ValidationFailed, errors.TransactionAborted)

    def test_soups_violation_is_a_process_error(self):
        assert issubclass(errors.SoupsViolation, errors.ProcessError)

    def test_replication_failures_share_a_base(self):
        assert issubclass(errors.QuorumUnavailable, errors.ReplicationError)
        assert issubclass(errors.NotMaster, errors.ReplicationError)

    def test_aborted_carries_reason(self):
        exc = errors.TransactionAborted("deadlock victim")
        assert exc.reason == "deadlock victim"
        assert "deadlock victim" in str(exc)

    def test_deadlock_default_reason(self):
        assert errors.DeadlockDetected().reason == "deadlock victim"

    def test_single_except_clause_catches_library_failures(self):
        for make in (
            lambda: errors.EntityNotFound("x"),
            lambda: errors.ValidationFailed(),
            lambda: errors.QuorumUnavailable("no majority"),
        ):
            with pytest.raises(errors.ReproError):
                raise make()
