"""Tests for constraints as managed exceptions."""

from __future__ import annotations

import pytest

from repro.core.constraints import (
    ConstraintManager,
    ConstraintMode,
    NonNegativeConstraint,
    PredicateConstraint,
    ReferentialConstraint,
)
from repro.core.ops import PendingOp, preview_state
from repro.lsdb.events import EventKind
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta
from repro.queues.reliable import ReliableQueue
from repro.sim.scheduler import Simulator


def insert_op(etype, key, fields):
    return PendingOp(EventKind.INSERT, etype, key, fields)


def delta_op(etype, key, delta):
    return PendingOp(EventKind.DELTA, etype, key, delta.to_payload())


class TestPreviewState:
    def test_preview_from_nothing(self):
        state = preview_state(None, [insert_op("t", "k", {"a": 1})])
        assert state.fields == {"a": 1}

    def test_preview_overlays_base(self):
        store = LSDBStore()
        store.insert("t", "k", {"a": 1, "b": 2})
        base = store.get("t", "k")
        state = preview_state(base, [delta_op("t", "k", Delta.add("a", 10))])
        assert state.fields == {"a": 11, "b": 2}
        assert base.fields["a"] == 1  # base untouched

    def test_preview_tombstone(self):
        state = preview_state(
            None,
            [insert_op("t", "k", {}), PendingOp(EventKind.TOMBSTONE, "t", "k")],
        )
        assert state.deleted


class TestReferential:
    def _manager(self):
        store = LSDBStore()
        manager = ConstraintManager(store)
        manager.add(ReferentialConstraint("ref", "lead", "customer_id", "customer"))
        return store, manager

    def test_dangling_reference_recorded_not_blocked(self):
        _, manager = self._manager()
        outcome = manager.check_ops([insert_op("lead", "l1", {"customer_id": "c9"})])
        assert outcome.ok
        assert len(outcome.violations) == 1
        assert "missing customer/c9" in outcome.violations[0].message

    def test_resolved_reference_passes(self):
        store, manager = self._manager()
        store.insert("customer", "c1", {})
        outcome = manager.check_ops([insert_op("lead", "l1", {"customer_id": "c1"})])
        assert outcome.violations == []

    def test_reference_to_entity_in_same_transaction_passes(self):
        _, manager = self._manager()
        outcome = manager.check_ops([
            insert_op("customer", "c1", {}),
            insert_op("lead", "l1", {"customer_id": "c1"}),
        ])
        assert outcome.violations == []

    def test_null_reference_is_fine(self):
        _, manager = self._manager()
        outcome = manager.check_ops([insert_op("lead", "l1", {"customer_id": None})])
        assert outcome.violations == []

    def test_reference_to_tombstoned_parent_violates(self):
        store, manager = self._manager()
        store.insert("customer", "c1", {})
        store.tombstone("customer", "c1")
        outcome = manager.check_ops([insert_op("lead", "l1", {"customer_id": "c1"})])
        assert len(outcome.violations) == 1

    def test_repair_when_parent_appears(self):
        store, manager = self._manager()
        manager.check_ops([insert_op("lead", "l1", {"customer_id": "c9"})])
        store.insert("lead", "l1", {"customer_id": "c9"})  # make the preview real
        assert manager.attempt_repairs() == 0  # parent still missing
        store.insert("customer", "c9", {})
        assert manager.attempt_repairs() == 1
        assert manager.open_violations() == []

    def test_repair_when_dangling_child_deleted(self):
        store, manager = self._manager()
        manager.check_ops([insert_op("lead", "l1", {"customer_id": "c9"})])
        store.insert("lead", "l1", {"customer_id": "c9"})
        store.tombstone("lead", "l1")
        assert manager.attempt_repairs() == 1


class TestNonNegative:
    def test_negative_value_recorded_with_context(self):
        store = LSDBStore()
        manager = ConstraintManager(store)
        manager.add(NonNegativeConstraint("floor", "stock", "qty"))
        store.insert("stock", "s", {"qty": 2})
        outcome = manager.check_ops([delta_op("stock", "s", Delta.add("qty", -5))])
        assert outcome.ok
        assert outcome.violations[0].context == {"observed": -3, "floor": 0.0}

    def test_repair_when_value_recovers(self):
        store = LSDBStore()
        manager = ConstraintManager(store)
        manager.add(NonNegativeConstraint("floor", "stock", "qty"))
        store.insert("stock", "s", {"qty": -3})
        manager.check_ops([delta_op("stock", "s", Delta.add("qty", 0))])
        store.apply_delta("stock", "s", Delta.add("qty", 10))
        assert manager.attempt_repairs() == 1

    def test_custom_floor(self):
        store = LSDBStore()
        manager = ConstraintManager(store)
        manager.add(NonNegativeConstraint("floor", "stock", "qty", floor=10))
        outcome = manager.check_ops([insert_op("stock", "s", {"qty": 5})])
        assert len(outcome.violations) == 1


class TestPreventMode:
    def test_blocking_violation_blocks_and_records_nothing(self):
        store = LSDBStore()
        manager = ConstraintManager(store)
        manager.add(
            NonNegativeConstraint("floor", "account", "balance"),
            mode=ConstraintMode.PREVENT,
        )
        outcome = manager.check_ops([insert_op("account", "a", {"balance": -1})])
        assert outcome.blocking
        assert manager.ledger == []
        assert manager.blocked_transactions == 1

    def test_mixed_modes_record_managed_and_block(self):
        store = LSDBStore()
        manager = ConstraintManager(store)
        manager.add(
            NonNegativeConstraint("hard", "account", "balance"),
            mode=ConstraintMode.PREVENT,
        )
        manager.add(ReferentialConstraint("soft", "account", "owner_id", "customer"))
        outcome = manager.check_ops(
            [insert_op("account", "a", {"balance": -1, "owner_id": "c9"})]
        )
        assert outcome.blocking
        assert len(manager.ledger) == 1  # the managed one still recorded


class TestPredicateConstraint:
    def test_predicate_violation_and_repair(self):
        store = LSDBStore()
        manager = ConstraintManager(store)
        manager.add(
            PredicateConstraint(
                "order-has-items",
                "order",
                predicate=lambda state: state.get("item_count", 0) > 0,
            )
        )
        manager.check_ops([insert_op("order", "o1", {"item_count": 0})])
        store.insert("order", "o1", {"item_count": 0})
        assert len(manager.open_violations()) == 1
        store.set_fields("order", "o1", {"item_count": 3})
        assert manager.attempt_repairs() == 1


class TestLedgerAndEvents:
    def test_violation_events_published_to_queue(self):
        sim = Simulator()
        store = LSDBStore()
        queue = ReliableQueue(sim)
        topics = []
        queue.subscribe("constraint.violated", lambda m: topics.append(m.payload) or True)
        queue.subscribe("constraint.repaired", lambda m: topics.append("repaired") or True)
        manager = ConstraintManager(store, queue)
        manager.add(ReferentialConstraint("ref", "lead", "customer_id", "customer"))
        manager.check_ops([insert_op("lead", "l1", {"customer_id": "c9"})])
        store.insert("lead", "l1", {"customer_id": "c9"})
        store.insert("customer", "c9", {})
        manager.attempt_repairs()
        sim.run()
        assert topics[0]["constraint"] == "ref"
        assert "repaired" in topics

    def test_time_to_repair_measured(self):
        times = iter([1.0, 5.0])
        store = LSDBStore()
        manager = ConstraintManager(store, clock=lambda: next(times))
        manager.add(ReferentialConstraint("ref", "lead", "customer_id", "customer"))
        manager.check_ops([insert_op("lead", "l1", {"customer_id": "c9"})])
        store.insert("lead", "l1", {"customer_id": "c9"})
        store.insert("customer", "c9", {})
        manager.attempt_repairs()
        assert manager.ledger[0].time_to_repair == 4.0

    def test_violations_for_entity(self):
        store = LSDBStore()
        manager = ConstraintManager(store)
        manager.add(ReferentialConstraint("ref", "lead", "customer_id", "customer"))
        manager.check_ops([insert_op("lead", "l1", {"customer_id": "c9"})])
        assert len(manager.violations_for("lead", "l1")) == 1
        assert manager.violations_for("lead", "other") == []

    def test_repair_rate(self):
        store = LSDBStore()
        manager = ConstraintManager(store)
        assert manager.repair_rate == 1.0  # vacuous
        manager.add(ReferentialConstraint("ref", "lead", "customer_id", "customer"))
        manager.check_ops([insert_op("lead", "l1", {"customer_id": "c9"})])
        assert manager.repair_rate == 0.0
