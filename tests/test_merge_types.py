"""Example-based tests for convergent types (counters, registers, sets,
deltas).  The algebraic laws are covered separately with hypothesis in
``test_merge_properties.py``; these tests pin concrete semantics."""

from __future__ import annotations

import pytest

from repro.merge.base import merge_all
from repro.merge.clock import VectorClock
from repro.merge.counters import GCounter, PNCounter
from repro.merge.deltas import Delta, apply_delta, compose, numeric_only
from repro.merge.registers import LWWRegister, MVRegister
from repro.merge.sets import GSet, ORSet, TwoPhaseSet


class TestGCounter:
    def test_increment_accumulates_per_replica(self):
        counter = GCounter().increment("r1", 2).increment("r1", 3).increment("r2", 1)
        assert counter.value == 6
        assert counter.contribution("r1") == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            GCounter().increment("r1", -1)

    def test_merge_takes_max_not_sum(self):
        a = GCounter().increment("r1", 5)
        stale_copy_of_a = GCounter().increment("r1", 3)
        assert a.merge(stale_copy_of_a).value == 5

    def test_merge_of_disjoint_replicas_sums(self):
        a = GCounter().increment("r1", 5)
        b = GCounter().increment("r2", 7)
        assert a.merge(b).value == 12


class TestPNCounter:
    def test_value_is_increments_minus_decrements(self):
        counter = PNCounter().increment("r1", 10).decrement("r2", 4)
        assert counter.value == 6

    def test_negative_arguments_swap_direction(self):
        assert PNCounter().increment("r1", -3).value == -3
        assert PNCounter().decrement("r1", -3).value == 3

    def test_concurrent_banking_ops_compose(self):
        base = PNCounter().increment("bank", 100)
        at_branch = base.decrement("branch", 30)
        at_web = base.decrement("web", 20)
        assert at_branch.merge(at_web).value == 50

    def test_merge_all_helper(self):
        states = [
            PNCounter().increment("r1", 1),
            PNCounter().increment("r2", 2),
            PNCounter().decrement("r3", 3),
        ]
        assert merge_all(states).value == 0

    def test_merge_all_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_all([])


class TestLWWRegister:
    def test_later_timestamp_wins(self):
        a = LWWRegister("old", timestamp=1, replica_id="r1")
        b = a.assign("new", timestamp=2, replica_id="r2")
        assert a.merge(b).value == "new"

    def test_ties_break_by_replica_id_deterministically(self):
        a = LWWRegister("from-r1", timestamp=5, replica_id="r1")
        b = LWWRegister("from-r2", timestamp=5, replica_id="r2")
        assert a.merge(b).value == "from-r2"
        assert b.merge(a).value == "from-r2"


class TestMVRegister:
    def test_causal_overwrite_leaves_one_value(self):
        clock1 = VectorClock().increment("r1")
        clock2 = clock1.increment("r1")
        register = MVRegister().assign("v1", clock1).assign("v2", clock2)
        assert register.value == {"v2"}
        assert not register.is_conflicted

    def test_concurrent_writes_become_siblings(self):
        a = MVRegister().assign("from-r1", VectorClock().increment("r1"))
        b = MVRegister().assign("from-r2", VectorClock().increment("r2"))
        merged = a.merge(b)
        assert merged.value == {"from-r1", "from-r2"}
        assert merged.is_conflicted

    def test_dominating_write_clears_siblings(self):
        clock_a = VectorClock().increment("r1")
        clock_b = VectorClock().increment("r2")
        merged = (
            MVRegister().assign("a", clock_a).merge(MVRegister().assign("b", clock_b))
        )
        resolution_clock = clock_a.merge(clock_b).increment("r1")
        resolved = merged.assign("resolved", resolution_clock)
        assert resolved.value == {"resolved"}


class TestSets:
    def test_gset_union(self):
        a = GSet(["x"]).add("y")
        b = GSet(["z"])
        assert a.merge(b).value == frozenset({"x", "y", "z"})

    def test_two_phase_remove_is_permanent(self):
        items = TwoPhaseSet().add("doc-1").remove("doc-1").add("doc-1")
        assert "doc-1" not in items
        assert "doc-1" in items.tombstones

    def test_two_phase_merge_unions_both_sides(self):
        a = TwoPhaseSet().add("x")
        b = TwoPhaseSet().add("y").remove("x")
        merged = a.merge(b)
        assert merged.value == frozenset({"y"})

    def test_orset_readd_after_remove_works(self):
        items = ORSet().add("order", "r1:1").remove("order").add("order", "r1:2")
        assert "order" in items

    def test_orset_concurrent_add_survives_remove(self):
        base = ORSet().add("order", "r1:1")
        removed = base.remove("order")
        concurrent_add = base.add("order", "r2:1")
        merged = removed.merge(concurrent_add)
        assert "order" in merged  # add-wins

    def test_orset_remove_only_observed_tags(self):
        a = ORSet().add("x", "r1:1")
        b = ORSet().add("x", "r2:1")
        removed_at_a = a.remove("x")  # never saw r2:1
        assert "x" in removed_at_a.merge(b)


class TestDeltas:
    def test_numeric_application(self):
        state = apply_delta({"qty": 10}, Delta.add("qty", -4))
        assert state == {"qty": 6}

    def test_missing_field_defaults_to_zero(self):
        assert apply_delta({}, Delta.add("qty", 5)) == {"qty": 5}

    def test_set_operations(self):
        delta = Delta.insert("tags", "hot").invert()
        state = apply_delta({"tags": frozenset({"hot", "new"})}, delta)
        assert state["tags"] == frozenset({"new"})

    def test_input_state_is_not_mutated(self):
        original = {"qty": 1}
        apply_delta(original, Delta.add("qty", 5))
        assert original == {"qty": 1}

    def test_compose_sums_numeric_fields(self):
        combined = compose([Delta.add("x", 2), Delta.add("x", 3), Delta.add("y", 1)])
        assert combined.numeric == {"x": 5, "y": 1}

    def test_compose_drops_zero_net_fields(self):
        combined = compose([Delta.add("x", 2), Delta.add("x", -2)])
        assert combined.is_empty()

    def test_invert_compensates(self):
        delta = Delta(numeric={"x": 3, "y": -2})
        restored = apply_delta(apply_delta({"x": 1, "y": 1}, delta), delta.invert())
        assert restored == {"x": 1, "y": 1}

    def test_payload_roundtrip(self):
        delta = Delta(
            numeric={"x": 1.5},
            set_adds={"tags": frozenset({"a"})},
            set_removes={"tags": frozenset({"b"})},
        )
        assert Delta.from_payload(delta.to_payload()) == delta

    def test_numeric_only_detection(self):
        assert numeric_only(Delta.add("x", 1))
        assert not numeric_only(Delta.insert("tags", "a"))

    def test_fields_lists_all_touched(self):
        delta = Delta(numeric={"a": 1}, set_adds={"b": frozenset({"x"})})
        assert delta.fields() == {"a", "b"}
