"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.constraints import ConstraintManager
from repro.core.transaction import TransactionManager
from repro.lsdb.store import LSDBStore
from repro.queues.reliable import ReliableQueue
from repro.sim.network import Network
from repro.sim.scheduler import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=42)


@pytest.fixture
def network(sim: Simulator) -> Network:
    """A network with constant 1.0 latency on the shared simulator."""
    return Network(sim, latency=1.0)


@pytest.fixture
def store(sim: Simulator) -> LSDBStore:
    """A store clocked by the shared simulator."""
    return LSDBStore(name="test-store", origin="test", clock=lambda: sim.now)


@pytest.fixture
def queue(sim: Simulator) -> ReliableQueue:
    """A reliable queue on the shared simulator."""
    return ReliableQueue(sim)


@pytest.fixture
def tx_manager(sim: Simulator, store: LSDBStore, queue: ReliableQueue) -> TransactionManager:
    """A transaction manager wired to sim + store + queue."""
    return TransactionManager(store, sim=sim, queue=queue)


@pytest.fixture
def constrained_tx_manager(
    sim: Simulator, store: LSDBStore, queue: ReliableQueue
) -> TransactionManager:
    """A transaction manager with a constraint manager attached."""
    constraints = ConstraintManager(store, queue, clock=lambda: sim.now)
    return TransactionManager(store, sim=sim, queue=queue, constraints=constraints)
