"""Tests for the two-phase commit baseline."""

from __future__ import annotations

from repro.core.policy import TimeoutPolicy
from repro.locks.two_pc import TwoPCCoordinator, TwoPCParticipant
from repro.sim.network import Network
from repro.sim.scheduler import Simulator


def make_world(latency=5.0, participant_count=2, vote=None, vote_timeout=100.0):
    sim = Simulator()
    net = Network(sim, latency=latency)
    coordinator = net.register(
        TwoPCCoordinator(
            "coord", timeout=TimeoutPolicy(per_attempt=vote_timeout)
        )
    )
    participants = []
    for index in range(participant_count):
        can_commit = vote[index] if vote else (lambda _tx: True)
        participants.append(
            net.register(TwoPCParticipant(f"p{index}", can_commit=can_commit))
        )
    return sim, net, coordinator, participants


class TestHappyPath:
    def test_unanimous_yes_commits(self):
        sim, _, coordinator, participants = make_world()
        results = []
        coordinator.begin("tx1", ["p0", "p1"], on_complete=results.append)
        sim.run()
        assert results[0].decision == "commit"
        assert all(p.committed == ["tx1"] for p in participants)

    def test_commit_takes_two_round_trips(self):
        sim, _, coordinator, _ = make_world(latency=5.0)
        results = []
        coordinator.begin("tx1", ["p0", "p1"], on_complete=results.append)
        sim.run()
        # prepare(5) + vote(5) + commit(5) + ack(5) = 20
        assert results[0].total_latency == 20.0
        assert results[0].decision_latency == 10.0

    def test_on_commit_callbacks_applied(self):
        sim, net, coordinator, _ = make_world(participant_count=1)
        applied = []
        participant = net.nodes["p0"]
        participant.on_commit = applied.append
        coordinator.begin("tx1", ["p0"])
        sim.run()
        assert applied == ["tx1"]

    def test_multiple_sequential_transactions(self):
        sim, _, coordinator, _ = make_world()
        coordinator.begin("tx1", ["p0", "p1"])
        sim.run()
        coordinator.begin("tx2", ["p0", "p1"])
        sim.run()
        assert [r.tx_id for r in coordinator.results] == ["tx1", "tx2"]


class TestAbortPaths:
    def test_single_no_vote_aborts_everyone(self):
        sim, _, coordinator, participants = make_world(
            vote=[lambda _tx: True, lambda _tx: False]
        )
        results = []
        coordinator.begin("tx1", ["p0", "p1"], on_complete=results.append)
        sim.run()
        assert results[0].decision == "abort"
        assert all("tx1" in p.aborted for p in participants)

    def test_on_abort_callbacks_run(self):
        sim, net, coordinator, _ = make_world(
            participant_count=1, vote=[lambda _tx: False]
        )
        rolled_back = []
        net.nodes["p0"].on_abort = rolled_back.append
        coordinator.begin("tx1", ["p0"])
        sim.run()
        assert rolled_back == ["tx1"]

    def test_vote_timeout_aborts(self):
        sim, net, coordinator, _ = make_world(vote_timeout=30.0)
        net.nodes["p1"].crash()  # never votes
        coordinator.begin("tx1", ["p0", "p1"])
        sim.run(until=200.0)
        # Decision was abort; p0 heard it, p1 never acked (crashed), so
        # the round stays in flight (blocking behaviour is real).
        assert "tx1" in net.nodes["p0"].aborted
        assert coordinator.in_flight == 1


class TestBlocking:
    def test_prepared_participant_blocks_under_partition(self):
        sim, net, coordinator, participants = make_world(latency=5.0)
        coordinator.begin("tx1", ["p0", "p1"])
        # Partition right after votes leave: participants are in doubt.
        sim.run(until=10.0)
        net.partition_into({"coord"}, {"p0", "p1"})
        sim.run(until=500.0)
        assert all("tx1" in p.in_doubt for p in participants)

    def test_blocked_time_accounted_on_late_decision(self):
        sim, net, coordinator, participants = make_world(latency=5.0)
        coordinator.begin("tx1", ["p0", "p1"])
        sim.run()
        assert all(p.blocked_time_total == 10.0 for p in participants)
