"""Tests for logical locks, 2PL, and OCC."""

from __future__ import annotations

import pytest

from repro.errors import DeadlockDetected, ValidationFailed
from repro.locks.logical import LockMode, LogicalLockManager
from repro.locks.optimistic import OCCValidator
from repro.locks.two_phase import LockManager2PL


class TestLogicalLocks:
    def test_exclusive_blocks_others(self):
        locks = LogicalLockManager()
        assert locks.acquire("order/o1", "alice")
        assert not locks.acquire("order/o1", "bob")

    def test_reentrant_for_owner(self):
        locks = LogicalLockManager()
        assert locks.acquire("order/o1", "alice")
        assert locks.acquire("order/o1", "alice")

    def test_shared_locks_coexist(self):
        locks = LogicalLockManager()
        assert locks.acquire("ref", "a", LockMode.SHARED)
        assert locks.acquire("ref", "b", LockMode.SHARED)
        assert not locks.acquire("ref", "c", LockMode.EXCLUSIVE)

    def test_shared_to_exclusive_upgrade_when_sole_holder(self):
        locks = LogicalLockManager()
        locks.acquire("ref", "a", LockMode.SHARED)
        assert locks.acquire("ref", "a", LockMode.EXCLUSIVE)
        assert not locks.acquire("ref", "b", LockMode.SHARED)

    def test_upgrade_denied_with_other_sharers(self):
        locks = LogicalLockManager()
        locks.acquire("ref", "a", LockMode.SHARED)
        locks.acquire("ref", "b", LockMode.SHARED)
        assert not locks.acquire("ref", "a", LockMode.EXCLUSIVE)

    def test_release_all_frees_everything(self):
        locks = LogicalLockManager()
        locks.acquire("x", "alice")
        locks.acquire("y", "alice")
        assert locks.release_all("alice") == 2
        assert locks.acquire("x", "bob")
        assert locks.held_count == 1

    def test_release_unheld_is_false(self):
        locks = LogicalLockManager()
        assert not locks.release("x", "nobody")

    def test_holder_inspection(self):
        locks = LogicalLockManager()
        locks.acquire("x", "alice")
        assert locks.holder_of("x") == {"alice"}
        assert locks.holder_of("unlocked") is None
        assert locks.is_locked("x")


class TestTwoPhaseLocking:
    def test_immediate_grant_when_free(self):
        manager = LockManager2PL()
        assert manager.acquire("t1", "x")
        assert manager.locks_held("t1") == {"x"}

    def test_conflicting_request_queues_and_fires_on_release(self):
        manager = LockManager2PL()
        manager.acquire("t1", "x")
        granted = []
        assert not manager.acquire("t2", "x", on_grant=lambda: granted.append("t2"))
        assert manager.waiting_count("x") == 1
        manager.release_all("t1")
        assert granted == ["t2"]
        assert manager.holders("x") == {"t2"}

    def test_fifo_grant_order(self):
        manager = LockManager2PL()
        manager.acquire("t1", "x")
        order = []
        manager.acquire("t2", "x", on_grant=lambda: order.append("t2"))
        manager.acquire("t3", "x", on_grant=lambda: order.append("t3"))
        manager.release_all("t1")
        assert order == ["t2"]  # exclusive: only head granted
        manager.release_all("t2")
        assert order == ["t2", "t3"]

    def test_shared_lock_coexistence(self):
        manager = LockManager2PL()
        assert manager.acquire("t1", "x", LockMode.SHARED)
        assert manager.acquire("t2", "x", LockMode.SHARED)
        assert manager.holders("x") == {"t1", "t2"}

    def test_shared_waiters_granted_together(self):
        manager = LockManager2PL()
        manager.acquire("t1", "x", LockMode.EXCLUSIVE)
        granted = []
        manager.acquire("t2", "x", LockMode.SHARED, on_grant=lambda: granted.append("t2"))
        manager.acquire("t3", "x", LockMode.SHARED, on_grant=lambda: granted.append("t3"))
        manager.release_all("t1")
        assert granted == ["t2", "t3"]

    def test_deadlock_detected_on_cycle(self):
        manager = LockManager2PL()
        manager.acquire("t1", "x")
        manager.acquire("t2", "y")
        manager.acquire("t1", "y", on_grant=lambda: None)
        with pytest.raises(DeadlockDetected):
            manager.acquire("t2", "x", on_grant=lambda: None)
        assert manager.deadlocks == 1

    def test_three_way_deadlock_detected(self):
        manager = LockManager2PL()
        for tx, resource in (("t1", "a"), ("t2", "b"), ("t3", "c")):
            manager.acquire(tx, resource)
        manager.acquire("t1", "b", on_grant=lambda: None)
        manager.acquire("t2", "c", on_grant=lambda: None)
        with pytest.raises(DeadlockDetected):
            manager.acquire("t3", "a", on_grant=lambda: None)

    def test_victim_release_unblocks_others(self):
        manager = LockManager2PL()
        manager.acquire("t1", "x")
        manager.acquire("t2", "y")
        granted = []
        manager.acquire("t1", "y", on_grant=lambda: granted.append("t1:y"))
        with pytest.raises(DeadlockDetected):
            manager.acquire("t2", "x", on_grant=lambda: None)
        manager.release_all("t2")  # victim rolls back
        assert granted == ["t1:y"]

    def test_queued_acquire_requires_callback(self):
        manager = LockManager2PL()
        manager.acquire("t1", "x")
        with pytest.raises(ValueError):
            manager.acquire("t2", "x")

    def test_reentrant_acquire(self):
        manager = LockManager2PL()
        assert manager.acquire("t1", "x")
        assert manager.acquire("t1", "x")

    def test_no_queue_jumping_on_free_lock(self):
        manager = LockManager2PL()
        manager.acquire("t1", "x")
        manager.acquire("t2", "x", on_grant=lambda: None)
        manager.release_all("t1")
        # t2 now holds; a newcomer must queue even though it sees waiters
        assert manager.holders("x") == {"t2"}


class TestOCC:
    def test_non_conflicting_commits_succeed(self):
        occ = OCCValidator()
        occ.begin("t1")
        occ.begin("t2")
        occ.commit("t1", read_set=["x"], write_set=["x"])
        occ.commit("t2", read_set=["y"], write_set=["y"])
        assert occ.commits == 2 and occ.aborts == 0

    def test_read_write_conflict_aborts(self):
        occ = OCCValidator()
        occ.begin("t1")
        occ.begin("t2")
        occ.commit("t1", read_set=[], write_set=["x"])
        with pytest.raises(ValidationFailed):
            occ.commit("t2", read_set=["x"], write_set=[])
        assert occ.abort_rate == 0.5

    def test_write_write_without_read_passes(self):
        """Backward validation checks read sets only (blind writes ok)."""
        occ = OCCValidator()
        occ.begin("t1")
        occ.begin("t2")
        occ.commit("t1", read_set=[], write_set=["x"])
        occ.commit("t2", read_set=[], write_set=["x"])
        assert occ.commits == 2

    def test_serial_transactions_never_conflict(self):
        occ = OCCValidator()
        occ.begin("t1")
        occ.commit("t1", read_set=["x"], write_set=["x"])
        occ.begin("t2")  # begins after t1 committed
        occ.commit("t2", read_set=["x"], write_set=["x"])
        assert occ.aborts == 0

    def test_explicit_abort(self):
        occ = OCCValidator()
        occ.begin("t1")
        occ.abort("t1")
        assert occ.aborts == 1 and occ.active_count == 0

    def test_double_begin_rejected(self):
        occ = OCCValidator()
        occ.begin("t1")
        with pytest.raises(ValueError):
            occ.begin("t1")

    def test_commit_unknown_tx_rejected(self):
        occ = OCCValidator()
        with pytest.raises(ValueError):
            occ.commit("ghost", [], [])

    def test_retry_after_abort_can_succeed(self):
        occ = OCCValidator()
        occ.begin("t1")
        occ.begin("t2")
        occ.commit("t1", read_set=[], write_set=["x"])
        with pytest.raises(ValidationFailed):
            occ.commit("t2", read_set=["x"], write_set=["x"])
        occ.begin("t2-retry")
        occ.commit("t2-retry", read_set=["x"], write_set=["x"])
        assert occ.commits == 2
