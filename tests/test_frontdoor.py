"""The overload front door: admission, backpressure, breakers, ladder."""

from __future__ import annotations

import pytest

from repro.core.consistency import ConsistencyLevel
from repro.core.readpath import ReadRequest, ReadResult
from repro.frontdoor import (
    AdmissionController,
    BackpressureMonitor,
    BreakerState,
    CircuitBreaker,
    DegradeLadder,
    FrontDoor,
    Rung,
    TenantQuota,
    TokenBucket,
)
from repro.obs.metrics import MetricsRegistry
from repro.sim.scheduler import Simulator


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_burst_then_dry(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert all(bucket.try_take() for _ in range(3))
        assert not bucket.try_take()

    def test_refills_with_virtual_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        for _ in range(4):
            bucket.try_take()
        clock.now = 1.0  # 2 tokens back
        assert bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()

    def test_infinite_rate_never_throttles(self):
        bucket = TokenBucket(
            rate=float("inf"), burst=float("inf"), clock=FakeClock()
        )
        assert all(bucket.try_take(100.0) for _ in range(50))


class TestAdmissionController:
    def test_default_is_unmetered(self):
        admission = AdmissionController(FakeClock())
        assert all(admission.try_admit("anyone", 10.0) for _ in range(100))

    def test_tenant_quota_enforced(self):
        clock = FakeClock()
        admission = AdmissionController(
            clock, quotas={"mobile": TenantQuota(rate=1.0, burst=2.0)}
        )
        assert admission.try_admit("mobile", 1.0)
        assert admission.try_admit("mobile", 1.0)
        assert not admission.try_admit("mobile", 1.0)  # burst spent
        assert admission.try_admit("web", 1.0)  # other tenants unmetered
        clock.now = 5.0
        assert admission.try_admit("mobile", 1.0)  # refilled

    def test_throttle_metric(self):
        metrics = MetricsRegistry()
        admission = AdmissionController(
            FakeClock(),
            default_quota=TenantQuota(rate=0.0, burst=1.0),
            metrics=metrics,
        )
        admission.try_admit("t1", 1.0)
        admission.try_admit("t1", 1.0)
        assert metrics.value("frontdoor.throttled", tenant="t1") == 1


class TestBackpressureMonitor:
    def test_tripped_lists_hot_signals(self):
        depth = {"value": 0.0}
        monitor = BackpressureMonitor().add(
            "queue_depth", lambda: depth["value"], limit=10.0
        )
        assert monitor.tripped() == []
        depth["value"] = 11.0
        assert monitor.tripped() == ["queue_depth"]


class TestCircuitBreaker:
    def test_threshold_opens(self):
        clock = FakeClock()
        breaker = CircuitBreaker("unit", clock, failure_threshold=2)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_half_open_probe_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker("unit", clock, failure_threshold=1)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 1000.0  # past the reset deadline
        assert breaker.allow()  # the half-open probe
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens_with_backoff(self):
        clock = FakeClock()
        breaker = CircuitBreaker("unit", clock, failure_threshold=1)
        breaker.record_failure()
        first_deadline = breaker._retry_at.at
        clock.now = first_deadline + 1.0
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state is BreakerState.OPEN
        # Second open waits longer than the first (exponential reset).
        assert (breaker._retry_at.at - clock.now) > (first_deadline - 0.0)

    def test_health_probe_short_circuits(self):
        crashed = {"value": False}
        breaker = CircuitBreaker(
            "unit", FakeClock(), health=lambda: not crashed["value"]
        )
        assert breaker.allow()
        crashed["value"] = True
        assert not breaker.allow()


def make_rung(level, value="v", *, staleness=0.0, **kwargs):
    def reader(entity_type, entity_key, request):
        return ReadResult(
            value,
            requested_level=request.level,
            delivered_level=level,
            staleness=staleness,
            degraded=level is not request.level,
        )

    return Rung(level=level, reader=reader, **kwargs)


class TestDegradeLadder:
    def test_rungs_must_be_ordered(self):
        with pytest.raises(ValueError):
            DegradeLadder([
                make_rung(ConsistencyLevel.EVENTUAL),
                make_rung(ConsistencyLevel.STRONG),
            ])

    def test_candidates_never_stronger_than_asked(self):
        ladder = DegradeLadder([
            make_rung(ConsistencyLevel.STRONG),
            make_rung(ConsistencyLevel.EVENTUAL),
        ])
        levels = [
            rung.level for rung in ladder.candidates(ReadRequest.eventual())
        ]
        assert levels == [ConsistencyLevel.EVENTUAL]

    def test_no_degrade_pins_exact_level(self):
        ladder = DegradeLadder([
            make_rung(ConsistencyLevel.STRONG),
            make_rung(ConsistencyLevel.EVENTUAL),
        ])
        request = ReadRequest(
            level=ConsistencyLevel.STRONG, allow_degraded=False
        )
        levels = [rung.level for rung in ladder.candidates(request)]
        assert levels == [ConsistencyLevel.STRONG]

    def test_request_below_bottom_gets_bottom_rung(self):
        ladder = DegradeLadder([
            make_rung(ConsistencyLevel.STRONG),
            make_rung(ConsistencyLevel.EVENTUAL),
        ])
        request = ReadRequest(level=ConsistencyLevel.EXTRACT)
        levels = [rung.level for rung in ladder.candidates(request)]
        assert levels == [ConsistencyLevel.EVENTUAL]

    def test_rung_refuses_beyond_declared_bound(self):
        rung = make_rung(
            ConsistencyLevel.BOUNDED_STALENESS,
            staleness=50.0,
            declared_bound=10.0,
        )
        assert rung.serve("order", "o-1", ReadRequest.bounded(10.0)) is None
        assert rung.bound_refusals == 1


def make_door(sim, rungs, **kwargs):
    return FrontDoor(sim, DegradeLadder(rungs), **kwargs)


class TestFrontDoor:
    def test_serves_at_requested_level(self):
        sim = Simulator(seed=1, metrics=MetricsRegistry())
        door = make_door(sim, [
            make_rung(ConsistencyLevel.STRONG),
            make_rung(ConsistencyLevel.EVENTUAL),
        ])
        result = door.read("order", "o-1", request=ReadRequest.strong())
        assert result.ok and not result.degraded
        assert result.delivered_level is ConsistencyLevel.STRONG

    def test_dry_strong_rung_degrades_with_apology(self):
        sim = Simulator(seed=1, metrics=MetricsRegistry())
        clock = lambda: sim.now
        strong = make_rung(
            ConsistencyLevel.STRONG,
            capacity=TokenBucket(0.0, 1.0, clock),
        )
        door = make_door(sim, [strong, make_rung(ConsistencyLevel.EVENTUAL)])
        first = door.read("order", "o-1", request=ReadRequest.strong())
        assert first.delivered_level is ConsistencyLevel.STRONG
        second = door.read("order", "o-1", request=ReadRequest.strong())
        assert second.ok and second.degraded
        assert second.delivered_level is ConsistencyLevel.EVENTUAL
        assert second.apology["reason"] == "degraded_read"
        assert door.degraded_serves == 1
        assert (
            sim.metrics.value(
                "frontdoor.degraded", requested="strong", delivered="eventual"
            )
            == 1
        )

    def test_backpressure_sheds_strong_rung(self):
        sim = Simulator(seed=1, metrics=MetricsRegistry())
        monitor = BackpressureMonitor().add("queue_depth", lambda: 99.0, 10.0)
        door = make_door(
            sim,
            [
                make_rung(ConsistencyLevel.STRONG),
                make_rung(ConsistencyLevel.EVENTUAL),
            ],
            backpressure=monitor,
        )
        result = door.read("order", "o-1", request=ReadRequest.strong())
        assert result.degraded
        assert result.delivered_level is ConsistencyLevel.EVENTUAL
        assert sim.metrics.value("frontdoor.shed", reason="queue_depth") == 1

    def test_quota_exhaustion_rejects(self):
        sim = Simulator(seed=1, metrics=MetricsRegistry())
        admission = AdmissionController(
            lambda: sim.now,
            default_quota=TenantQuota(rate=0.0, burst=1.0),
            metrics=sim.metrics,
        )
        door = make_door(
            sim, [make_rung(ConsistencyLevel.EVENTUAL)], admission=admission
        )
        assert door.read("order", "o-1", request=ReadRequest.eventual()).ok
        rejected = door.read("order", "o-1", request=ReadRequest.eventual())
        assert rejected.rejected and rejected.reject_reason == "quota"
        assert rejected.apology == {"reason": "rejected_quota"}

    def test_expired_deadline_rejects(self):
        from repro.core.policy import Deadline

        sim = Simulator(seed=1)
        door = make_door(sim, [make_rung(ConsistencyLevel.STRONG)])
        sim.schedule(10.0, lambda: None)
        sim.run()
        request = ReadRequest(
            level=ConsistencyLevel.STRONG, deadline=Deadline(at=5.0)
        )
        result = door.read("order", "o-1", request=request)
        assert result.rejected and result.reject_reason == "deadline"

    def test_every_rung_refusing_is_saturated(self):
        sim = Simulator(seed=1)
        clock = lambda: sim.now
        door = make_door(sim, [
            make_rung(
                ConsistencyLevel.EVENTUAL,
                capacity=TokenBucket(0.0, 0.0, clock),
            ),
        ])
        result = door.read("order", "o-1", request=ReadRequest.eventual())
        assert result.rejected and result.reject_reason == "saturated"

    def test_breaker_failure_path(self):
        sim = Simulator(seed=1)

        def exploding(entity_type, entity_key, request):
            raise RuntimeError("replica down")

        breaker = CircuitBreaker("strong", lambda: sim.now, failure_threshold=2)
        broken = Rung(
            level=ConsistencyLevel.STRONG, reader=exploding, breaker=breaker
        )
        door = make_door(sim, [broken, make_rung(ConsistencyLevel.EVENTUAL)])
        for _ in range(2):
            result = door.read("order", "o-1", request=ReadRequest.strong())
            assert result.degraded  # fell through to the eventual rung
        assert breaker.state is BreakerState.OPEN
        # With the breaker open the failing reader is not even attempted.
        result = door.read("order", "o-1", request=ReadRequest.strong())
        assert result.delivered_level is ConsistencyLevel.EVENTUAL


class TestForCluster:
    def make_cluster(self, **door_kwargs):
        from repro import Cluster

        return (
            Cluster.build(seed=7)
            .with_tracing()
            .with_network(latency=2.0)
            .with_replicas(2, mode="master_slave", ship_interval=10.0)
            .with_front_door(**door_kwargs)
            .create()
        )

    def test_builder_wires_a_door(self):
        cluster = self.make_cluster()
        assert cluster.front_door is not None
        levels = [rung.level for rung in cluster.front_door.ladder.rungs]
        assert levels == [
            ConsistencyLevel.STRONG,
            ConsistencyLevel.BOUNDED_STALENESS,
            ConsistencyLevel.EVENTUAL,
        ]

    def test_cluster_read_routes_via_door(self):
        cluster = self.make_cluster()
        cluster.replication.write_insert("order", "o-1", {"total": 4})
        result = cluster.read(
            "order", "o-1", request=ReadRequest.strong()
        )
        assert isinstance(result, ReadResult)
        assert result.delivered_level is ConsistencyLevel.STRONG
        assert result.fields["total"] == 4
        assert cluster.front_door.reads == 1

    def test_crashed_master_degrades_to_replica(self):
        cluster = self.make_cluster(bounded_staleness=100.0)
        cluster.replication.write_insert("order", "o-1", {"total": 4})
        cluster.sim.run(until=30.0)  # shipped to the slave
        cluster.replication.master.crash()
        result = cluster.read("order", "o-1", request=ReadRequest.strong())
        assert result.ok and result.degraded
        assert result.delivered_level is ConsistencyLevel.BOUNDED_STALENESS
        assert result.fields["total"] == 4
