"""Compaction interplay: indexes, snapshots, warehouse extracts.

Summarization rewrites the log prefix; every consumer that reads the
log by LSN (asynchronous indexes, snapshot replay, incremental
extracts) must stay correct across a rewrite.  These tests pin that.
"""

from __future__ import annotations

from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta
from repro.replication.warehouse import WarehouseExtract
from repro.sim.scheduler import Simulator


class TestIndexAcrossCompaction:
    def test_index_ahead_of_compaction_stays_correct(self):
        store = LSDBStore()
        index = store.register_index("order", "status")
        store.insert("order", "o1", {"status": "open"})
        store.insert("order", "o2", {"status": "open"})
        index.refresh()  # index fully caught up
        store.compact(keep_recent=0)
        index.refresh()
        assert index.lookup("open") == {"o1", "o2"}

    def test_index_behind_compaction_catches_up_via_summaries(self):
        store = LSDBStore()
        index = store.register_index("order", "status")
        store.insert("order", "o1", {"status": "open"})
        store.set_fields("order", "o1", {"status": "closed"})
        # Index has applied nothing when the prefix is summarised away.
        store.compact(keep_recent=0)
        index.refresh()
        assert index.lookup("closed") == {"o1"}
        assert index.lookup("open") == set()

    def test_index_mid_stream_during_compaction(self):
        store = LSDBStore()
        index = store.register_index("order", "status")
        store.insert("order", "o1", {"status": "open"})
        index.refresh()
        store.set_fields("order", "o1", {"status": "closed"})
        store.insert("order", "o2", {"status": "open"})
        store.compact(keep_recent=1)
        index.refresh()
        assert index.lookup("closed") == {"o1"}
        assert index.lookup("open") == {"o2"}


class TestSnapshotsAcrossCompaction:
    def test_head_read_correct_after_compaction(self):
        store = LSDBStore(snapshot_interval=5)
        store.insert("acct", "a", {"bal": 0})
        for _ in range(20):
            store.apply_delta("acct", "a", Delta.add("bal", 1))
        store.compact(keep_recent=3)
        states = store.state_as_of(store.log.head_lsn)
        assert states[("acct", "a")].fields["bal"] == 20

    def test_incremental_cache_matches_scratch_after_compaction(self):
        store = LSDBStore()
        store.insert("acct", "a", {"bal": 0})
        for _ in range(10):
            store.apply_delta("acct", "a", Delta.add("bal", 1))
        store.compact(keep_recent=2)
        for _ in range(5):
            store.apply_delta("acct", "a", Delta.add("bal", 1))
        cached = store.get("acct", "a").fields
        scratch = store.rollup_from_scratch()[("acct", "a")].fields
        assert cached == scratch == {"bal": 15}


class TestWarehouseAcrossCompaction:
    def test_incremental_extract_survives_compaction_between_rounds(self):
        sim = Simulator()
        store = LSDBStore(clock=lambda: sim.now)
        warehouse = WarehouseExtract(sim, store, interval=10.0, incremental=True)
        store.insert("acct", "a", {"bal": 0})
        for _ in range(6):
            store.apply_delta("acct", "a", Delta.add("bal", 1))
        sim.run(until=15.0)  # first extract
        # Compaction rewrites the prefix *above* the extracted LSN
        # boundary semantics: summaries replace raw events.
        for _ in range(4):
            store.apply_delta("acct", "a", Delta.add("bal", 1))
        store.compact(keep_recent=2)
        sim.run(until=25.0)  # incremental round over the rewritten log
        assert warehouse.get("acct", "a").fields["bal"] == 10

    def test_full_extract_mode_trivially_correct(self):
        sim = Simulator()
        store = LSDBStore(clock=lambda: sim.now)
        warehouse = WarehouseExtract(sim, store, interval=10.0, incremental=False)
        store.insert("acct", "a", {"bal": 3})
        store.compact(keep_recent=0)
        sim.run(until=15.0)
        assert warehouse.get("acct", "a").fields["bal"] == 3


class TestCheckpointsAcrossCompaction:
    def test_compact_then_checkpoint_restore_is_byte_identical(self):
        """Fixed-seed round-trip: compact(keep_recent>0), checkpoint,
        tear the caches down, restore — states and secondary indexes
        must come back byte-identical (PR 5 satellite)."""
        from repro.lsdb.checkpoint import CheckpointPolicy
        from repro.sim.rng import SeededRNG

        rng = SeededRNG(17)
        store = LSDBStore()
        store.enable_checkpoints(CheckpointPolicy(every_events=25))
        index = store.register_index("acct", "tier")
        tiers = ("gold", "silver")
        for key in ("a", "b", "c"):
            store.insert(
                "acct", key, {"bal": 0, "tier": tiers[rng.randint(0, 1)]}
            )
        for _ in range(80):
            key = ("a", "b", "c")[rng.randint(0, 2)]
            store.apply_delta("acct", key, Delta.add("bal", rng.randint(1, 5)))
        index.refresh()
        store.compact(keep_recent=10)  # invalidates + re-takes at the head
        for _ in range(7):  # post-compaction, post-checkpoint delta
            store.apply_delta("acct", "a", Delta.add("bal", 1))
        index.refresh()

        live_states = {
            ref: state.copy() for ref, state in store.current_state().items()
        }
        live_buckets = {
            tier: set(index.lookup(tier)) for tier in ("gold", "silver")
        }
        report = store.recover()
        assert report.used_checkpoint
        assert report.events_replayed == 7
        assert store.current_state() == live_states
        assert {
            tier: set(index.lookup(tier)) for tier in ("gold", "silver")
        } == live_buckets
        # And the restored fields equal a from-scratch fold of the
        # (compacted) log.  Only fields: the checkpoint preserves the
        # true cumulative event_count across compaction, which a fold
        # over summaries cannot reconstruct.
        scratch = store.rollup_from_scratch()
        assert {
            ref: state.fields for ref, state in store.current_state().items()
        } == {ref: state.fields for ref, state in scratch.items()}


class TestColumnarAcrossCompaction:
    def test_slice_feeds_match_materialized_after_compaction(self):
        """Every slice feed agrees with a brute-force scan of the live
        (summaries + suffix) events after a prefix rewrite."""
        store = LSDBStore()
        for index in range(3):
            store.insert("acct", f"k{index}", {"bal": 0})
        for index in range(40):
            store.apply_delta("acct", f"k{index % 3}", Delta.add("bal", 1))
        store.compact(keep_recent=5)
        log = store.log
        live = list(log.events())
        head = log.head_lsn
        for lsn in range(head + 2):
            assert list(log.since(lsn)) == [e for e in live if e.lsn > lsn]
            assert list(log.iter_since(lsn)) == list(log.since(lsn))
        for index in range(3):
            key = f"k{index}"
            assert list(log.for_entity("acct", key)) == [
                e for e in live if e.entity_key == key
            ]
        assert list(log.for_type_since("acct", 0, head)) == live

    def test_per_origin_raw_events_survive_compaction(self):
        """The per-origin feed serves the *raw* remote events after the
        live prefix is summarised away — the immortal arena keeps the
        rows replication's anti-entropy repairs need."""
        from repro.lsdb.events import EventKind, LogEvent

        store = LSDBStore()
        originals = []
        for seq in range(1, 9):
            event = LogEvent(
                lsn=0,
                timestamp=float(seq),
                entity_type="acct",
                entity_key="a",
                kind=EventKind.DELTA,
                payload=Delta.add("bal", 1).to_payload(),
                origin="r1",
                origin_seq=seq,
            )
            assert store.apply_remote(event)
            originals.append(event.with_lsn(seq))
        store.compact(keep_recent=0)
        assert all(e.kind is EventKind.SUMMARY for e in store.log.events())
        served = list(store.events_from_origin("r1", 0))
        assert served == originals
        assert [e.origin_seq for e in store.events_from_origin("r1", 5)] == [
            6, 7, 8,
        ]
