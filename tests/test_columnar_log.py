"""Property suite for the columnar event log.

The columnar re-architecture stores events as parallel arrays and
materializes :class:`~repro.lsdb.events.LogEvent` objects only at API
boundaries, so correctness rests on three agreements these properties
pin over random event sequences:

* the two ingestion paths (``append`` an event object, ``append_row``
  from loose fields) produce byte-identical logs, and every slice feed
  agrees with a brute-force scan of the materialized events;
* events survive columnar storage byte-for-byte (``to_dict`` /
  ``from_dict`` round-trips, and the :class:`ColumnFrame` wire codec
  decodes into an equal log);
* ``rewrite_prefix`` keeps feeds correct, keeps already-handed-out
  views valid (the arena is immortal), and checkpointed recovery after
  a compaction rewrite reproduces the never-torn-down cache.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsdb.checkpoint import CheckpointPolicy
from repro.lsdb.columnar import ColumnFrame
from repro.lsdb.events import EventKind, LogEvent
from repro.lsdb.log import AppendOnlyLog
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta
from repro.replication.batching import BatchPolicy

KINDS = [
    EventKind.INSERT,
    EventKind.DELTA,
    EventKind.SET_FIELDS,
    EventKind.TOMBSTONE,
    EventKind.OBSOLETE,
]


@st.composite
def event_sequences(draw):
    """Random mixed-kind events over a few entities, types and origins.

    LSNs are left at 0 (the log stamps them); per-origin sequences are
    monotone, as replication produces them.
    """
    count = draw(st.integers(1, 30))
    seqs = {"r1": 0, "r2": 0, "local": 0}
    events = []
    for index in range(count):
        kind = draw(st.sampled_from(KINDS))
        entity_type = draw(st.sampled_from(["t", "u"]))
        key = draw(st.sampled_from(["a", "b", "c"]))
        field = draw(st.sampled_from(["x", "y"]))
        if kind is EventKind.DELTA:
            payload = Delta.add(field, draw(st.integers(-5, 5))).to_payload()
        elif kind in (EventKind.TOMBSTONE, EventKind.OBSOLETE):
            payload = {}
        else:
            payload = {field: draw(st.integers(0, 9))}
        origin = draw(st.sampled_from(["r1", "r2", "local"]))
        seqs[origin] += 1
        events.append(
            LogEvent(
                lsn=0,
                timestamp=float(draw(st.integers(0, 10))),
                entity_type=entity_type,
                entity_key=key,
                kind=kind,
                payload=payload,
                origin=origin,
                origin_seq=seqs[origin],
                tx_id=draw(st.sampled_from(["", "tx1"])),
                tags=draw(st.sampled_from([frozenset(), frozenset({"reg"})])),
            )
        )
    return events


def build_log(events) -> AppendOnlyLog:
    log = AppendOnlyLog()
    for event in events:
        log.append(event)
    return log


class TestIngestionAgreement:
    @settings(max_examples=80)
    @given(events=event_sequences())
    def test_append_row_agrees_with_append(self, events):
        """Loose-field ingestion stores byte-identical events."""
        object_log = build_log(events)
        row_log = AppendOnlyLog()
        for event in events:
            row_log.append_row(
                event.timestamp,
                event.entity_type,
                event.entity_key,
                event.kind,
                event.payload,
                origin=event.origin,
                origin_seq=event.origin_seq,
                tx_id=event.tx_id,
                schema_version=event.schema_version,
                tags=event.tags,
            )
        assert list(object_log.events()) == list(row_log.events())

    @settings(max_examples=80)
    @given(events=event_sequences())
    def test_dict_round_trip_through_columns(self, events):
        """Materialized events survive to_dict/from_dict byte-for-byte."""
        for event in build_log(events).events():
            assert LogEvent.from_dict(event.to_dict()) == event


class TestFeedAgreement:
    @settings(max_examples=60)
    @given(events=event_sequences())
    def test_slice_feeds_match_brute_force(self, events):
        log = build_log(events)
        stored = list(log.events())
        head = log.head_lsn
        for lsn in range(head + 2):
            assert list(log.since(lsn)) == [e for e in stored if e.lsn > lsn]
            assert list(log.iter_since(lsn)) == list(log.since(lsn))
            assert list(log.up_to(lsn)) == [e for e in stored if e.lsn <= lsn]
            assert log.last_lsn_at_or_below(lsn) == max(
                (e.lsn for e in stored if e.lsn <= lsn), default=0
            )
        for low in range(0, head + 1, 3):
            for high in range(low, head + 1, 3):
                expected = [e for e in stored if low < e.lsn <= high]
                assert list(log.between(low, high)) == expected
                assert log.count_between(low, high) == len(expected)
        for entity_type in ("t", "u"):
            for key in ("a", "b", "c"):
                assert list(log.for_entity(entity_type, key)) == [
                    e for e in stored
                    if e.entity_type == entity_type and e.entity_key == key
                ]
            assert list(log.for_type_since(entity_type, 0, head)) == [
                e for e in stored if e.entity_type == entity_type
            ]

    @settings(max_examples=60)
    @given(events=event_sequences())
    def test_bulk_identities_match_per_event(self, events):
        view = build_log(events).events()
        assert list(view.identities()) == [e.identity for e in view]


class TestFrameCodec:
    @settings(max_examples=60)
    @given(events=event_sequences(), max_batch=st.integers(1, 8))
    def test_round_trip_is_byte_identical(self, events, max_batch):
        """chunk_rows -> ColumnFrame -> extend_frame reproduces the log."""
        source = build_log(events)
        view = source.events()
        destination = AppendOnlyLog()
        for chunk in BatchPolicy(max_batch=max_batch).chunk_rows(view):
            frame = ColumnFrame.from_slice(chunk)
            destination.extend_frame(frame, 0, len(chunk))
        assert list(destination.events()) == list(view)

    @settings(max_examples=60)
    @given(events=event_sequences())
    def test_frame_events_match_slice(self, events):
        """Frame-side materialization equals slice-side materialization."""
        view = build_log(events).events()
        frame = ColumnFrame.from_slice(view)
        assert list(frame.events()) == list(view)
        assert [frame.event_at(i) for i in range(len(view))] == list(view)


def summaries_for(prefix_events, boundary):
    """One SUMMARY per entity in the prefix, compactor-style: placed at
    the entity's last prefix LSN, ascending."""
    last: dict = {}
    for event in prefix_events:
        last[(event.entity_type, event.entity_key)] = event
    summaries = [
        LogEvent(
            lsn=event.lsn,
            timestamp=event.timestamp,
            entity_type=ref[0],
            entity_key=ref[1],
            kind=EventKind.SUMMARY,
            payload={"s": 1},
            origin="compactor",
            origin_seq=0,
        )
        for ref, event in last.items()
    ]
    summaries.sort(key=lambda event: event.lsn)
    return summaries


class TestRewritePrefix:
    @settings(max_examples=60)
    @given(events=event_sequences(), data=st.data())
    def test_feeds_stay_correct_and_views_stay_valid(self, events, data):
        log = build_log(events)
        boundary = data.draw(st.integers(1, log.head_lsn))
        prefix = list(log.up_to(boundary))
        suffix = list(log.since(boundary))
        # A view handed out before the rewrite must stay readable after
        # it (the arena never drops rows).
        pre_view = log.events()
        pre_events = list(pre_view)
        replacement = summaries_for(prefix, boundary)
        removed = log.rewrite_prefix(boundary, replacement)
        assert list(removed) == prefix
        live = replacement + suffix
        assert list(log.events()) == live
        assert list(pre_view) == pre_events
        head = log.head_lsn
        for lsn in range(head + 2):
            assert list(log.since(lsn)) == [e for e in live if e.lsn > lsn]
        for entity_type in ("t", "u"):
            for key in ("a", "b", "c"):
                assert list(log.for_entity(entity_type, key)) == [
                    e for e in live
                    if e.entity_type == entity_type and e.entity_key == key
                ]


def canonical(states):
    return {
        ref: (
            dict(state.fields),
            state.deleted,
            state.obsolete,
            state.version_count,
            state.event_count,
            state.last_lsn,
            state.last_timestamp,
        )
        for ref, state in states.items()
    }


@st.composite
def store_scripts(draw):
    """Random write scripts against one store: (op, key, field, value)."""
    count = draw(st.integers(5, 40))
    script = []
    for _ in range(count):
        op = draw(st.sampled_from(["insert", "delta", "set", "delete"]))
        key = draw(st.sampled_from(["a", "b", "c", "d"]))
        field = draw(st.sampled_from(["x", "y"]))
        value = draw(st.integers(-5, 9))
        script.append((op, key, field, value))
    return script


def run_script(store, script):
    inserted = set()
    for op, key, field, value in script:
        if op == "insert" or key not in inserted:
            store.insert("acct", key, {field: value})
            inserted.add(key)
        elif op == "delta":
            store.apply_delta("acct", key, Delta.add(field, value))
        elif op == "set":
            store.set_fields("acct", key, {field: value})
        else:
            store.tombstone("acct", key)
            inserted.discard(key)


class TestCheckpointSurvival:
    @settings(max_examples=40, deadline=None)
    @given(
        script=store_scripts(),
        keep=st.integers(0, 5),
        post=store_scripts(),
    )
    def test_recovery_after_compaction_rewrite_is_identical(
        self, script, keep, post
    ):
        """compact (rewrite_prefix) + checkpoint + more writes, then
        recover: the rebuilt cache equals the never-torn-down one."""
        store = LSDBStore()
        store.enable_checkpoints(CheckpointPolicy(on_compaction=True))
        run_script(store, script)
        store.compact(keep_recent=keep)
        run_script(store, post)
        live = canonical(store.states_view())
        report = store.recover()
        assert report.used_checkpoint
        assert canonical(store.states_view()) == live
