"""Tests for the unified fault-tolerance policy API (repro.core.policy)."""

import warnings

import pytest

from repro.core.policy import Deadline, RetryBudget, RetryPolicy, TimeoutPolicy
from repro.errors import (
    DeadlineExceeded,
    FaultToleranceError,
    RetryBudgetExhausted,
    RetryExhausted,
)
from repro.sim.rng import SeededRNG


class TestRetryPolicy:
    def test_fixed_backoff_is_constant(self):
        policy = RetryPolicy.fixed(max_attempts=4, delay=7.5)
        assert [policy.delay(n) for n in (1, 2, 3)] == [7.5, 7.5, 7.5]

    def test_exponential_backoff_doubles(self):
        policy = RetryPolicy.exponential(base_delay=2.0, multiplier=2.0)
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == [2.0, 4.0, 8.0, 16.0]

    def test_exponential_backoff_clamped_by_max_delay(self):
        policy = RetryPolicy.exponential(base_delay=10.0, max_delay=25.0)
        assert policy.delay(5) == 25.0

    def test_jitter_draws_from_given_rng_and_shrinks_delay(self):
        policy = RetryPolicy.fixed(delay=10.0).with_jitter(0.5)
        rng = SeededRNG(1)
        delays = {policy.delay(1, rng) for _ in range(20)}
        assert len(delays) > 1  # jitter actually varies
        assert all(5.0 <= d <= 10.0 for d in delays)

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy.fixed(delay=10.0).with_jitter(0.5)
        rng_a, rng_b = SeededRNG(9), SeededRNG(9)
        a = [policy.delay(1, rng_a) for _ in range(5)]
        b = [policy.delay(1, rng_b) for _ in range(5)]
        # Same seed, same stream position, same jittered delays.
        assert a == b
        assert len(set(a)) > 1  # and the stream does vary over draws

    def test_allows_retry_caps_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows_retry(1)
        assert policy.allows_retry(2)
        assert not policy.allows_retry(3)

    def test_none_policy_never_retries(self):
        assert not RetryPolicy.none().allows_retry(1)

    def test_trivial_detection(self):
        assert RetryPolicy.fixed(delay=5.0).is_trivial
        assert not RetryPolicy.exponential(base_delay=5.0).is_trivial
        assert not RetryPolicy.fixed(delay=5.0).with_jitter(0.1).is_trivial

    def test_check_exhausted_raises_retry_exhausted(self):
        policy = RetryPolicy(max_attempts=2)
        with pytest.raises(RetryExhausted) as excinfo:
            policy.check_exhausted(2, reason="unit-test")
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value, FaultToleranceError)


class TestRetryBudget:
    def test_budget_exhaustion_stops_retries_across_operations(self):
        budget = RetryBudget(total=3)
        policy = RetryPolicy(max_attempts=10).with_budget(budget)
        granted = [policy.allows_retry(1) for _ in range(5)]
        # Only the first three grants spend budget; the rest are denied
        # even though max_attempts would allow them.
        assert granted == [True, True, True, False, False]
        assert budget.remaining == 0

    def test_budget_exhaustion_raises_specific_error(self):
        budget = RetryBudget(total=0)
        policy = RetryPolicy(max_attempts=5).with_budget(budget)
        assert not policy.allows_retry(1)
        with pytest.raises(RetryBudgetExhausted):
            policy.check_exhausted(1, reason="budget")


class TestTimeoutPolicyAndDeadline:
    def test_start_stamps_absolute_deadline(self):
        policy = TimeoutPolicy(per_attempt=10.0, overall=50.0)
        deadline = policy.start(now=100.0)
        assert deadline.at == 150.0

    def test_attempt_timeout_clamped_to_deadline(self):
        policy = TimeoutPolicy(per_attempt=30.0, overall=100.0)
        deadline = policy.start(now=0.0)
        assert policy.attempt_timeout(deadline, now=0.0) == 30.0
        assert policy.attempt_timeout(deadline, now=90.0) == 10.0

    def test_unbounded_policy_yields_no_waits(self):
        policy = TimeoutPolicy.none()
        deadline = policy.start(now=5.0)
        assert deadline.at is None
        assert policy.attempt_timeout(deadline, now=5.0) is None

    def test_deadline_check_raises_after_expiry(self):
        deadline = Deadline(at=10.0)
        deadline.check(now=10.0, what="op")  # boundary is still alive
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check(now=10.5, what="op")
        assert excinfo.value.deadline == 10.0
        assert isinstance(excinfo.value, TimeoutError)  # stdlib-compatible

    def test_unset_deadline_never_expires(self):
        deadline = Deadline()
        assert not deadline.expired(1e12)
        assert deadline.remaining(1e12) == float("inf")


class TestRemovedLegacyKwargs:
    """Satellite: the PR 3 deprecation cycle is complete — the legacy
    retry/timeout kwargs are gone, but the read-only introspection
    properties of those names survive."""

    def test_queue_legacy_kwargs_removed(self):
        from repro.queues.reliable import ReliableQueue
        from repro.sim.scheduler import Simulator

        with pytest.raises(TypeError):
            ReliableQueue(Simulator(), redelivery_timeout=3.0, max_attempts=7)

    def test_queue_legacy_properties_survive(self):
        from repro.queues.reliable import ReliableQueue
        from repro.sim.scheduler import Simulator

        queue = ReliableQueue(
            Simulator(), retry=RetryPolicy(max_attempts=7, base_delay=3.0)
        )
        assert queue.redelivery_timeout == 3.0  # legacy introspection alias
        assert queue.max_attempts == 7

    def test_sync_replication_ack_timeout_removed(self):
        from repro.core.policy import TimeoutPolicy
        from repro.replication.synchronous import SyncPrimaryBackup
        from repro.sim.network import Network
        from repro.sim.scheduler import Simulator

        sim = Simulator()
        with pytest.raises(TypeError):
            SyncPrimaryBackup(sim, Network(sim), ack_timeout=40.0)
        pair = SyncPrimaryBackup(
            sim, Network(sim), timeout=TimeoutPolicy(per_attempt=40.0)
        )
        assert pair.ack_timeout == 40.0

    def test_quorum_float_timeout_removed(self):
        from repro.core.policy import TimeoutPolicy
        from repro.replication.quorum import QuorumGroup
        from repro.sim.network import Network
        from repro.sim.scheduler import Simulator

        sim = Simulator()
        with pytest.raises(TypeError):
            QuorumGroup(sim, Network(sim), ["a", "b", "c"], timeout=33.0)
        group = QuorumGroup(
            sim, Network(sim), ["a", "b", "c"],
            timeout=TimeoutPolicy(per_attempt=33.0),
        )
        assert group.timeout == 33.0

    def test_twopc_vote_timeout_removed(self):
        from repro.core.policy import TimeoutPolicy
        from repro.locks.two_pc import TwoPCCoordinator

        with pytest.raises(TypeError):
            TwoPCCoordinator("c", vote_timeout=25.0)
        coordinator = TwoPCCoordinator(
            "c", timeout=TimeoutPolicy(per_attempt=25.0)
        )
        assert coordinator.vote_timeout == 25.0
