"""Deliverable self-check: the repository's documented surface exists.

Keeps the five deliverables (library, examples, tests, benchmarks,
documentation) from silently drifting apart from what the docs claim.
"""

from __future__ import annotations

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestDocumentation:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "pyproject.toml"):
            assert (ROOT / name).is_file(), f"{name} missing"

    def test_design_has_inventory_and_experiment_index(self):
        design = (ROOT / "DESIGN.md").read_text()
        assert "System inventory" in design
        assert "Per-experiment index" in design
        assert "Substitutions" in design
        assert "Ablation index" in design

    def test_design_maps_every_experiment(self):
        design = (ROOT / "DESIGN.md").read_text()
        for number in range(1, 13):
            assert f"| E{number} " in design, f"E{number} missing from DESIGN.md"

    def test_experiments_records_every_verdict(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        for number in range(1, 13):
            assert f"## E{number} " in experiments
        assert experiments.count("**Verdict: holds") == 12

    def test_readme_covers_install_quickstart_architecture(self):
        readme = (ROOT / "README.md").read_text()
        for heading in ("## Install", "## Quickstart", "## Architecture"):
            assert heading in readme


class TestBenchCoverage:
    def test_one_bench_file_per_experiment(self):
        names = {path.name for path in (ROOT / "benchmarks").glob("bench_e*.py")}
        for number in range(1, 13):
            assert any(
                name.startswith(f"bench_e{number:02d}_") for name in names
            ), f"experiment E{number} has no bench file"

    def test_ablation_files_exist(self):
        names = {path.name for path in (ROOT / "benchmarks").glob("bench_a*.py")}
        for number in range(1, 5):
            assert any(
                name.startswith(f"bench_a{number:02d}_") for name in names
            )

    def test_run_all_lists_every_bench(self):
        run_all = (ROOT / "benchmarks" / "run_all.py").read_text()
        bench_files = sorted(
            path.stem for path in (ROOT / "benchmarks").glob("bench_*.py")
        )
        for stem in bench_files:
            assert f'"{stem}"' in run_all, f"{stem} not in run_all.py"

    def test_every_bench_has_sweep_and_test(self):
        for path in (ROOT / "benchmarks").glob("bench_*.py"):
            source = path.read_text()
            assert "def sweep(" in source, f"{path.name} lacks sweep()"
            assert re.search(r"def test_\w+\(benchmark\)", source), (
                f"{path.name} lacks a pytest-benchmark test"
            )


class TestExamples:
    def test_at_least_three_examples(self):
        examples = list((ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3

    def test_every_example_is_documented_and_runnable(self):
        for path in (ROOT / "examples").glob("*.py"):
            source = path.read_text()
            assert source.startswith('"""'), f"{path.name} lacks a docstring"
            assert "def main()" in source
            assert '__name__ == "__main__"' in source

    def test_readme_mentions_every_example(self):
        readme = (ROOT / "README.md").read_text()
        for path in (ROOT / "examples").glob("*.py"):
            assert path.name in readme, f"{path.name} not mentioned in README"


class TestLibrarySurface:
    def test_every_package_module_has_a_docstring(self):
        import ast

        for path in (ROOT / "src" / "repro").rglob("*.py"):
            tree = ast.parse(path.read_text())
            assert ast.get_docstring(tree), f"{path} lacks a module docstring"

    def test_public_classes_have_docstrings(self):
        import ast

        missing = []
        for path in (ROOT / "src" / "repro").rglob("*.py"):
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                    if not ast.get_docstring(node):
                        missing.append(f"{path.name}:{node.name}")
        assert not missing, f"classes without docstrings: {missing}"
