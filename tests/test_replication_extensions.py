"""Tests for quorum read-repair and incremental warehouse extracts."""

from __future__ import annotations

from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta
from repro.replication.quorum import QuorumGroup
from repro.replication.warehouse import WarehouseExtract
from repro.sim.network import Network
from repro.sim.scheduler import Simulator


def world(latency=2.0, seed=0):
    sim = Simulator(seed=seed)
    return sim, Network(sim, latency=latency)


class TestReadRepair:
    def _group_with_stale_replica(self, read_repair=True):
        sim, net = world()
        group = QuorumGroup(
            sim, net, ["q1", "q2", "q3"], read_quorum=3, read_repair=read_repair
        )
        group.write("stock", "w", {"n": 1})
        sim.run()
        # A newer value lands at two replicas only (q3 missed it).
        sim.run(until=sim.now + 5.0)
        for replica in group.replicas[:2]:
            replica.store.set_fields("stock", "w", {"n": 2})
        return sim, group

    def test_stale_replica_healed_after_read(self):
        sim, group = self._group_with_stale_replica()
        group.read("stock", "w")
        sim.run()
        assert group.read_repairs_sent == 1
        # The straggler now holds the freshest value.
        assert group.replicas[2].store.get("stock", "w").fields["n"] == 2

    def test_repair_can_be_disabled(self):
        sim, group = self._group_with_stale_replica(read_repair=False)
        group.read("stock", "w")
        sim.run()
        assert group.read_repairs_sent == 0
        assert group.replicas[2].store.get("stock", "w").fields["n"] == 1

    def test_repair_is_tagged_and_not_reapplied(self):
        sim, group = self._group_with_stale_replica()
        group.read("stock", "w")
        sim.run()
        repaired_events = [
            event
            for event in group.replicas[2].store.log.events()
            if "read-repair" in event.tags
        ]
        assert len(repaired_events) == 1
        # A second read finds everyone fresh: no more repairs.
        group.read("stock", "w")
        sim.run()
        assert group.read_repairs_sent == 1

    def test_up_to_date_replicas_not_touched(self):
        sim, group = self._group_with_stale_replica()
        head_before = group.replicas[0].store.log.head_lsn
        group.read("stock", "w")
        sim.run()
        assert group.replicas[0].store.log.head_lsn == head_before

    def test_read_value_unaffected_by_repair(self):
        sim, group = self._group_with_stale_replica()
        seen = []
        group.read("stock", "w", on_done=lambda o: seen.append(o))
        sim.run()
        assert seen[0].value == {"n": 2}


class TestIncrementalWarehouse:
    def _setup(self, incremental):
        sim = Simulator()
        store = LSDBStore(clock=lambda: sim.now)
        warehouse = WarehouseExtract(
            sim, store, interval=10.0, incremental=incremental
        )
        return sim, store, warehouse

    def test_incremental_matches_full_extract(self):
        sim_a, store_a, incremental = self._setup(incremental=True)
        sim_b, store_b, full = self._setup(incremental=False)
        for sim, store in ((sim_a, store_a), (sim_b, store_b)):
            store.insert("order", "o1", {"total": 5})
            sim.run(until=15.0)
            store.apply_delta("order", "o1", Delta.add("total", 3))
            store.insert("order", "o2", {"total": 7})
            sim.run(until=25.0)
        assert incremental.get("order", "o1").fields == full.get(
            "order", "o1"
        ).fields
        assert incremental.aggregate("order", "total") == full.aggregate(
            "order", "total"
        ) == 15

    def test_incremental_applies_only_the_suffix(self):
        sim, store, warehouse = self._setup(incremental=True)
        for index in range(100):
            store.insert("order", f"o{index}", {"total": 1})
        sim.run(until=15.0)  # first extract: full copy
        store.insert("order", "late", {"total": 1})
        sim.run(until=25.0)  # second extract: one event
        assert warehouse.events_applied_incrementally == 1
        assert warehouse.aggregate("order", "total") == 101

    def test_quiescent_extracts_are_free(self):
        sim, store, warehouse = self._setup(incremental=True)
        store.insert("order", "o1", {"total": 5})
        sim.run(until=55.0)  # several extract rounds, no new events
        assert warehouse.extracts_taken >= 5
        assert warehouse.events_applied_incrementally == 0

    def test_deletions_propagate_incrementally(self):
        sim, store, warehouse = self._setup(incremental=True)
        store.insert("order", "o1", {"total": 5})
        sim.run(until=15.0)
        store.tombstone("order", "o1")
        sim.run(until=25.0)
        assert warehouse.scan("order") == []
