"""Tests for the chaos subsystem: engine, invariants, soak determinism."""

from __future__ import annotations

import pytest

from repro.chaos import (
    ChaosEngine,
    SoakConfig,
    get_profile,
    report_json,
    run_soak,
)
from repro.chaos.engine import FaultEvent
from repro.core.policy import RetryBudget, RetryPolicy, TimeoutPolicy
from repro.core.process import ProcessEngine
from repro.core.transaction import TransactionManager
from repro.lsdb.store import LSDBStore
from repro.queues.reliable import ReliableQueue
from repro.sim.network import Network, Node
from repro.sim.scheduler import Simulator


def make_network(node_count: int = 4, seed: int = 0):
    sim = Simulator(seed=seed)
    network = Network(sim, latency=1.0)
    for index in range(node_count):
        network.register(Node(f"n{index}"))
    return sim, network


class TestChaosEngine:
    def test_plan_is_deterministic_per_seed(self):
        schedules = []
        for _ in range(2):
            sim, network = make_network(seed=11)
            engine = ChaosEngine(sim, network, profile="moderate")
            schedules.append(engine.plan(2000.0))
        assert schedules[0] == schedules[1]

    def test_different_seeds_give_different_schedules(self):
        sim_a, net_a = make_network(seed=1)
        sim_b, net_b = make_network(seed=2)
        plan_a = ChaosEngine(sim_a, net_a).plan(2000.0)
        plan_b = ChaosEngine(sim_b, net_b).plan(2000.0)
        assert plan_a != plan_b

    def test_plan_covers_many_fault_kinds(self):
        sim, network = make_network(seed=42)
        engine = ChaosEngine(sim, network, profile="moderate")
        engine.plan(2000.0)
        assert len(engine.fault_kinds) >= 4

    def test_plan_twice_raises(self):
        sim, network = make_network()
        engine = ChaosEngine(sim, network)
        engine.plan(100.0)
        with pytest.raises(RuntimeError):
            engine.plan(100.0)

    def test_quiesce_restores_every_knob(self):
        sim, network = make_network()
        network.loss_probability = 0.01  # baseline to come back to
        engine = ChaosEngine(sim, network, profile="heavy")
        engine._apply(FaultEvent(at=0.0, kind="loss", duration=50.0, detail=""))
        engine._apply(FaultEvent(at=0.0, kind="delay", duration=50.0, detail=""))
        engine._apply(FaultEvent(at=0.0, kind="slow", duration=50.0, detail="n1"))
        engine._apply(FaultEvent(at=0.0, kind="crash", duration=50.0, detail="n2"))
        engine._apply(
            FaultEvent(at=0.0, kind="partition", duration=50.0, detail="n0,n1|n2,n3")
        )
        sim.run(until=1.0)  # let the partition window arm itself
        assert network.loss_probability > 0.01
        assert network.latency_factor > 1.0
        assert network.slow_nodes
        assert network.nodes["n2"].crashed
        assert network.partition is not None
        engine.quiesce()
        assert network.loss_probability == 0.01
        assert network.duplication_probability == 0.0
        assert network.latency_factor == 1.0
        assert network.slow_nodes == {}
        assert not network.nodes["n2"].crashed
        assert network.partition is None

    def test_overlapping_knob_spikes_refcount(self):
        sim, network = make_network()
        engine = ChaosEngine(sim, network)
        first = FaultEvent(at=0.0, kind="loss", duration=60.0, detail="")
        second = FaultEvent(at=10.0, kind="loss", duration=20.0, detail="")
        engine._apply(first)
        engine._apply(second)
        engine._revert(second)
        # The first window is still open: loss must stay elevated.
        assert network.loss_probability == engine.profile.loss_probability
        engine._revert(first)
        assert network.loss_probability == 0.0


class TestNetworkChaosKnobs:
    def test_duplication_delivers_twice(self):
        sim = Simulator()
        network = Network(sim, latency=1.0, duplication_probability=1.0)
        received = []

        class Sink(Node):
            def handle_message(self, source, message):
                received.append(message)

        network.register(Node("src"))
        network.register(Sink("dst"))
        network.nodes["src"].send("dst", "ping")
        sim.run()
        assert received == ["ping", "ping"]
        assert network.stats.duplicated == 1

    def test_slow_node_multiplies_latency(self):
        sim = Simulator()
        network = Network(sim, latency=1.0)
        arrival = []

        class Sink(Node):
            def handle_message(self, source, message):
                arrival.append(sim.now)

        network.register(Node("src"))
        network.register(Sink("gray"))
        network.slow_nodes["gray"] = 10.0
        network.nodes["src"].send("gray", "x")
        sim.run()
        assert arrival == [10.0]

    def test_latency_factor_scales_all_traffic(self):
        sim = Simulator()
        network = Network(sim, latency=2.0)
        arrival = []

        class Sink(Node):
            def handle_message(self, source, message):
                arrival.append(sim.now)

        network.register(Node("src"))
        network.register(Sink("dst"))
        network.latency_factor = 5.0
        network.nodes["src"].send("dst", "x")
        sim.run()
        assert arrival == [10.0]


class TestSoakDeterminism:
    CONFIG = SoakConfig(seed=17, duration=500.0, quiesce_grace=300.0)

    def test_same_seed_is_byte_identical(self):
        first = report_json(run_soak(self.CONFIG))
        second = report_json(run_soak(self.CONFIG))
        assert first == second

    def test_invariants_hold_under_moderate_chaos(self):
        report = run_soak(self.CONFIG)
        assert report["invariants"]["ok"], report["invariants"]
        assert report["workload"]["writes_acked"] > 0

    def test_different_seed_changes_the_report(self):
        other = SoakConfig(seed=18, duration=500.0, quiesce_grace=300.0)
        assert report_json(run_soak(self.CONFIG)) != report_json(run_soak(other))

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            get_profile("cataclysmic")


class TestRetryBudgetExhaustion:
    def test_queue_stops_redelivering_when_budget_dry(self):
        sim = Simulator()
        budget = RetryBudget(total=2)
        queue = ReliableQueue(
            sim,
            retry=RetryPolicy.fixed(max_attempts=10, delay=1.0).with_budget(budget),
        )
        deliveries = []
        queue.subscribe("t", lambda message: (deliveries.append(message), False)[1])
        queue.enqueue("t", {})
        sim.run()
        # Initial delivery + the two budgeted retries, then dead-letter.
        assert len(deliveries) == 3
        assert len(queue.dead_letters) == 1
        assert budget.remaining == 0


class TestDeadlinePropagation:
    @staticmethod
    def make_engine(delivery_delay: float, overall: float):
        sim = Simulator()
        queue = ReliableQueue(sim, delivery_delay=delivery_delay)
        store = LSDBStore(clock=lambda: sim.now)
        manager = TransactionManager(store, sim=sim, queue=queue)
        engine = ProcessEngine(
            manager, queue, timeout=TimeoutPolicy(overall=overall)
        )
        return sim, queue, engine

    def test_deadline_travels_through_a_three_step_process(self):
        sim, queue, engine = self.make_engine(delivery_delay=5.0, overall=100.0)
        seen = []

        @engine.step("a", "t.a")
        def step_a(ctx):
            seen.append(ctx.message.deadline)
            ctx.insert("ent", "k1", {"v": 1})
            ctx.emit("t.b", {})

        @engine.step("b", "t.b")
        def step_b(ctx):
            seen.append(ctx.message.deadline)
            ctx.insert("ent", "k2", {"v": 2})
            ctx.emit("t.c", {})

        @engine.step("c", "t.c")
        def step_c(ctx):
            seen.append(ctx.message.deadline)
            ctx.insert("ent", "k3", {"v": 3})

        engine.start_process("t.a", {})
        sim.run()
        # One deadline, stamped at start, shared by every hop.
        assert seen == [100.0, 100.0, 100.0]
        assert engine.stats.steps_committed == 3

    def test_expired_deadline_stops_the_chain(self):
        sim, queue, engine = self.make_engine(delivery_delay=50.0, overall=60.0)
        ran = []

        @engine.step("a", "t.a")
        def step_a(ctx):
            ran.append("a")
            ctx.insert("ent", "k1", {"v": 1})
            ctx.emit("t.b", {})

        @engine.step("b", "t.b")
        def step_b(ctx):  # pragma: no cover - must not run
            ran.append("b")
            ctx.insert("ent", "k2", {"v": 2})

        engine.start_process("t.a", {})
        sim.run()
        # Step a ran at t=50 (inside the deadline); its emitted event
        # would arrive at t=100 > 60 and is dropped by the queue.
        assert ran == ["a"]
        assert queue.stats.deadline_expired == 1

    def test_engine_retry_cap_gives_up_before_queue_cap(self):
        sim = Simulator()
        queue = ReliableQueue(
            sim, retry=RetryPolicy.fixed(max_attempts=6, delay=1.0)
        )
        store = LSDBStore(clock=lambda: sim.now)
        manager = TransactionManager(store, sim=sim, queue=queue)
        engine = ProcessEngine(
            manager, queue, retry=RetryPolicy(max_attempts=2, base_delay=1.0)
        )
        attempts = []

        @engine.step("boom", "t")
        def boom(ctx):
            attempts.append(ctx.message.attempts)
            raise RuntimeError("still broken")

        engine.start_process("t", {})
        sim.run()
        # The engine ran the handler twice, then acknowledged and gave
        # up — well before the queue's own six-attempt cap.
        assert attempts == [1, 2]
        assert engine.stats.giveups == 1
        assert not queue.dead_letters
