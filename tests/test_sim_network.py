"""Tests for the simulated network: latency, loss, partitions, crashes."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.sim.network import Network, Node, Partition
from repro.sim.scheduler import Simulator


class Recorder(Node):
    """Node that records every delivered message with its arrival time."""

    def __init__(self, node_id: str):
        super().__init__(node_id)
        self.received: list[tuple[float, str, object]] = []

    def handle_message(self, source, message):
        self.received.append((self.network.sim.now, source, message))


def make_pair(latency=1.0, loss=0.0, seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=latency, loss_probability=loss)
    a, b = Recorder("a"), Recorder("b")
    net.register(a)
    net.register(b)
    return sim, net, a, b


class TestDelivery:
    def test_message_arrives_after_latency(self):
        sim, net, a, b = make_pair(latency=3.0)
        a.send("b", {"hello": 1})
        sim.run()
        assert b.received == [(3.0, "a", {"hello": 1})]

    def test_callable_latency_draws_per_message(self):
        sim = Simulator(seed=1)
        net = Network(sim, latency=lambda rng: rng.uniform(1.0, 2.0))
        a, b = Recorder("a"), Recorder("b")
        net.register(a)
        net.register(b)
        for _ in range(5):
            a.send("b", "x")
        sim.run()
        times = [at for at, _, _ in b.received]
        assert len(times) == 5
        assert all(1.0 <= at <= 2.0 for at in times)

    def test_unknown_destination_raises(self):
        sim, net, a, _ = make_pair()
        with pytest.raises(NetworkError):
            a.send("nope", "x")

    def test_unregistered_node_cannot_send(self):
        node = Node("lonely")
        with pytest.raises(NetworkError):
            node.send("anyone", "x")

    def test_duplicate_node_id_rejected(self):
        sim = Simulator()
        net = Network(sim)
        net.register(Node("dup"))
        with pytest.raises(NetworkError):
            net.register(Node("dup"))

    def test_broadcast_reaches_everyone_but_sender(self):
        sim = Simulator()
        net = Network(sim, latency=1.0)
        nodes = [Recorder(f"n{index}") for index in range(4)]
        for node in nodes:
            net.register(node)
        accepted = net.broadcast("n0", "ping")
        sim.run()
        assert accepted == 3
        assert nodes[0].received == []
        assert all(len(node.received) == 1 for node in nodes[1:])


class TestLoss:
    def test_lossy_link_drops_some_messages(self):
        sim, net, a, b = make_pair(loss=0.5, seed=9)
        for _ in range(100):
            a.send("b", "x")
        sim.run()
        assert 20 < len(b.received) < 80
        assert net.stats.dropped_loss == 100 - len(b.received)

    def test_zero_loss_delivers_everything(self):
        sim, net, a, b = make_pair(loss=0.0)
        for _ in range(20):
            a.send("b", "x")
        sim.run()
        assert len(b.received) == 20


class TestPartitions:
    def test_partition_blocks_cross_group_traffic(self):
        sim, net, a, b = make_pair()
        net.partition_into({"a"}, {"b"})
        assert a.send("b", "x") is False
        sim.run()
        assert b.received == []
        assert net.stats.dropped_partition == 1

    def test_partition_allows_intra_group_traffic(self):
        sim = Simulator()
        net = Network(sim, latency=1.0)
        a, b, c = Recorder("a"), Recorder("b"), Recorder("c")
        for node in (a, b, c):
            net.register(node)
        net.partition_into({"a", "b"}, {"c"})
        assert a.send("b", "x") is True
        sim.run()
        assert len(b.received) == 1

    def test_heal_restores_traffic(self):
        sim, net, a, b = make_pair()
        net.partition_into({"a"}, {"b"})
        net.heal()
        a.send("b", "x")
        sim.run()
        assert len(b.received) == 1

    def test_partition_starting_mid_flight_blocks_delivery(self):
        sim, net, a, b = make_pair(latency=10.0)
        a.send("b", "x")
        sim.schedule(5.0, lambda: net.partition_into({"a"}, {"b"}))
        sim.run()
        assert b.received == []

    def test_unlisted_nodes_are_unaffected(self):
        partition = Partition(groups=[{"a"}, {"b"}])
        assert partition.allows("a", "outsider")
        assert partition.allows("outsider", "b")
        assert not partition.allows("a", "b")


class TestCrashes:
    def test_crashed_node_receives_nothing(self):
        sim, net, a, b = make_pair()
        b.crash()
        a.send("b", "x")
        sim.run()
        assert b.received == []
        assert net.stats.dropped_crashed == 1

    def test_crashed_sender_cannot_send(self):
        sim, net, a, b = make_pair()
        a.crash()
        assert a.send("b", "x") is False

    def test_recovered_node_receives_again(self):
        sim, net, a, b = make_pair()
        b.crash()
        b.recover()
        a.send("b", "x")
        sim.run()
        assert len(b.received) == 1

    def test_crash_during_flight_drops_message(self):
        sim, net, a, b = make_pair(latency=10.0)
        a.send("b", "x")
        sim.schedule(5.0, b.crash)
        sim.run()
        assert b.received == []


class TestStats:
    def test_stats_account_for_all_outcomes(self):
        sim, net, a, b = make_pair()
        a.send("b", "ok")
        sim.run()  # deliver before injecting failures
        net.partition_into({"a"}, {"b"})
        a.send("b", "blocked")
        net.heal()
        b.crash()
        a.send("b", "to-crashed")
        sim.run()
        assert net.stats.sent == 3
        assert net.stats.delivered == 1
        assert net.stats.dropped == 2
