"""Property-based tests on the store's replication-facing invariants.

The claim that makes the whole replication stack sound: *any* delivery
schedule of the same event set — reordered, duplicated, interleaved
across origins — produces the same observable state at every store.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsdb.events import EventKind, LogEvent
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta


@st.composite
def multi_origin_streams(draw):
    """Event streams from up to three origins, with per-origin
    contiguous sequences (what real replicas emit)."""
    streams = {}
    for origin in draw(
        st.lists(st.sampled_from(["r1", "r2", "r3"]), min_size=1, max_size=3,
                 unique=True)
    ):
        amounts = draw(st.lists(st.integers(-5, 5), min_size=1, max_size=6))
        streams[origin] = [
            LogEvent(
                lsn=0, timestamp=float(seq), entity_type="acct", entity_key="a",
                kind=EventKind.DELTA,
                payload=Delta.add("balance", amount).to_payload(),
                origin=origin, origin_seq=seq,
            )
            for seq, amount in enumerate(amounts, start=1)
        ]
    return streams


def _flatten(streams):
    events = []
    for origin_events in streams.values():
        events.extend(origin_events)
    return events


def _observable(store: LSDBStore):
    state = store.get("acct", "a")
    return dict(state.fields) if state else None


@settings(max_examples=80)
@given(
    streams=multi_origin_streams(),
    shuffle_seed=st.integers(0, 10_000),
)
def test_any_delivery_order_converges(streams, shuffle_seed):
    import random

    ordered = LSDBStore(origin="x")
    for event in _flatten(streams):
        ordered.apply_remote(event)

    shuffled_events = _flatten(streams)
    random.Random(shuffle_seed).shuffle(shuffled_events)
    shuffled = LSDBStore(origin="y")
    for event in shuffled_events:
        shuffled.apply_remote(event)

    assert _observable(ordered) == _observable(shuffled)
    # No event stuck in the reorder buffer: version vectors match.
    assert ordered.version_vector == shuffled.version_vector


@settings(max_examples=80)
@given(
    streams=multi_origin_streams(),
    duplication_seed=st.integers(0, 10_000),
)
def test_duplicated_delivery_is_harmless(streams, duplication_seed):
    import random

    rng = random.Random(duplication_seed)
    events = _flatten(streams)
    noisy = list(events)
    for event in events:
        if rng.random() < 0.5:
            noisy.append(event)  # duplicate ~half the events
    rng.shuffle(noisy)

    clean = LSDBStore(origin="x")
    for event in events:
        clean.apply_remote(event)
    dirty = LSDBStore(origin="y")
    for event in noisy:
        dirty.apply_remote(event)

    assert _observable(clean) == _observable(dirty)


@settings(max_examples=60)
@given(streams=multi_origin_streams())
def test_cross_shipping_converges_two_stores(streams):
    """Two stores receive disjoint direct streams, then exchange feeds —
    the anti-entropy identity at the store level."""
    left = LSDBStore(origin="left")
    right = LSDBStore(origin="right")
    origins = list(streams)
    for index, origin in enumerate(origins):
        target = left if index % 2 == 0 else right
        for event in streams[origin]:
            target.apply_remote(event)
    # Exchange: each side ships everything it has per origin.
    for origin in origins:
        for event in left.events_from_origin(origin, 0):
            right.apply_remote(event)
        for event in right.events_from_origin(origin, 0):
            left.apply_remote(event)
    assert _observable(left) == _observable(right)


@settings(max_examples=60)
@given(
    amounts=st.lists(st.integers(-5, 5), min_size=1, max_size=10),
    split=st.integers(0, 10),
)
def test_compaction_commutes_with_suffix_application(amounts, split):
    """compact(prefix) then apply suffix == apply everything: compaction
    is transparent to later writes."""
    split = min(split, len(amounts))
    plain = LSDBStore(origin="p")
    compacted = LSDBStore(origin="c")
    for amount in amounts[:split]:
        plain.apply_delta("acct", "a", Delta.add("balance", amount))
        compacted.apply_delta("acct", "a", Delta.add("balance", amount))
    if split:
        compacted.compact(keep_recent=0)
    for amount in amounts[split:]:
        plain.apply_delta("acct", "a", Delta.add("balance", amount))
        compacted.apply_delta("acct", "a", Delta.add("balance", amount))
    assert _observable(plain) == _observable(compacted)
