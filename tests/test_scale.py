"""Scale sanity: the substrate stays fast enough for the experiments.

Loose wall-clock bounds (10× headroom on a laptop) so genuine
complexity regressions fail while machine noise does not.
"""

from __future__ import annotations

import time

from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta
from repro.sim.network import Network, Node
from repro.sim.scheduler import Simulator


def elapsed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


class TestScale:
    def test_hundred_thousand_simulator_events(self):
        sim = Simulator()
        counter = {"n": 0}

        def tick():
            counter["n"] += 1
            if counter["n"] < 100_000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        assert elapsed(sim.run) < 10.0
        assert counter["n"] == 100_000

    def test_fifty_thousand_store_events_with_incremental_reads(self):
        store = LSDBStore()
        for index in range(100):
            store.insert("acct", f"a{index}", {"bal": 0})

        def load():
            for index in range(50_000):
                store.apply_delta(
                    "acct", f"a{index % 100}", Delta.add("bal", 1)
                )

        assert elapsed(load) < 10.0
        # Incremental current-state reads are O(1) afterwards.
        assert store.get("acct", "a0").fields["bal"] == 500

    def test_network_throughput(self):
        sim = Simulator()
        net = Network(sim, latency=1.0)

        class Sink(Node):
            received = 0

            def handle_message(self, source, message):
                Sink.received += 1

        sender = net.register(Node("sender"))
        net.register(Sink("sink"))

        def load():
            for _ in range(20_000):
                sender.send("sink", "x")
            sim.run()

        assert elapsed(load) < 10.0
        assert Sink.received == 20_000

    def test_compaction_of_large_log(self):
        store = LSDBStore()
        store.insert("acct", "a", {"bal": 0})
        for _ in range(20_000):
            store.apply_delta("acct", "a", Delta.add("bal", 1))

        def compact():
            store.compact(keep_recent=100)

        assert elapsed(compact) < 10.0
        assert store.live_events <= 102
        assert store.get("acct", "a").fields["bal"] == 20_000
