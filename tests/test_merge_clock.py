"""Tests for logical clocks and version vectors."""

from __future__ import annotations

from repro.merge.clock import LamportClock, Ordering, VectorClock, VersionVector


class TestLamportClock:
    def test_tick_is_monotone(self):
        clock = LamportClock()
        stamps = [clock.tick() for _ in range(5)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 5

    def test_observe_jumps_past_remote(self):
        clock = LamportClock()
        clock.tick()
        assert clock.observe(100) == 101

    def test_observe_smaller_remote_still_ticks(self):
        clock = LamportClock(start=50)
        assert clock.observe(3) == 51


class TestVectorClock:
    def test_increment_returns_new_instance(self):
        base = VectorClock()
        bumped = base.increment("r1")
        assert base.get("r1") == 0
        assert bumped.get("r1") == 1

    def test_causal_chain_orders_before_after(self):
        first = VectorClock().increment("r1")
        second = first.increment("r1")
        assert first.compare(second) is Ordering.BEFORE
        assert second.compare(first) is Ordering.AFTER

    def test_independent_updates_are_concurrent(self):
        a = VectorClock().increment("r1")
        b = VectorClock().increment("r2")
        assert a.compare(b) is Ordering.CONCURRENT
        assert a.concurrent_with(b)

    def test_equal_clocks(self):
        a = VectorClock({"r1": 2, "r2": 1})
        b = VectorClock({"r2": 1, "r1": 2})
        assert a.compare(b) is Ordering.EQUAL
        assert a == b
        assert hash(a) == hash(b)

    def test_merge_is_componentwise_max(self):
        a = VectorClock({"r1": 3, "r2": 1})
        b = VectorClock({"r1": 1, "r3": 4})
        merged = a.merge(b)
        assert merged.to_dict() == {"r1": 3, "r2": 1, "r3": 4}

    def test_merge_dominates_both_inputs(self):
        a = VectorClock({"r1": 3})
        b = VectorClock({"r2": 2})
        merged = a.merge(b)
        assert merged.dominates(a) and merged.dominates(b)

    def test_missing_component_treated_as_zero(self):
        a = VectorClock({"r1": 1})
        b = VectorClock({"r1": 1, "r2": 1})
        assert a.compare(b) is Ordering.BEFORE


class TestVersionVector:
    def test_record_is_monotone(self):
        vector = VersionVector()
        vector.record("r1", 5)
        vector.record("r1", 3)  # lower: ignored
        assert vector.get("r1") == 5

    def test_advance_increments(self):
        vector = VersionVector()
        assert vector.advance("r1") == 1
        assert vector.advance("r1") == 2

    def test_missing_from_reports_gaps(self):
        mine = VersionVector({"r1": 2})
        theirs = VersionVector({"r1": 5, "r2": 3})
        gaps = mine.missing_from(theirs)
        assert gaps == {"r1": (2, 5), "r2": (0, 3)}

    def test_no_gaps_when_ahead(self):
        mine = VersionVector({"r1": 9})
        theirs = VersionVector({"r1": 4})
        assert mine.missing_from(theirs) == {}

    def test_merge_absorbs_other(self):
        mine = VersionVector({"r1": 2})
        theirs = VersionVector({"r1": 5, "r2": 1})
        mine.merge(theirs)
        assert mine == VersionVector({"r1": 5, "r2": 1})

    def test_equality_ignores_zero_components(self):
        assert VersionVector({"r1": 1, "r2": 0}) == VersionVector({"r1": 1})

    def test_snapshot_is_immutable_view(self):
        vector = VersionVector({"r1": 2})
        snapshot = vector.snapshot()
        vector.advance("r1")
        assert snapshot.get("r1") == 2
        assert vector.get("r1") == 3
