"""Tests for the CRM, SCM (ATP) and HR applications."""

from __future__ import annotations

import pytest

from repro.apps.crm import CRMApp
from repro.apps.hr import HRApp
from repro.apps.scm import SupplyChainApp
from repro.core.compensation import CompensationManager, TentativeStatus
from repro.core.constraints import ConstraintManager
from repro.core.process import ProcessEngine
from repro.core.transaction import TransactionManager
from repro.lsdb.store import LSDBStore
from repro.queues.reliable import ReliableQueue
from repro.sim.scheduler import Simulator


def make_crm(clock=None):
    store = LSDBStore()
    constraints = ConstraintManager(store, clock=clock)
    return CRMApp(TransactionManager(store, constraints=constraints))


class TestCRM:
    def test_in_order_entry_has_no_violations(self):
        crm = make_crm()
        crm.enter_customer("c1", "ACME")
        crm.enter_lead("l1", "c1")
        crm.qualify_lead("opp1", "l1", "c1")
        crm.win_opportunity("so1", "opp1")
        assert crm.metrics().total_violations == 0

    def test_out_of_order_entry_commits_with_violations(self):
        crm = make_crm()
        crm.win_opportunity("so1", "opp1")           # nothing exists yet
        crm.qualify_lead("opp1", "l1", "c1")         # lead+customer missing
        assert len(crm.open_violations()) == 3
        # Data was never refused:
        assert crm.store.get("sales_order", "so1") is not None

    def test_violations_repair_as_referents_arrive(self):
        crm = make_crm()
        crm.qualify_lead("opp1", "l1", "c1")
        crm.enter_lead("l1", "c1")
        crm.repair_pass()
        remaining = {v.constraint_name for v in crm.open_violations()}
        assert "opp-lead" not in remaining        # lead arrived
        crm.enter_customer("c1", "ACME")          # repairs the rest
        metrics = crm.metrics()
        assert metrics.open_violations == 0
        assert metrics.repair_rate == 1.0

    def test_time_to_repair_measured(self):
        clock = {"now": 0.0}
        crm = make_crm(clock=lambda: clock["now"])
        crm.enter_lead("l1", "c1")
        clock["now"] = 30.0
        crm.enter_customer("c1", "ACME")
        metrics = crm.metrics()
        assert metrics.mean_time_to_repair == 30.0

    def test_requires_constraint_manager(self):
        with pytest.raises(ValueError):
            CRMApp(TransactionManager(LSDBStore()))


class TestSCM:
    def _make(self):
        sim = Simulator()
        store = LSDBStore(clock=lambda: sim.now)
        manager = TransactionManager(store, sim=sim)
        compensation = CompensationManager(store, clock=lambda: sim.now)
        return sim, SupplyChainApp(manager, compensation), compensation

    def test_quote_reserves_quantity(self):
        _, scm, _ = self._make()
        scm.add_item("steel", 100)
        scm.quote_offer("steel", 40, price=9.5, deadline=50.0, purchaser="acme")
        assert scm.available_to_purchase("steel") == 60

    def test_purchase_before_deadline_is_honored(self):
        _, scm, _ = self._make()
        scm.add_item("steel", 100)
        offer = scm.quote_offer("steel", 40, 9.5, deadline=50.0, purchaser="acme")
        outcome = scm.purchase(offer.op_id)
        assert outcome.honored
        item = scm.store.require("scm_item", "steel")
        assert item.fields["shipped"] == 40
        assert item.fields["on_hand"] == 60
        assert item.fields["reserved"] == 0

    def test_expired_offer_releases_reservation(self):
        sim, scm, _ = self._make()
        scm.add_item("steel", 100)
        offer = scm.quote_offer("steel", 40, 9.5, deadline=10.0, purchaser="acme")
        sim.schedule(20.0, lambda: None)
        sim.run()
        assert scm.expire_offers() == 1
        assert scm.available_to_purchase("steel") == 100
        outcome = scm.purchase(offer.op_id)
        assert not outcome.honored
        assert "expired" in outcome.reason

    def test_disaster_reneges_open_offers_with_apologies(self):
        _, scm, compensation = self._make()
        scm.add_item("steel", 100)
        scm.quote_offer("steel", 40, 9.5, deadline=50.0, purchaser="acme")
        scm.quote_offer("steel", 20, 9.0, deadline=50.0, purchaser="globex")
        reneged = scm.warehouse_disaster("steel")
        assert len(reneged) == 2
        assert compensation.ledger.by_reason() == {"warehouse disaster": 2}
        item = scm.store.require("scm_item", "steel")
        assert item.fields["on_hand"] == 0
        assert item.fields["lost"] == 100
        assert item.fields["reserved"] == 0

    def test_disaster_between_quote_and_purchase(self):
        """Reality is realer than the information system (2.1/2.9)."""
        _, scm, compensation = self._make()
        scm.add_item("steel", 50)
        offer = scm.quote_offer("steel", 30, 9.5, deadline=100.0, purchaser="acme")
        # Disaster cancels the offer; purchase arrives afterwards.
        scm.warehouse_disaster("steel")
        outcome = scm.purchase(offer.op_id)
        assert not outcome.honored
        assert compensation.ledger.count() == 1

    def test_confirmed_offer_marked_in_store(self):
        _, scm, compensation = self._make()
        scm.add_item("steel", 100)
        offer = scm.quote_offer("steel", 10, 9.5, deadline=50.0, purchaser="acme")
        scm.purchase(offer.op_id)
        assert compensation.get_operation(offer.op_id).status is TentativeStatus.CONFIRMED


class TestHR:
    def _make(self, collapsed=False):
        sim = Simulator()
        queue = ReliableQueue(sim)
        store = LSDBStore(clock=lambda: sim.now)
        manager = TransactionManager(store, sim=sim, queue=queue)
        engine = ProcessEngine(manager, queue)
        return sim, engine, HRApp(engine, collapsed=collapsed)

    def test_transfer_completes_through_all_steps(self):
        sim, engine, hr = self._make()
        hr.hire("emp1", "sales", "key-accounts")
        transfer_id = hr.start_transfer("emp1", "marketing", "emp2")
        sim.run()
        status = hr.status("emp1", transfer_id)
        assert status.complete
        assert status.department == "marketing"
        assert status.responsibility_owner == "emp2"
        assert engine.stats.steps_committed == 4

    def test_collapsed_transfer_single_step_same_outcome(self):
        sim, engine, hr = self._make(collapsed=True)
        hr.hire("emp1", "sales", "key-accounts")
        transfer_id = hr.start_transfer("emp1", "marketing", "emp2")
        sim.run()
        status = hr.status("emp1", transfer_id)
        assert status.complete
        assert engine.stats.steps_run == 1  # one fused transaction

    def test_intermediate_state_visible_between_steps(self):
        sim, engine, hr = self._make()
        hr.hire("emp1", "sales", "key-accounts")
        transfer_id = hr.start_transfer("emp1", "marketing", "emp2")
        # Run just the first step's delivery.
        sim.run(max_events=3)
        employee = hr.store.get("employee", "emp1")
        if employee.get("status") == "transferring":
            # The in-between state is a legitimate, visible business
            # state (subjective consistency), not an anomaly.
            assert employee.get("department") == "sales"
        sim.run()
        assert hr.status("emp1", transfer_id).complete

    def test_multiple_concurrent_transfers(self):
        sim, engine, hr = self._make()
        hr.hire("emp1", "sales", "a")
        hr.hire("emp2", "support", "b")
        first = hr.start_transfer("emp1", "marketing", "emp9")
        second = hr.start_transfer("emp2", "legal", "emp9")
        sim.run()
        assert hr.status("emp1", first).complete
        assert hr.status("emp2", second).department == "legal"
