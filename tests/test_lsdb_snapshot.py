"""Tests for snapshots and time-travel reads."""

from __future__ import annotations

import pytest

from repro.lsdb.events import EventKind, LogEvent
from repro.lsdb.log import AppendOnlyLog
from repro.lsdb.rollup import Rollup
from repro.lsdb.snapshot import SnapshotManager
from repro.merge.deltas import Delta


def delta_event(amount, key="k"):
    return LogEvent(
        lsn=0, timestamp=0.0, entity_type="t", entity_key=key,
        kind=EventKind.DELTA, payload=Delta.add("v", amount).to_payload(),
    )


class TestSnapshotTaking:
    def test_automatic_interval_snapshots(self):
        log = AppendOnlyLog()
        manager = SnapshotManager(log, Rollup(), interval=3)
        for _ in range(7):
            log.append(delta_event(1))
        assert manager.count == 2
        assert manager.latest().lsn == 6

    def test_manual_snapshot(self):
        log = AppendOnlyLog()
        manager = SnapshotManager(log, Rollup())
        log.append(delta_event(5))
        snapshot = manager.take_snapshot()
        assert snapshot.lsn == 1
        assert snapshot.states[("t", "k")].fields["v"] == 5

    def test_snapshot_is_incremental_over_previous(self):
        log = AppendOnlyLog()
        manager = SnapshotManager(log, Rollup())
        log.append(delta_event(1))
        manager.take_snapshot()
        log.append(delta_event(2))
        second = manager.take_snapshot()
        assert second.states[("t", "k")].fields["v"] == 3


class TestStateAt:
    def _prepared(self):
        log = AppendOnlyLog()
        manager = SnapshotManager(log, Rollup(), interval=2)
        for _ in range(6):
            log.append(delta_event(1))
        return log, manager

    def test_state_at_head(self):
        _, manager = self._prepared()
        assert manager.state_at()[("t", "k")].fields["v"] == 6

    def test_state_at_historic_lsn(self):
        _, manager = self._prepared()
        assert manager.state_at(3)[("t", "k")].fields["v"] == 3

    def test_state_at_before_first_snapshot_folds_from_scratch(self):
        _, manager = self._prepared()
        assert manager.state_at(1)[("t", "k")].fields["v"] == 1

    def test_state_at_zero_is_empty(self):
        _, manager = self._prepared()
        assert manager.state_at(0) == {}

    def test_snapshot_states_are_isolated_from_later_reads(self):
        log, manager = self._prepared()
        snap = manager.latest()
        before = snap.states[("t", "k")].fields["v"]
        manager.state_at(6)
        log.append(delta_event(10))
        manager.state_at(7)
        assert snap.states[("t", "k")].fields["v"] == before


class TestPrune:
    def test_prune_keeps_newest(self):
        log = AppendOnlyLog()
        manager = SnapshotManager(log, Rollup(), interval=1)
        for _ in range(5):
            log.append(delta_event(1))
        assert manager.count == 5
        pruned = manager.prune(keep_last=2)
        assert pruned == 3
        assert manager.count == 2
        assert manager.latest().lsn == 5

    def test_prune_rejects_negative(self):
        manager = SnapshotManager(AppendOnlyLog(), Rollup())
        with pytest.raises(ValueError):
            manager.prune(keep_last=-1)

    def test_reads_still_work_after_prune(self):
        log = AppendOnlyLog()
        manager = SnapshotManager(log, Rollup(), interval=1)
        for _ in range(5):
            log.append(delta_event(1))
        manager.prune(keep_last=1)
        # Below the kept snapshot: full fold over live log still works.
        assert manager.state_at(2)[("t", "k")].fields["v"] == 2
