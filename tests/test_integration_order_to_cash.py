"""Capstone integration: an order-to-cash flow across every layer.

One serialization unit runs a business end to end the way the paper's
principles prescribe: out-of-order CRM entry (2.2) feeds a SOUPS order
pipeline (2.4/2.6) whose payment and shipment confirmations join into a
settlement (3.1), paid into an insert-only ledger (2.7/2.8) with
deferred revenue aggregation (2.3) — all over an at-least-once queue
with lossy acks (2.4), finishing with compaction that preserves the
regulatory trail (2.7).
"""

from __future__ import annotations

from repro.apps.banking import BankApp
from repro.core.constraints import ConstraintManager, ReferentialConstraint
from repro.core.policy import RetryPolicy
from repro.core.process import JoinContext, ProcessEngine
from repro.core.transaction import TransactionManager
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta
from repro.queues.reliable import ReliableQueue
from repro.sim.scheduler import Simulator

ORDERS = 10


class TestOrderToCash:
    def _build(self, seed=17):
        sim = Simulator(seed=seed)
        queue = ReliableQueue(
            sim, ack_loss_probability=0.25, retry=RetryPolicy(max_attempts=40, base_delay=2.0)
        )
        store = LSDBStore(name="otc", clock=lambda: sim.now)
        constraints = ConstraintManager(store, queue, clock=lambda: sim.now)
        constraints.add(
            ReferentialConstraint("order-customer", "order", "customer_id", "customer")
        )
        txm = TransactionManager(
            store, sim=sim, queue=queue, constraints=constraints
        )
        engine = ProcessEngine(txm, queue)
        bank = BankApp(txm)
        # The violation topics need a consumer (here: a monitoring sink),
        # or their events retry to the dead-letter list.
        for topic in ("constraint.violated", "constraint.repaired",
                      "bank.op_posted"):
            queue.subscribe(topic, lambda message: True)
        return sim, queue, store, constraints, engine, bank

    def test_full_flow(self):
        sim, queue, store, constraints, engine, bank = self._build()
        bank.open_account("acct-shop", owner="the-shop")

        # Pipeline: order accepted -> picked -> shipped, while payment
        # runs independently; settlement joins the two streams.
        @engine.step("accept", "order.requested")
        def accept(ctx):
            payload = ctx.message.payload
            ctx.insert("order", payload["order"], {
                "customer_id": payload["customer"],
                "amount": payload["amount"],
                "status": "accepted",
            })
            ctx.emit("order.accepted", dict(payload))

        @engine.step("pick", "order.accepted")
        def pick(ctx):
            payload = ctx.message.payload
            ctx.insert("pick_list", payload["order"], {"lines": 1})
            ctx.emit("shipment.confirmed", dict(payload))

        def settle(ctx: JoinContext):
            payload = ctx.messages["payment.confirmed"].payload
            ctx.set_fields("order", payload["order"], {"status": "settled"})
            ctx.defer(
                "post-to-ledger",
                lambda s, p=payload: _post_payment(bank, p),
            )

        def _post_payment(bank_app, payload):
            bank_app.deposit(
                "acct-shop", payload["amount"], memo=payload["order"]
            )

        engine.register_join(
            "settlement",
            ["payment.confirmed", "shipment.confirmed"],
            correlate=lambda message: message.payload["order"],
            handler=settle,
        )

        # Drive: orders reference customers entered LATER (2.2), and the
        # payment stream is independent of the shipment stream.
        total = 0
        for index in range(ORDERS):
            amount = 10 + index
            total += amount
            payload = {
                "order": f"o{index}",
                "customer": f"c{index}",
                "amount": amount,
            }
            sim.schedule_at(
                float(index),
                lambda p=payload: engine.start_process("order.requested", p),
            )
            sim.schedule_at(
                float(index) + 7.5,
                lambda p=payload: engine.start_process("payment.confirmed", p),
            )
        # Customers arrive after their orders.
        for index in range(ORDERS):
            sim.schedule_at(
                30.0 + index,
                lambda i=index: _enter_customer(engine, i),
            )

        def _enter_customer(eng, index):
            tx = eng.tx_manager.begin()
            tx.insert("customer", f"c{index}", {"name": f"Customer {index}"})
            tx.commit()
            constraints.attempt_repairs()

        sim.run()

        # 1. Every order settled exactly once.
        settled = [
            state for state in store.entities_of_type("order")
            if state.get("status") == "settled"
        ]
        assert len(settled) == ORDERS
        # 2. The ledger received exactly one deposit per order.
        assert bank.balance("acct-shop") == total
        assert bank.audit_balance("acct-shop") == total
        assert len(bank.statement("acct-shop")) == ORDERS
        # 3. Out-of-order references all repaired.
        assert constraints.open_violations() == []
        # At least one dangling-customer violation per order (entry), and
        # possibly another per settlement update that re-touched the
        # still-dangling order — every one repaired.
        assert len(constraints.repaired_violations()) >= ORDERS
        # 4. The lossy queue really did redeliver.
        assert queue.stats.redelivered > 0
        assert not queue.dead_letters
        # 5. Compaction bounds the log, keeps the trail, preserves state.
        balance_before = bank.balance("acct-shop")
        live_before = store.live_events
        store.compact(keep_recent=10)
        assert store.live_events < live_before
        assert bank.balance("acct-shop") == balance_before
        assert len(store.archive.regulatory_events()) > 0

    def test_flow_is_deterministic(self):
        def run(seed):
            sim, queue, store, constraints, engine, bank = self._build(seed)
            bank.open_account("acct-shop", owner="shop")

            @engine.step("accept", "order.requested")
            def accept(ctx):
                ctx.insert("order", ctx.message.payload["order"], {"status": "ok"})

            for index in range(5):
                engine.start_process("order.requested", {"order": f"o{index}"})
            sim.run()
            return (queue.stats.delivered, queue.stats.redelivered,
                    engine.stats.steps_committed)

        assert run(3) == run(3)
