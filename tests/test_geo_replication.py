"""Geo-distributed partial replication (PR 8 tentpole).

Four layers under test: the :class:`~repro.sim.topology.SiteTopology`
the network layers WAN links onto, the
:class:`~repro.replication.geo.WanGateway` that aggregates a site's
outbound traffic into per-link frames, the
:class:`~repro.replication.geo.GeoReplicaGroup` whose shipping consults
the placement (a site only receives frames for shards it hosts), and
the redesigned cluster API (``with_topology`` / ``with_placement`` /
sited reads / sited front door) that assembles them.
"""

from __future__ import annotations

import pytest

from repro.core.consistency import ConsistencyLevel
from repro.core.readpath import ConsistencyUnavailable, ReadRequest, ReadResult
from repro.errors import ReplicationError
from repro.partition.placement import PlacementPolicy
from repro.replication.geo import GeoReplicaGroup, site_of_replica
from repro.sim.network import Network, Node
from repro.sim.scheduler import Simulator
from repro.sim.topology import SiteTopology, WanLink


def make_topology(sim, network, sites=("dc1", "dc2", "dc3"), **kwargs):
    kwargs.setdefault("default_link", WanLink(latency=30.0))
    topology = SiteTopology(sites, **kwargs)
    network.attach_topology(topology)
    return topology


def make_geo(
    sim,
    *,
    sites=("dc1", "dc2", "dc3"),
    replicas=2,
    shards=8,
    lan=2.0,
    wan=30.0,
    **kwargs,
):
    network = Network(sim, latency=lan)
    topology = make_topology(
        sim, network, sites, default_link=WanLink(latency=wan)
    )
    placement = PlacementPolicy(sites, replicas=replicas, shards=shards)
    group = GeoReplicaGroup(sim, network, topology, placement, **kwargs)
    return network, topology, placement, group


class Recorder(Node):
    def __init__(self, node_id, sim):
        super().__init__(node_id)
        self.sim = sim
        self.deliveries = []

    def handle_message(self, source, message):
        self.deliveries.append((self.sim.now, source, message))


class TestTopologyOnNetwork:
    def test_cross_site_send_pays_the_wan_latency(self):
        sim = Simulator(seed=1)
        network = Network(sim, latency=2.0)
        topology = make_topology(sim, network)
        a, b = Recorder("a", sim), Recorder("b", sim)
        network.register(a)
        network.register(b)
        topology.assign("a", "dc1")
        topology.assign("b", "dc2")
        a.send("b", {"x": 1})
        sim.run()
        (at, _, _), = b.deliveries
        assert at == 32.0  # 2.0 LAN base + 30.0 constant WAN leg

    def test_same_site_traffic_sees_no_wan(self):
        sim = Simulator(seed=1)
        network = Network(sim, latency=2.0)
        topology = make_topology(sim, network)
        a, b = Recorder("a", sim), Recorder("b", sim)
        network.register(a)
        network.register(b)
        topology.assign("a", "dc1")
        topology.assign("b", "dc1")
        a.send("b", {"x": 1})
        sim.run()
        (at, _, _), = b.deliveries
        assert at == 2.0
        assert network.stats.links == {}  # nothing booked against a link

    def test_attaching_a_topology_shifts_no_randomness(self):
        """Same seed, same same-site workload: delivery times must be
        byte-identical with and without the (lossless) topology —
        arming geo must not reshuffle existing single-site runs."""
        def deliveries(with_topology):
            sim = Simulator(seed=9)
            network = Network(
                sim,
                latency=lambda rng: rng.uniform(1.0, 3.0),
                loss_probability=0.2,
            )
            if with_topology:
                topology = make_topology(sim, network)
                # Both endpoints in one site: no WAN leg, no loss coin.
                topology.assign("a", "dc1")
                topology.assign("b", "dc1")
            a, b = Recorder("a", sim), Recorder("b", sim)
            network.register(a)
            network.register(b)
            for index in range(50):
                sim.schedule_at(
                    float(index), lambda i=index: a.send("b", {"n": i})
                )
            sim.run()
            return b.deliveries

        assert deliveries(False) == deliveries(True)

    def test_per_link_stats_are_split_by_direction(self):
        sim = Simulator(seed=1)
        network = Network(sim, latency=1.0)
        topology = make_topology(sim, network)
        a, b = Recorder("a", sim), Recorder("b", sim)
        network.register(a)
        network.register(b)
        topology.assign("a", "dc1")
        topology.assign("b", "dc2")
        a.send("b", {"x": 1})
        a.send_batch("b", [{"x": 2}, {"x": 3}], size=2)
        b.send("a", {"x": 4})
        sim.run()
        rendered = network.stats.links_to_dict()
        assert rendered["dc1->dc2"]["payloads"] == 3
        assert rendered["dc1->dc2"]["frames"] == 2  # the single + the batch
        assert rendered["dc2->dc1"]["payloads"] == 1
        assert network.stats.wan_payloads == 4

    def test_wan_loss_coin_only_flips_on_lossy_links(self):
        sim = Simulator(seed=3)
        network = Network(sim, latency=1.0)
        topology = make_topology(
            sim, network, default_link=WanLink(latency=5.0, loss_probability=1.0)
        )
        a, b = Recorder("a", sim), Recorder("b", sim)
        network.register(a)
        network.register(b)
        topology.assign("a", "dc1")
        topology.assign("b", "dc2")
        a.send("b", {"x": 1})
        sim.run()
        assert b.deliveries == []
        assert network.stats.links[("dc1", "dc2")].dropped_loss == 1


class TestGatewayAggregation:
    def test_one_instant_one_frame_per_link(self):
        """Every shard shipping to the same destination site in one
        instant shares one WAN frame — the per-link aggregation that
        makes partial replication's frame count per-link, not
        per-shard."""
        sim = Simulator(seed=1)
        network, topology, placement, group = make_geo(
            sim, replicas=2, shards=8, ship_interval=10.0,
            anti_entropy_interval=0.0,
        )
        for index in range(16):  # touch many shards in one instant
            group.write_set_fields("order", f"k{index}", {"n": index})
        sim.run(until=11.0)  # exactly one ship round fires
        stats = network.stats
        assert stats.wan_payloads >= 16
        # At most one frame per directed link per instant: 3 sites give
        # 6 directed links, and only one ship instant has fired.
        assert stats.wan_frames <= 6
        for link in stats.links.values():
            assert link.frames <= 1

    def test_partial_replication_only_ships_to_hosting_sites(self):
        sim = Simulator(seed=1)
        network, topology, placement, group = make_geo(
            sim, replicas=2, shards=8, ship_interval=10.0,
        )
        group.write_set_fields("order", "k1", {"n": 1})
        sim.run(until=200.0)
        assert group.is_converged()
        shard = placement.shard_of("order", "k1")
        hosting = set(placement.sites_for_shard(shard))
        absent = set(placement.sites) - hosting
        assert absent  # replicas=2 of 3 sites: someone is left out
        for site in absent:
            # The non-hosting site has no replica of the shard at all.
            assert all(
                replica.shard != shard
                for replica in group.site_replicas(site)
            )
            state = None
            for replica in group.groups[shard]:
                state = replica.store.get("order", "k1")
                assert state is not None and state.fields["n"] == 1

    def test_replica_ids_carry_their_site(self):
        sim = Simulator(seed=1)
        _, _, placement, group = make_geo(sim, replicas=2, shards=4)
        for replica_id, replica in group.replicas.items():
            assert site_of_replica(replica_id) == replica.site
            assert placement.hosts(replica.site, replica.shard)


class TestGeoReads:
    def _converged_group(self, sim, **kwargs):
        network, topology, placement, group = make_geo(sim, **kwargs)
        group.write_set_fields("order", "k1", {"n": 7})
        sim.run(until=300.0)
        assert group.is_converged()
        return placement, group

    def test_sited_read_serves_locally_when_hosted(self):
        sim = Simulator(seed=1)
        placement, group = self._converged_group(sim, replicas=2, shards=8)
        shard = placement.shard_of("order", "k1")
        for site in placement.sites_for_shard(shard):
            result = group.read(
                "order", "k1", request=ReadRequest.eventual(), site=site
            )
            assert isinstance(result, ReadResult)
            assert result.site == site  # served without crossing the WAN
            assert result.fields["n"] == 7

    def test_remote_site_read_reports_the_serving_site(self):
        sim = Simulator(seed=1)
        placement, group = self._converged_group(sim, replicas=2, shards=8)
        shard = placement.shard_of("order", "k1")
        hosting = set(placement.sites_for_shard(shard))
        outsider = next(iter(set(placement.sites) - hosting))
        result = group.read(
            "order", "k1", request=ReadRequest.eventual(), site=outsider
        )
        assert result.site in hosting
        assert result.served_by.startswith(f"{result.site}/")

    def test_strong_read_requires_the_home_site(self):
        sim = Simulator(seed=1)
        placement, group = self._converged_group(sim, replicas=2, shards=8)
        shard = placement.shard_of("order", "k1")
        home = placement.home_site(shard)
        result = group.read("order", "k1", request=ReadRequest.strong())
        assert result.delivered_level is ConsistencyLevel.STRONG
        assert result.site == home
        # Crash the home gateway: a non-degradable strong read refuses
        # rather than lying about the guarantee.
        group.gateways[home].crash()
        with pytest.raises(ConsistencyUnavailable):
            group.read(
                "order",
                "k1",
                request=ReadRequest(
                    level=ConsistencyLevel.STRONG, allow_degraded=False
                ),
            )
        # The degradable form fails over and stamps honestly.
        degraded = group.read("order", "k1", request=ReadRequest.strong())
        assert degraded.delivered_level is ConsistencyLevel.BOUNDED_STALENESS
        assert degraded.site != home

    def test_all_hosting_sites_down_is_unavailable(self):
        sim = Simulator(seed=1)
        placement, group = self._converged_group(sim, replicas=2, shards=8)
        shard = placement.shard_of("order", "k1")
        for site in placement.sites_for_shard(shard):
            group.gateways[site].crash()
        with pytest.raises(ConsistencyUnavailable):
            group.read("order", "k1", request=ReadRequest.eventual())

    def test_writes_fail_over_to_the_next_preference_site(self):
        sim = Simulator(seed=1)
        network, topology, placement, group = make_geo(
            sim, replicas=2, shards=8
        )
        shard = placement.shard_of("order", "k1")
        preference = placement.sites_for_shard(shard)
        group.gateways[preference[0]].crash()
        group.write_set_fields("order", "k1", {"n": 1})
        coordinator = group.coordinator("order", "k1")
        assert coordinator.site == preference[1]
        for site in preference[1:]:
            group.gateways[site].crash()
        with pytest.raises(ReplicationError):
            group.write_set_fields("order", "k1", {"n": 2})


class TestClusterGeoApi:
    def _geo_cluster(self, **door):
        from repro.cluster import Cluster

        builder = (
            Cluster.build(seed=7)
            .with_tracing()
            .with_topology(("dc1", "dc2", "dc3"), wan_latency=30.0)
            .with_placement(replicas=2, shards=8)
        )
        if door:
            builder = builder.with_front_door(**door)
        return builder.create()

    def test_placement_requires_topology(self):
        from repro.cluster import Cluster

        with pytest.raises(ValueError, match="requires with_topology"):
            Cluster.build().with_placement(replicas=2).create()

    def test_placement_replaces_with_replicas(self):
        from repro.cluster import Cluster

        with pytest.raises(ValueError, match="one replication style"):
            (
                Cluster.build()
                .with_topology(("dc1", "dc2"))
                .with_placement(replicas=2)
                .with_replicas(3)
                .create()
            )

    def test_prebuilt_policy_must_match_topology_sites(self):
        from repro.cluster import Cluster

        policy = PlacementPolicy(["dc1", "dc9"], replicas=2)
        with pytest.raises(ValueError, match="do not match"):
            (
                Cluster.build()
                .with_topology(("dc1", "dc2"))
                .with_placement(policy=policy)
                .create()
            )

    def test_site_read_requires_a_geo_cluster(self):
        from repro.cluster import Cluster

        cluster = Cluster.build().with_replicas(2).create()
        with pytest.raises(ValueError, match="site="):
            cluster.read("order", "k1", site="dc1")

    def test_cluster_read_reports_serving_site(self):
        cluster = self._geo_cluster()
        cluster.replication.write_set_fields("order", "k1", {"n": 3})
        cluster.sim.run(until=300.0)
        shard = cluster.placement.shard_of("order", "k1")
        home = cluster.placement.home_site(shard)
        result = cluster.read(
            "order", "k1", request=ReadRequest.eventual(), site=home
        )
        assert result.site == home
        assert result.fields["n"] == 3

    def test_sited_front_door_prefers_local_rungs(self):
        cluster = self._geo_cluster(site="dc2")
        cluster.replication.write_set_fields("order", "k1", {"n": 3})
        cluster.sim.run(until=300.0)
        result = cluster.read(
            "order",
            "k1",
            request=ReadRequest(
                level=ConsistencyLevel.BOUNDED_STALENESS, tenant="t1"
            ),
        )
        assert result.ok and result.fields["n"] == 3
        shard = cluster.placement.shard_of("order", "k1")
        if cluster.placement.hosts("dc2", shard):
            assert result.site == "dc2"
        else:
            assert result.site in cluster.placement.sites_for_shard(shard)
