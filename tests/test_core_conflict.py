"""Tests for the single end-to-end conflict-resolution mechanism."""

from __future__ import annotations

import pytest

from repro.core.conflict import CandidateWrite, ConflictResolver, Strategy
from repro.merge.deltas import Delta


def delta_candidate(origin, amount, ts=1.0):
    return CandidateWrite(timestamp=ts, origin=origin, delta=Delta.add("qty", amount))


def value_candidate(origin, value, ts=1.0):
    return CandidateWrite(timestamp=ts, origin=origin, value=value)


class TestCommutative:
    def test_deltas_compose_with_no_losers(self):
        resolver = ConflictResolver()
        resolver.register("stock", "qty", Strategy.COMMUTATIVE)
        resolution = resolver.resolve(
            "stock", "qty", [delta_candidate("r1", -2), delta_candidate("r2", -3)]
        )
        assert resolution.delta.numeric["qty"] == -5
        assert resolution.lost_updates == 0
        assert resolver.stats["commutative"] == 1

    def test_candidate_without_delta_rejected(self):
        resolver = ConflictResolver()
        resolver.register("stock", "qty", Strategy.COMMUTATIVE)
        with pytest.raises(ValueError):
            resolver.resolve("stock", "qty", [value_candidate("r1", 7)])


class TestLWW:
    def test_latest_timestamp_wins(self):
        resolver = ConflictResolver()
        resolution = resolver.resolve(
            "doc", "title",
            [value_candidate("r1", "old", ts=1.0), value_candidate("r2", "new", ts=2.0)],
        )
        assert resolution.value == "new"
        assert resolution.lost_updates == 1
        assert resolver.stats["lost_updates"] == 1

    def test_ties_break_by_origin(self):
        resolver = ConflictResolver()
        resolution = resolver.resolve(
            "doc", "title",
            [value_candidate("r2", "b", ts=1.0), value_candidate("r1", "a", ts=1.0)],
        )
        assert resolution.value == "b"  # origin r2 > r1

    def test_lww_is_default_strategy(self):
        resolver = ConflictResolver()
        assert resolver.strategy_for("anything", "field") is Strategy.LWW

    def test_single_candidate_has_no_losers(self):
        resolver = ConflictResolver()
        resolution = resolver.resolve("doc", "title", [value_candidate("r1", "only")])
        assert resolution.value == "only"
        assert resolution.lost_updates == 0


class TestEscalation:
    def test_escalation_invokes_handler(self):
        escalations = []
        resolver = ConflictResolver(
            on_escalate=lambda etype, fname, candidates: escalations.append(
                (etype, fname, len(candidates))
            )
        )
        resolver.register("order", "status", Strategy.ESCALATE)
        resolution = resolver.resolve(
            "order", "status",
            [value_candidate("r1", "shipped"), value_candidate("r2", "cancelled")],
        )
        assert resolution.escalated
        assert escalations == [("order", "status", 2)]
        assert resolver.stats["escalated"] == 1

    def test_escalation_to_compensation_manager(self):
        from repro.core.compensation import CompensationManager
        from repro.lsdb.store import LSDBStore

        manager = CompensationManager(LSDBStore())
        resolver = ConflictResolver(
            on_escalate=lambda etype, fname, candidates: manager.apologize(
                "affected-user", reason=f"conflict on {etype}.{fname}"
            )
        )
        resolver.register("order", "status", Strategy.ESCALATE)
        resolver.resolve(
            "order", "status",
            [value_candidate("r1", "shipped"), value_candidate("r2", "cancelled")],
        )
        assert manager.ledger.count() == 1


class TestCustomAndRegistration:
    def test_custom_merge_function(self):
        resolver = ConflictResolver()
        resolver.register(
            "doc", "body", Strategy.CUSTOM,
            merge_function=lambda candidates: "|".join(
                sorted(str(c.value) for c in candidates)
            ),
        )
        resolution = resolver.resolve(
            "doc", "body", [value_candidate("r1", "a"), value_candidate("r2", "b")]
        )
        assert resolution.value == "a|b"

    def test_custom_requires_function(self):
        resolver = ConflictResolver()
        with pytest.raises(ValueError):
            resolver.register("doc", "body", Strategy.CUSTOM)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            ConflictResolver().resolve("t", "f", [])

    def test_same_mechanism_for_local_and_replica_conflicts(self):
        """The point of 2.10: identical call for both conflict sources."""
        resolver = ConflictResolver()
        resolver.register("stock", "qty", Strategy.COMMUTATIVE)
        # two solipsistic transactions on one replica:
        local = resolver.resolve(
            "stock", "qty",
            [delta_candidate("r1", -1, ts=1.0), delta_candidate("r1", -2, ts=1.0)],
        )
        # the same writes arriving from two replicas:
        cross = resolver.resolve(
            "stock", "qty",
            [delta_candidate("r1", -1, ts=1.0), delta_candidate("r2", -2, ts=5.0)],
        )
        assert local.delta.numeric == cross.delta.numeric == {"qty": -3}
