"""End-to-end integration scenarios crossing subsystem boundaries.

Each scenario stitches several subsystems together the way the paper's
narrative does: replicated bookstores that apologise, deferred updates
with observable staleness, SOUPS pipelines surviving lossy messaging,
and the mixed-consistency single infrastructure.
"""

from __future__ import annotations

from repro.apps.bookstore import ENTERED, Bookstore, ReplicaSurface
from repro.core.compensation import CompensationManager
from repro.core.policy import RetryPolicy
from repro.replication.batching import BatchPolicy
from repro.core.consistency import (
    ConsistencyLevel,
    ConsistencyPolicy,
    PolicyRouter,
    SchemeBinding,
)
from repro.core.process import ProcessEngine
from repro.core.transaction import TransactionManager, UpdateMode
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta
from repro.queues.reliable import ReliableQueue
from repro.replication.active_active import ActiveActiveGroup
from repro.replication.master_slave import MasterSlaveGroup
from repro.replication.warehouse import WarehouseExtract
from repro.sim.failure import FailureInjector
from repro.sim.network import Network
from repro.sim.scheduler import Simulator


class TestShowMustGoOn:
    """Principle 2.11 end to end: service stays up through a partition,
    then reconciles with apologies."""

    def test_full_cycle_partition_oversell_heal_apologize(self):
        sim = Simulator(seed=11)
        net = Network(sim, latency=2.0)
        group = ActiveActiveGroup(sim, net, ["eu", "us"], anti_entropy_interval=15.0)
        injector = FailureInjector(sim, net)
        store = group.replicas["eu"].store
        compensation = CompensationManager(store, clock=lambda: sim.now)
        shop = Bookstore(compensation)
        shop.stock_book(ReplicaSurface(group, "eu"), "dune", copies=4)
        sim.run(until=10.0)
        injector.partition_window([["eu"], ["us"]], start=10.0, duration=40.0)
        sim.run(until=12.0)
        # Both continents keep selling through the partition (available!).
        accepted = 0
        for index in range(4):
            for region in ("eu", "us"):
                surface = ReplicaSurface(group, region)
                if shop.place_order(
                    surface, f"{region}-{index}", f"{region}-cust{index}",
                    "dune", at=sim.now + index,
                ) == ENTERED:
                    accepted += 1
        assert accepted == 8  # no order entry was refused during the partition
        sim.run(until=200.0)
        assert group.is_converged()
        report = shop.fulfill(store, "dune")
        assert report.fulfilled == 4
        assert report.apologized == 4
        # Every apology has compensation attached (comprehensible UX, 3.2).
        assert all(a.compensation for a in compensation.ledger.all())


class TestDeferredStaleness:
    """Principle 2.3 end to end: the response-time/staleness tradeoff."""

    def test_deferred_is_faster_but_stale_sync_is_slower_but_fresh(self):
        def run(update_mode):
            sim = Simulator()
            store = LSDBStore(clock=lambda: sim.now)
            manager = TransactionManager(
                store, sim=sim, update_mode=update_mode,
                commit_cost=1.0, defer_lag=1.0,
            )
            tx = manager.begin()
            tx.insert("order", "o1", {"total": 50})
            tx.defer(
                "aggregate",
                lambda s: s.apply_delta("daily", "today", Delta.add("rev", 50)),
                cost=8.0,
            )
            receipt = tx.commit()
            sim.run(until=receipt.acked_at)
            aggregate = store.get("daily", "today")
            visible_at_ack = aggregate is not None
            sim.run()
            return receipt.response_time, visible_at_ack

        deferred_latency, deferred_fresh = run(UpdateMode.DEFERRED)
        sync_latency, sync_fresh = run(UpdateMode.SYNCHRONOUS)
        assert deferred_latency < sync_latency
        assert not deferred_fresh  # the paper's read-your-writes caveat
        assert sync_fresh


class TestSoupsPipelineUnderLossyMessaging:
    """Principles 2.4/2.6 end to end: at-least-once + idempotence gives
    an exactly-once pipeline over unreliable infrastructure."""

    def test_order_pipeline_with_lost_acks(self):
        sim = Simulator(seed=6)
        queue = ReliableQueue(
            sim, ack_loss_probability=0.3, retry=RetryPolicy(max_attempts=40, base_delay=2.0)
        )
        store = LSDBStore(clock=lambda: sim.now)
        engine = ProcessEngine(TransactionManager(store, sim=sim, queue=queue), queue)

        @engine.step("accept", "order.submitted")
        def accept(ctx):
            key = ctx.message.payload["key"]
            ctx.insert("order", key, {"status": "accepted"})
            ctx.emit("order.accepted", {"key": key})

        @engine.step("invoice", "order.accepted")
        def invoice(ctx):
            key = ctx.message.payload["key"]
            ctx.insert("invoice", f"inv-{key}", {"order": key})
            ctx.emit("order.invoiced", {"key": key})

        @engine.step("tally", "order.invoiced")
        def tally(ctx):
            ctx.apply_delta("stats", "totals", Delta.add("invoiced", 1))

        for index in range(20):
            engine.start_process("order.submitted", {"key": f"o{index}"})
        sim.run()
        # Exactly-once effects despite duplicate deliveries:
        assert store.get("stats", "totals").fields["invoiced"] == 20
        assert len(store.entities_of_type("invoice")) == 20
        assert queue.stats.redelivered > 0  # losses really happened


class TestMixedConsistencySingleInfrastructure:
    """Section 3.1/3.2 end to end: one metadata-driven router, three
    consistency levels, one application."""

    def test_policy_routed_bookstore(self):
        sim = Simulator(seed=9)
        net = Network(sim, latency=2.0)
        group = MasterSlaveGroup(
            sim, net, "master", ["slave"], ship_interval=10.0,
            batching=BatchPolicy(),
        )
        warehouse = WarehouseExtract(sim, group.master.store, interval=25.0)

        router = PolicyRouter()
        router.add_policy(ConsistencyPolicy(
            "book_stock", ConsistencyLevel.STRONG,
            rationale="fulfilment must not oversell",
        ))
        router.add_policy(ConsistencyPolicy(
            "book_order", ConsistencyLevel.BOUNDED_STALENESS,
            rationale="order entry reads may lag",
        ))
        router.add_policy(ConsistencyPolicy(
            "sales_report", ConsistencyLevel.EXTRACT,
            rationale="analytics tolerate extract staleness",
        ))
        router.bind(ConsistencyLevel.STRONG, SchemeBinding(
            write=lambda etype, key, fields: group.write_insert(etype, key, fields),
            read=lambda etype, key: group.read("master", etype, key),
        ))
        router.bind(ConsistencyLevel.BOUNDED_STALENESS, SchemeBinding(
            write=lambda etype, key, fields: group.write_insert(etype, key, fields),
            read=lambda etype, key: group.read("slave", etype, key),
        ))
        router.bind(ConsistencyLevel.EXTRACT, SchemeBinding(
            write=lambda *args: (_ for _ in ()).throw(RuntimeError("read-only")),
            read=lambda etype, key: warehouse.get(etype, key),
        ))

        router.write("book_stock", "moby", {"copies": 5})
        # Strong read is immediately fresh:
        assert router.read("book_stock", "moby").fields["copies"] == 5
        # Bounded-staleness read lags until shipping:
        router.write("book_order", "o1", {"status": "entered"})
        assert router.read("book_order", "o1") is None
        sim.run(until=20.0)
        assert router.read("book_order", "o1").fields["status"] == "entered"
        # Extract read lags until the next extract:
        assert router.routed[ConsistencyLevel.STRONG] == 2


class TestInsertOnlyAuditAcrossCompaction:
    """Principle 2.7 end to end: compaction bounds the live log while the
    regulatory audit trail survives in the archive."""

    def test_bank_history_survives_compaction(self):
        from repro.apps.banking import BankApp

        store = LSDBStore()
        bank = BankApp(TransactionManager(store))
        bank.open_account("a1", owner="ada")
        for index in range(30):
            bank.deposit("a1", 1, memo=f"op{index}")
        live_before = store.live_events
        store.compact(keep_recent=5)
        assert store.live_events < live_before
        # The balance is unchanged and the regulatory trail is intact.
        assert bank.balance("a1") == 30
        assert len(store.archive.regulatory_events()) > 0
        history = store.history("account", "a1")
        assert history  # archived + summarised + live
