"""Tests for seeded random variates and the Zipf generator."""

from __future__ import annotations

import pytest

from repro.sim.rng import SeededRNG, ZipfGenerator, poisson_arrivals


class TestSeededRNG:
    def test_same_seed_reproduces_stream(self):
        a = SeededRNG(11)
        b = SeededRNG(11)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_diverge(self):
        assert SeededRNG(1).random() != SeededRNG(2).random()

    def test_exponential_mean_is_approximate(self):
        rng = SeededRNG(5)
        samples = [rng.exponential(4.0) for _ in range(5000)]
        mean = sum(samples) / len(samples)
        assert 3.5 < mean < 4.5

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            SeededRNG(1).exponential(0)

    def test_coin_probability_extremes(self):
        rng = SeededRNG(1)
        assert not any(rng.coin(0.0) for _ in range(100))
        assert all(rng.coin(1.0) for _ in range(100))

    def test_randint_bounds_inclusive(self):
        rng = SeededRNG(9)
        draws = {rng.randint(1, 3) for _ in range(200)}
        assert draws == {1, 2, 3}

    def test_sample_without_replacement(self):
        rng = SeededRNG(2)
        picked = rng.sample(list(range(10)), 4)
        assert len(picked) == len(set(picked)) == 4


class TestZipf:
    def test_draws_stay_in_range(self):
        zipf = ZipfGenerator(SeededRNG(3), n=10, theta=0.99)
        assert all(0 <= draw < 10 for draw in zipf.draw_many(500))

    def test_theta_zero_is_roughly_uniform(self):
        zipf = ZipfGenerator(SeededRNG(4), n=4, theta=0.0)
        counts = [0] * 4
        for draw in zipf.draw_many(8000):
            counts[draw] += 1
        assert max(counts) < 1.3 * min(counts)

    def test_high_theta_concentrates_on_low_indices(self):
        zipf = ZipfGenerator(SeededRNG(5), n=100, theta=1.2)
        draws = zipf.draw_many(2000)
        hot_fraction = sum(1 for draw in draws if draw < 10) / len(draws)
        assert hot_fraction > 0.6

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ZipfGenerator(SeededRNG(1), n=0)
        with pytest.raises(ValueError):
            ZipfGenerator(SeededRNG(1), n=5, theta=-0.1)


class TestPoissonArrivals:
    def test_arrivals_sorted_and_within_window(self):
        times = poisson_arrivals(SeededRNG(6), rate=2.0, duration=50.0, start=10.0)
        assert times == sorted(times)
        assert all(10.0 <= at < 60.0 for at in times)

    def test_rate_controls_count(self):
        sparse = poisson_arrivals(SeededRNG(7), rate=0.5, duration=200.0)
        dense = poisson_arrivals(SeededRNG(7), rate=5.0, duration=200.0)
        assert len(dense) > 4 * len(sparse)

    def test_limit_caps_arrivals(self):
        times = poisson_arrivals(SeededRNG(8), rate=10.0, duration=1000.0, limit=25)
        assert len(times) == 25

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            poisson_arrivals(SeededRNG(1), rate=0.0, duration=1.0)
