"""Regression tests pinned to the PR 1 hot-path overhaul.

Three families:

* the ``apply_remote`` reorder buffer (duplicate accounting, gap-fill
  drain order, interleaved multi-origin gaps) — behaviour the indexed
  per-origin feeds must not disturb;
* equivalence of the in-place fold path with a reference copying fold
  (hypothesis property over random event sequences);
* the indexed log feeds against their brute-force definitions,
  including across a compaction rewrite.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsdb.events import EventKind, LogEvent
from repro.lsdb.log import AppendOnlyLog
from repro.lsdb.rollup import GenericReducer, Rollup
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta


def remote_event(origin, seq, amount=1, key="k", kind=EventKind.DELTA):
    payload = (
        Delta.add("v", amount).to_payload()
        if kind is EventKind.DELTA
        else {"v": amount}
    )
    return LogEvent(
        lsn=0, timestamp=float(seq), entity_type="t", entity_key=key,
        kind=kind, payload=payload, origin=origin, origin_seq=seq,
    )


class TestReorderBuffer:
    def test_duplicate_rejection_count_across_redeliveries(self):
        store = LSDBStore(origin="r0")
        event = remote_event("r1", 1)
        assert store.apply_remote(event)
        for _ in range(3):
            assert not store.apply_remote(event)
        assert store.duplicates_rejected == 3
        assert store.get("t", "k").fields["v"] == 1

    def test_buffered_event_redelivery_is_not_counted_as_duplicate(self):
        store = LSDBStore(origin="r0")
        assert not store.apply_remote(remote_event("r1", 2))
        # Redelivering a still-buffered (gapped) event is not a
        # *duplicate* — it has not been applied yet.
        assert not store.apply_remote(remote_event("r1", 2))
        assert store.duplicates_rejected == 0
        assert store.apply_remote(remote_event("r1", 1))
        assert store.version_vector.get("r1") == 2

    def test_gap_fill_drains_in_origin_sequence_order(self):
        store = LSDBStore(origin="r0")
        for seq in (4, 2, 3, 5):
            assert not store.apply_remote(remote_event("r1", seq))
        assert store.apply_remote(remote_event("r1", 1))
        applied = [event.origin_seq for event in store.log.events()]
        assert applied == [1, 2, 3, 4, 5]
        # LSNs were assigned in drain order, so the per-origin feed is
        # seq-sorted and bisect-served.
        assert [e.origin_seq for e in store.events_from_origin("r1", 2)] == [3, 4, 5]

    def test_interleaved_multi_origin_gaps_drain_independently(self):
        store = LSDBStore(origin="r0")
        assert not store.apply_remote(remote_event("r1", 2, amount=10))
        assert not store.apply_remote(remote_event("r2", 3, amount=100))
        assert not store.apply_remote(remote_event("r2", 2, amount=100))
        # Filling r1's gap drains only r1; r2 still has a hole at 1.
        assert store.apply_remote(remote_event("r1", 1, amount=10))
        assert store.version_vector.get("r1") == 2
        assert store.version_vector.get("r2") == 0
        assert store.apply_remote(remote_event("r2", 1, amount=100))
        assert store.version_vector.get("r2") == 3
        assert store.get("t", "k").fields["v"] == 2 * 10 + 3 * 100

    def test_drained_buffer_entries_are_released(self):
        store = LSDBStore(origin="r0")
        for seq in (3, 2):
            store.apply_remote(remote_event("r1", seq))
        store.apply_remote(remote_event("r1", 1))
        assert store._reorder_buffer == {}


# --------------------------------------------------------------------- #
# In-place fold vs reference copying fold
# --------------------------------------------------------------------- #


class CopyingOnlyReducer:
    """The pre-PR-1 reducer contract: ``apply`` with a fresh copy per
    event and no in-place ``fold`` — the equivalence oracle."""

    def __init__(self):
        self._generic = GenericReducer()

    def apply(self, state, event):
        return self._generic.apply(state, event)


@st.composite
def event_sequences(draw):
    """Random mixed-kind event sequences over a few entities."""
    count = draw(st.integers(1, 30))
    events = []
    for index in range(count):
        kind = draw(
            st.sampled_from(
                [
                    EventKind.INSERT,
                    EventKind.DELTA,
                    EventKind.SET_FIELDS,
                    EventKind.TOMBSTONE,
                    EventKind.OBSOLETE,
                ]
            )
        )
        key = draw(st.sampled_from(["a", "b", "c"]))
        field = draw(st.sampled_from(["x", "y"]))
        if kind is EventKind.DELTA:
            payload = Delta.add(field, draw(st.integers(-5, 5))).to_payload()
        elif kind is EventKind.TOMBSTONE or kind is EventKind.OBSOLETE:
            payload = {}
        else:
            payload = {field: draw(st.integers(0, 9))}
        events.append(
            LogEvent(
                lsn=index + 1,
                timestamp=float(draw(st.integers(0, 10))),
                entity_type="t",
                entity_key=key,
                kind=kind,
                payload=payload,
                origin=draw(st.sampled_from(["r1", "r2"])),
                origin_seq=index + 1,
            )
        )
    return events


def canonical(states):
    return {
        ref: (
            dict(state.fields),
            dict(state.field_stamps),
            state.deleted,
            state.obsolete,
            state.version_count,
            state.event_count,
            state.last_lsn,
            state.last_timestamp,
        )
        for ref, state in states.items()
    }


class TestFoldEquivalence:
    @settings(max_examples=120)
    @given(events=event_sequences())
    def test_in_place_fold_matches_copying_fold(self, events):
        fast = Rollup()  # GenericReducer: in-place fold path
        slow = Rollup(default_reducer=CopyingOnlyReducer())  # apply-only
        assert canonical(fast.fold(events)) == canonical(slow.fold(events))

    @settings(max_examples=60)
    @given(events=event_sequences(), split=st.integers(0, 30))
    def test_incremental_cache_matches_from_scratch(self, events, split):
        """The store's incremental (in-place) cache equals a from-scratch
        fold at every prefix boundary."""
        split = min(split, len(events))
        states = {}
        rollup = Rollup()
        for event in events[:split]:
            rollup.fold_into(states, event)
        assert canonical(states) == canonical(rollup.fold(events[:split]))

    @settings(max_examples=60)
    @given(events=event_sequences(), split=st.integers(1, 29))
    def test_fold_never_mutates_shared_initial(self, events, split):
        """Snapshot safety: folding a suffix over an initial map leaves
        every state in the initial map untouched."""
        split = min(split, len(events))
        rollup = Rollup()
        prefix = rollup.fold(events[:split])
        frozen = canonical(prefix)
        rollup.fold(events[split:], initial=prefix)
        assert canonical(prefix) == frozen


# --------------------------------------------------------------------- #
# Indexed feeds vs brute force
# --------------------------------------------------------------------- #


def make_log_event(lsn, key="k", etype="t", kind=EventKind.INSERT):
    return LogEvent(
        lsn=0, timestamp=float(lsn), entity_type=etype, entity_key=key,
        kind=kind, payload={"n": lsn},
    )


class TestIndexedFeeds:
    def _build(self):
        log = AppendOnlyLog()
        for index in range(20):
            log.append(
                make_log_event(index, key=f"k{index % 3}", etype=f"t{index % 2}")
            )
        return log

    def assert_feeds_match_bruteforce(self, log):
        events = log.events()
        for lsn in range(0, log.head_lsn + 2):
            expected = [e for e in events if e.lsn > lsn]
            assert [e.lsn for e in log.since(lsn)] == [e.lsn for e in expected]
            expected_up = [e for e in events if e.lsn <= lsn]
            assert [e.lsn for e in log.up_to(lsn)] == [e.lsn for e in expected_up]
        for etype in ("t0", "t1"):
            for key in ("k0", "k1", "k2"):
                expected = [
                    e for e in events
                    if e.entity_type == etype and e.entity_key == key
                ]
                got = log.for_entity(etype, key)
                assert [e.lsn for e in got] == [e.lsn for e in expected]
            for lsn in (0, 5, log.head_lsn):
                expected = [
                    e for e in events if e.entity_type == etype and e.lsn > lsn
                ]
                got = log.for_type_since(etype, lsn)
                assert [e.lsn for e in got] == [e.lsn for e in expected]

    def test_feeds_match_bruteforce_contiguous(self):
        self.assert_feeds_match_bruteforce(self._build())

    def test_feeds_match_bruteforce_after_rewrite(self):
        log = self._build()
        summary = LogEvent(
            lsn=7, timestamp=0.0, entity_type="t0", entity_key="k0",
            kind=EventKind.SUMMARY, payload={"n": 7},
        )
        log.rewrite_prefix(7, [summary])
        assert log.tail_lsn == 7  # holes: the contiguity fast path is off
        self.assert_feeds_match_bruteforce(log)
        # Appends after a rewrite keep the indexes live.
        log.append(make_log_event(99, key="k0", etype="t0"))
        self.assert_feeds_match_bruteforce(log)

    def test_between_and_counts(self):
        log = self._build()
        assert [e.lsn for e in log.between(5, 9)] == [6, 7, 8, 9]
        assert log.count_between(5, 9) == 4
        assert log.count_between(9, 5) == 0
        assert log.last_lsn_at_or_below(9) == 9
        assert log.last_lsn_at_or_below(0) == 0

    def test_store_feed_counts_match_lists(self):
        store = LSDBStore(origin="r1")
        for index in range(10):
            store.insert("t", f"k{index % 2}", {"n": index})
        for after in (0, 3, 9, 10):
            assert store.count_from_origin("r1", after) == len(
                store.events_from_origin("r1", after)
            )
        assert store.count_from_origin("missing", 0) == 0
