"""Failure-injection tests: behaviour through crashes and partitions.

Principle 2.11 demands that "business transactions and processes should
always work, even if/when data is not fully consistent".  These tests
crash and partition components mid-protocol and assert the system's
documented degradation and recovery behaviour.
"""

from __future__ import annotations

from repro.merge.deltas import Delta
from repro.core.policy import TimeoutPolicy
from repro.replication.batching import BatchPolicy
from repro.replication import (
    ActiveActiveGroup,
    AsyncPrimaryBackup,
    MasterSlaveGroup,
    QuorumGroup,
    SyncPrimaryBackup,
)
from repro.sim.failure import FailureInjector
from repro.sim.network import Network
from repro.sim.scheduler import Simulator


def world(latency=2.0, seed=0, loss=0.0):
    sim = Simulator(seed=seed)
    return sim, Network(sim, latency=latency, loss_probability=loss)


class TestAsyncReplicationFailures:
    def test_primary_crash_during_lag_loses_exact_tail(self):
        sim, net = world()
        pair = AsyncPrimaryBackup(sim, net, ship_interval=50.0, batching=BatchPolicy())
        pair.write_insert("o", "o1", {}, tx_id="t1")
        sim.run(until=60.0)  # first shipping round done
        pair.write_insert("o", "o2", {}, tx_id="t2")
        pair.write_insert("o", "o3", {}, tx_id="t3")
        report = pair.failover()  # crash before the next round
        assert report.lost_tx_ids == ["t2", "t3"]
        # The backup still has everything from the shipped prefix.
        assert pair.backup.store.get("o", "o1") is not None

    def test_backup_crash_window_heals_via_reprobe(self):
        sim, net = world()
        pair = AsyncPrimaryBackup(sim, net, ship_interval=10.0, batching=BatchPolicy())
        injector = FailureInjector(sim, net)
        injector.crash_window(pair.backup, start=5.0, duration=30.0)
        pair.write_insert("o", "o1", {})
        sim.run(until=120.0)
        # The shipping loop's idempotent reprobe catches the backup up
        # after recovery.
        assert pair.backup.store.get("o", "o1") is not None
        assert pair.replication_lag_events == 0


class TestSyncReplicationFailures:
    def test_backup_crash_fails_writes_then_recovers(self):
        sim, net = world()
        pair = SyncPrimaryBackup(sim, net, timeout=TimeoutPolicy(per_attempt=20.0))
        injector = FailureInjector(sim, net)
        injector.crash_window(pair.backup, start=0.0, duration=50.0)
        pair.write_insert("o", "down", {})
        sim.run(until=60.0)
        assert pair.failed_writes == 1
        pair.write_insert("o", "up", {})
        sim.run()
        assert pair.results[-1].ok

    def test_partition_mid_write_times_out(self):
        sim, net = world(latency=10.0)
        pair = SyncPrimaryBackup(sim, net, timeout=TimeoutPolicy(per_attempt=15.0))
        pair.write_insert("o", "o1", {})
        # Partition before the replicate message lands (latency 10).
        sim.schedule_at(
            5.0,
            lambda: net.partition_into(
                {pair.primary.node_id}, {pair.backup.node_id}
            ),
        )
        sim.run()
        assert pair.failed_writes == 1


class TestActiveActiveFailures:
    def test_crashed_replica_catches_up_after_recovery(self):
        sim, net = world()
        group = ActiveActiveGroup(sim, net, ["r1", "r2", "r3"],
                                  anti_entropy_interval=10.0)
        injector = FailureInjector(sim, net)
        crashed = group.replicas["r3"]
        injector.crash_window(crashed, start=0.0, duration=50.0)
        for index in range(5):
            group.write_delta("r1", "stock", "w", Delta.add("n", 1))
        sim.run(until=40.0)
        assert crashed.store.get("stock", "w") is None
        sim.run(until=200.0)
        assert group.is_converged()
        assert crashed.store.get("stock", "w").fields["n"] == 5

    def test_repeated_partitions_still_converge(self):
        sim, net = world(seed=4)
        group = ActiveActiveGroup(sim, net, ["r1", "r2"],
                                  anti_entropy_interval=8.0)
        injector = FailureInjector(sim, net)
        for start in (10.0, 50.0, 90.0):
            injector.partition_window([["r1"], ["r2"]], start=start, duration=20.0)
        for index in range(12):
            replica = "r1" if index % 2 == 0 else "r2"
            sim.schedule_at(
                10.0 * index,
                lambda bound=replica: group.write_delta(
                    bound, "stock", "w", Delta.add("n", 1)
                ),
            )
        sim.run(until=600.0)
        assert group.is_converged()
        assert group.read("r1", "stock", "w").fields["n"] == 12

    def test_writes_during_own_partition_survive(self):
        """A partitioned minority replica's accepted writes are not lost
        when it rejoins — subjective commits are durable commitments."""
        sim, net = world()
        group = ActiveActiveGroup(sim, net, ["r1", "r2", "r3"],
                                  anti_entropy_interval=10.0)
        net.partition_into({"r1"}, {"r2", "r3"})
        group.write_delta("r1", "stock", "w", Delta.add("n", 7))
        sim.run(until=30.0)
        net.heal()
        sim.run(until=100.0)
        for replica_id in ("r2", "r3"):
            assert group.read(replica_id, "stock", "w").fields["n"] == 7


class TestQuorumFailures:
    def test_exactly_minority_crash_is_tolerated(self):
        sim, net = world()
        group = QuorumGroup(
            sim, net, ["q1", "q2", "q3", "q4", "q5"],
            timeout=TimeoutPolicy(per_attempt=30.0),
        )
        group.replicas[0].crash()
        group.replicas[1].crash()
        group.write("stock", "w", {"n": 1})
        sim.run()
        assert group.outcomes[0].ok  # 3 of 5 still reachable

    def test_majority_crash_blocks_writes(self):
        sim, net = world()
        group = QuorumGroup(
            sim, net, ["q1", "q2", "q3", "q4", "q5"],
            timeout=TimeoutPolicy(per_attempt=30.0),
        )
        for replica in group.replicas[:3]:
            replica.crash()
        group.write("stock", "w", {"n": 1})
        sim.run()
        assert not group.outcomes[0].ok

    def test_recovered_majority_resumes_service(self):
        sim, net = world()
        group = QuorumGroup(
            sim, net, ["q1", "q2", "q3"], timeout=TimeoutPolicy(per_attempt=30.0)
        )
        injector = FailureInjector(sim, net)
        injector.crash_window(group.replicas[0], start=0.0, duration=40.0)
        injector.crash_window(group.replicas[1], start=0.0, duration=40.0)
        group.write("stock", "w", {"n": 1})
        sim.run(until=45.0)  # past the crash window
        assert not group.outcomes[0].ok
        group.write("stock", "w", {"n": 2})
        sim.run()
        assert group.outcomes[1].ok


class TestMasterSlaveFailures:
    def test_slave_crash_window_catches_up(self):
        sim, net = world()
        group = MasterSlaveGroup(
            sim, net, "m", ["s1"], ship_interval=10.0, batching=BatchPolicy()
        )
        injector = FailureInjector(sim, net)
        injector.crash_window(group.slaves["s1"], start=0.0, duration=35.0)
        group.write_insert("stock", "b", {"copies": 5})
        sim.run(until=30.0)
        assert group.read("s1", "stock", "b") is None
        sim.run(until=100.0)
        assert group.read("s1", "stock", "b").fields["copies"] == 5

    def test_master_reads_unaffected_by_slave_crash(self):
        sim, net = world()
        group = MasterSlaveGroup(sim, net, "m", ["s1"])
        group.slaves["s1"].crash()
        group.write_insert("stock", "b", {"copies": 5})
        assert group.read("m", "stock", "b").fields["copies"] == 5
