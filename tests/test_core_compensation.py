"""Tests for tentative operations and apology-oriented computing."""

from __future__ import annotations

import pytest

from repro.core.compensation import (
    TENTATIVE_TYPE,
    ApologyLedger,
    CompensationManager,
    TentativeStatus,
)
from repro.lsdb.store import LSDBStore
from repro.queues.reliable import ReliableQueue
from repro.sim.scheduler import Simulator


def make_manager(clock=None):
    store = LSDBStore()
    return store, CompensationManager(store, clock=clock)


class TestTentativeLifecycle:
    def test_open_is_durable_and_visible(self):
        store, manager = make_manager()
        operation = manager.open_tentative(
            "atp_offer", "item", "steel", {"qty": 5}
        )
        stored = store.get(TENTATIVE_TYPE, operation.op_id)
        assert stored is not None and stored.live
        assert stored.fields["status"] == "pending"
        assert stored.fields["payload_qty"] == 5

    def test_confirm(self):
        store, manager = make_manager()
        operation = manager.open_tentative("offer", "item", "x", {})
        manager.confirm(operation.op_id)
        assert operation.status is TentativeStatus.CONFIRMED
        assert store.get(TENTATIVE_TYPE, operation.op_id).fields["status"] == "confirmed"

    def test_cancel_marks_obsolete_but_keeps_record(self):
        store, manager = make_manager()
        operation = manager.open_tentative("offer", "item", "x", {})
        manager.cancel(operation.op_id)
        stored = store.get(TENTATIVE_TYPE, operation.op_id)
        assert stored.obsolete  # visible and durable, marked obsolete (3.2)
        assert stored.fields["status"] == "cancelled"

    def test_double_transition_rejected(self):
        _, manager = make_manager()
        operation = manager.open_tentative("offer", "item", "x", {})
        manager.confirm(operation.op_id)
        with pytest.raises(ValueError):
            manager.cancel(operation.op_id)

    def test_unknown_operation_rejected(self):
        _, manager = make_manager()
        with pytest.raises(KeyError):
            manager.confirm("tnt-ghost")

    def test_expire_overdue_only_past_deadline(self):
        clock = {"now": 0.0}
        _, manager = make_manager(clock=lambda: clock["now"])
        early = manager.open_tentative("offer", "item", "x", {}, expires_at=10.0)
        late = manager.open_tentative("offer", "item", "y", {}, expires_at=50.0)
        clock["now"] = 20.0
        expired = manager.expire_overdue()
        assert [op.op_id for op in expired] == [early.op_id]
        assert early.status is TentativeStatus.EXPIRED
        assert late.open

    def test_open_operations_listing(self):
        _, manager = make_manager()
        kept = manager.open_tentative("offer", "item", "x", {})
        done = manager.open_tentative("offer", "item", "y", {})
        manager.confirm(done.op_id)
        assert [op.op_id for op in manager.open_operations()] == [kept.op_id]


class TestApologies:
    def test_apology_recorded_with_compensation(self):
        _, manager = make_manager()
        manager.register_compensator(
            "refund", lambda context: f"refunded {context['amount']}"
        )
        apology = manager.apologize(
            "alice", reason="oversold", kind="refund", context={"amount": 42}
        )
        assert apology.compensation == "refunded 42"
        assert manager.ledger.count() == 1

    def test_apology_without_compensator_still_records(self):
        _, manager = make_manager()
        apology = manager.apologize("bob", reason="lost-reservation", kind="missing")
        assert apology.compensation == ""
        assert manager.ledger.count() == 1

    def test_by_reason_breakdown(self):
        ledger = ApologyLedger()
        ledger.record("a", "oversold", 0.0)
        ledger.record("b", "oversold", 1.0)
        ledger.record("c", "disaster", 2.0)
        assert ledger.by_reason() == {"oversold": 2, "disaster": 1}

    def test_apology_rate(self):
        ledger = ApologyLedger()
        ledger.record("a", "oversold", 0.0)
        assert ledger.rate(total_operations=10) == 0.1
        assert ledger.rate(total_operations=0) == 0.0

    def test_apology_events_announced(self):
        sim = Simulator()
        store = LSDBStore()
        queue = ReliableQueue(sim)
        seen = []
        queue.subscribe("apology.issued", lambda m: seen.append(m.payload) or True)
        manager = CompensationManager(store, queue)
        manager.apologize("alice", reason="oversold")
        sim.run()
        assert seen[0]["to"] == "alice"

    def test_tentative_events_announced(self):
        sim = Simulator()
        store = LSDBStore()
        queue = ReliableQueue(sim)
        topics = []
        for topic in ("tentative.opened", "tentative.confirmed", "tentative.cancelled"):
            queue.subscribe(topic, lambda m, t=topic: topics.append(t) or True)
        manager = CompensationManager(store, queue)
        first = manager.open_tentative("offer", "item", "x", {})
        manager.confirm(first.op_id)
        second = manager.open_tentative("offer", "item", "y", {})
        manager.cancel(second.op_id)
        sim.run()
        assert topics == [
            "tentative.opened",
            "tentative.confirmed",
            "tentative.opened",
            "tentative.cancelled",
        ]
