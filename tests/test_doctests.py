"""Run every docstring example in the library as part of the suite.

Docstring examples are the first code a reader copies; a refactor that
breaks one should fail here, not in a user's shell.
"""

from __future__ import annotations

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    yield repro
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(module_info.name)


MODULES = list(_all_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(
        module,
        optionflags=doctest.ELLIPSIS | doctest.IGNORE_EXCEPTION_DETAIL,
        verbose=False,
    )
    assert result.failed == 0, f"{result.failed} doctest failure(s) in {module.__name__}"


def test_docstring_examples_exist_somewhere():
    """The library should carry a healthy number of runnable examples."""
    attempted = sum(
        doctest.testmod(
            module,
            optionflags=doctest.ELLIPSIS | doctest.IGNORE_EXCEPTION_DETAIL,
        ).attempted
        for module in MODULES
    )
    assert attempted >= 20
