"""Unit semantics of the isolation spectrum (ISSUE 9 tentpole).

Covers the transaction-layer half: snapshot reads, first-committer-wins
validation, NMSI per-site visibility, receipt metadata (snapshot LSN /
txid set / vector clock), spectrum ordering, tx metrics, and the
``with_isolation`` builder entry.
"""

import pytest

from repro.core.transaction import (
    CCMode,
    ISOLATION_SPECTRUM,
    IsolationLevel,
    SNAPSHOT_LEVELS,
    TransactionManager,
)
from repro.cluster import Cluster
from repro.lsdb.store import LSDBStore
from repro.merge.clock import VectorClock
from repro.obs.metrics import MetricsRegistry
from repro.sim.scheduler import Simulator


def make_manager(sim, isolation=None, propagation_lag=0.0, metrics=None):
    store = LSDBStore(name="iso", origin="tx", clock=lambda: sim.now)
    return TransactionManager(
        store,
        sim=sim,
        isolation=isolation,
        propagation_lag=propagation_lag,
        metrics=metrics,
    )


@pytest.fixture
def sim():
    return Simulator(seed=42)


class TestSpectrum:
    def test_ordering_weakest_to_strongest(self):
        assert ISOLATION_SPECTRUM == (
            IsolationLevel.SOLIPSISTIC,
            IsolationLevel.NMSI,
            IsolationLevel.SNAPSHOT,
            IsolationLevel.SERIALIZABLE,
        )
        assert IsolationLevel.SERIALIZABLE.at_least(IsolationLevel.SNAPSHOT)
        assert IsolationLevel.SNAPSHOT.at_least(IsolationLevel.NMSI)
        assert not IsolationLevel.NMSI.at_least(IsolationLevel.SNAPSHOT)
        assert all(level.at_least(level) for level in ISOLATION_SPECTRUM)

    def test_snapshot_levels(self):
        assert SNAPSHOT_LEVELS == {IsolationLevel.SNAPSHOT, IsolationLevel.NMSI}

    def test_explicit_mode_opts_out(self, sim):
        manager = make_manager(sim, isolation=IsolationLevel.SNAPSHOT)
        tx = manager.begin(mode=CCMode.TRY_LOCK)
        assert tx.isolation is None
        assert tx.mode is CCMode.TRY_LOCK
        assert tx.commit().isolation == ""

    def test_serializable_rides_occ(self, sim):
        manager = make_manager(sim, isolation=IsolationLevel.SERIALIZABLE)
        assert manager.begin().mode is CCMode.OPTIMISTIC


class TestSnapshotIsolation:
    def test_reads_come_from_begin_snapshot(self, sim):
        manager = make_manager(sim, isolation=IsolationLevel.SNAPSHOT)
        writer = manager.begin()
        writer.set_fields("k", "x", {"v": 1})
        assert writer.commit().committed
        reader = manager.begin()
        late = manager.begin()
        late.set_fields("k", "x", {"v": 2})
        assert late.commit().committed
        # The reader's snapshot predates the late commit.
        assert reader.read("k", "x").fields["v"] == 1
        assert manager.store.get("k", "x").fields["v"] == 2

    def test_read_your_own_buffered_writes(self, sim):
        manager = make_manager(sim, isolation=IsolationLevel.SNAPSHOT)
        tx = manager.begin()
        assert tx.read("k", "x") is None
        tx.set_fields("k", "x", {"v": 7})
        assert tx.read("k", "x").fields["v"] == 7

    def test_first_committer_wins(self, sim):
        manager = make_manager(sim, isolation=IsolationLevel.SNAPSHOT)
        first = manager.begin()
        second = manager.begin()
        first.set_fields("counter", "x", {"n": 1})
        second.set_fields("counter", "x", {"n": 1})
        assert first.commit().committed
        receipt = second.commit()
        assert not receipt.committed
        assert "write-write conflict on counter/x" in receipt.reason
        assert first.tx_id in receipt.reason
        assert manager.abort_rate == pytest.approx(0.5)

    def test_disjoint_writes_both_commit(self, sim):
        manager = make_manager(sim, isolation=IsolationLevel.SNAPSHOT)
        a, b = manager.begin(), manager.begin()
        a.set_fields("k", "x", {"v": 1})
        b.set_fields("k", "y", {"v": 1})
        assert a.commit().committed
        assert b.commit().committed

    def test_non_transactional_write_conflicts(self, sim):
        manager = make_manager(sim, isolation=IsolationLevel.SNAPSHOT)
        tx = manager.begin()
        tx.set_fields("k", "x", {"v": 1})
        # A direct store write (no tx) after begin is outside the
        # snapshot and must still trigger first-committer-wins.
        manager.store.set_fields("k", "x", {"v": 99})
        receipt = tx.commit()
        assert not receipt.committed
        assert "non-transactional" in receipt.reason

    def test_snapshot_sees_pre_begin_store_writes(self, sim):
        manager = make_manager(sim, isolation=IsolationLevel.SNAPSHOT)
        manager.store.set_fields("k", "x", {"v": 5})
        tx = manager.begin()
        assert tx.read("k", "x").fields["v"] == 5


class TestReceiptMetadata:
    def test_committed_receipt_tracking(self, sim):
        manager = make_manager(sim, isolation=IsolationLevel.SNAPSHOT)
        seeder = manager.begin(site="dc-a")
        seeder.set_fields("k", "x", {"v": 1})
        assert seeder.commit().committed
        sim.schedule_at(10.0, lambda: None)
        sim.run()
        tx = manager.begin(site="dc-b")
        sim.schedule_at(14.0, lambda: None)
        sim.run()
        receipt = tx.commit()
        assert receipt.committed
        assert receipt.isolation == "snapshot"
        assert receipt.site == "dc-b"
        assert receipt.began_at == 10.0
        assert receipt.snapshot_age == pytest.approx(4.0)
        assert receipt.snapshot_txids == (seeder.tx_id,)
        assert receipt.snapshot_vector == VectorClock({"dc-a": 1})

    def test_abort_receipt_tracking(self, sim):
        manager = make_manager(sim, isolation=IsolationLevel.SNAPSHOT)
        a, b = manager.begin(), manager.begin()
        a.set_fields("k", "x", {"v": 1})
        b.set_fields("k", "x", {"v": 2})
        assert a.commit().committed
        receipt = b.commit()
        assert not receipt.committed
        assert receipt.isolation == "snapshot"
        assert receipt.snapshot_lsn >= 0
        assert receipt.snapshot_vector is not None

    def test_plain_transactions_untracked(self, sim):
        manager = make_manager(sim)
        tx = manager.begin()
        tx.set_fields("k", "x", {"v": 1})
        receipt = tx.commit()
        assert receipt.isolation == ""
        assert receipt.snapshot_lsn == -1
        assert receipt.snapshot_vector is None


class TestNMSI:
    def test_remote_commits_invisible_inside_lag(self, sim):
        manager = make_manager(
            sim, isolation=IsolationLevel.NMSI, propagation_lag=50.0
        )
        writer = manager.begin(site="dc-a")
        writer.set_fields("k", "x", {"v": 1})
        assert writer.commit().committed
        local = manager.begin(site="dc-a")
        remote = manager.begin(site="dc-b")
        assert local.read("k", "x").fields["v"] == 1
        assert remote.read("k", "x") is None

    def test_remote_commits_visible_after_lag(self, sim):
        manager = make_manager(
            sim, isolation=IsolationLevel.NMSI, propagation_lag=50.0
        )
        writer = manager.begin(site="dc-a")
        writer.set_fields("k", "x", {"v": 1})
        assert writer.commit().committed
        sim.schedule_at(60.0, lambda: None)
        sim.run()
        remote = manager.begin(site="dc-b")
        assert remote.read("k", "x").fields["v"] == 1

    def test_invisible_remote_write_still_conflicts(self, sim):
        # The conservative reading that keeps lost updates impossible:
        # a remote commit inside the propagation window is invisible to
        # reads yet still aborts an overlapping writer.
        manager = make_manager(
            sim, isolation=IsolationLevel.NMSI, propagation_lag=50.0
        )
        writer = manager.begin(site="dc-a")
        writer.set_fields("k", "x", {"v": 1})
        assert writer.commit().committed
        remote = manager.begin(site="dc-b")
        assert remote.read("k", "x") is None
        remote.set_fields("k", "x", {"v": 2})
        receipt = remote.commit()
        assert not receipt.committed
        assert "write-write conflict" in receipt.reason

    def test_long_fork_snapshot_vectors_concurrent(self, sim):
        manager = make_manager(
            sim, isolation=IsolationLevel.NMSI, propagation_lag=50.0
        )
        w1 = manager.begin(site="dc-a")
        w1.set_fields("k", "x", {"v": 1})
        assert w1.commit().committed
        w2 = manager.begin(site="dc-b")
        w2.set_fields("k", "y", {"v": 1})
        assert w2.commit().committed
        o1 = manager.begin(site="dc-a")
        o2 = manager.begin(site="dc-b")
        r1, r2 = o1.commit(), o2.commit()
        assert r1.snapshot_vector.concurrent_with(r2.snapshot_vector)
        assert r1.snapshot_txids == (w1.tx_id,)
        assert r2.snapshot_txids == (w2.tx_id,)


class TestMetrics:
    def test_commit_abort_and_age_metrics(self, sim):
        metrics = MetricsRegistry()
        manager = make_manager(
            sim, isolation=IsolationLevel.SNAPSHOT, metrics=metrics
        )
        a, b = manager.begin(), manager.begin()
        a.set_fields("k", "x", {"v": 1})
        b.set_fields("k", "x", {"v": 2})
        a.commit()
        b.commit()
        assert metrics.counter("tx.commits", mode="snapshot").value == 1
        assert metrics.counter("tx.aborts", mode="snapshot").value == 1
        assert metrics.histogram("tx.snapshot_age", mode="snapshot").count == 1

    def test_plain_mode_label(self, sim):
        metrics = MetricsRegistry()
        manager = make_manager(sim, metrics=metrics)
        tx = manager.begin(mode=CCMode.OPTIMISTIC)
        tx.set_fields("k", "x", {"v": 1})
        tx.commit()
        assert metrics.counter("tx.commits", mode="optimistic").value == 1


class TestBuilder:
    def test_with_isolation_string_level(self):
        cluster = Cluster.build(seed=3).with_isolation("snapshot").create()
        manager = cluster.transactions
        assert manager.isolation is IsolationLevel.SNAPSHOT
        a, b = manager.begin(), manager.begin()
        a.set_fields("k", "x", {"v": 1})
        b.set_fields("k", "x", {"v": 2})
        assert a.commit().committed
        assert not b.commit().committed

    def test_with_isolation_enum_and_lag(self):
        cluster = (
            Cluster.build(seed=3)
            .with_isolation(IsolationLevel.NMSI, propagation_lag=25.0)
            .create()
        )
        assert cluster.transactions.isolation is IsolationLevel.NMSI
        assert cluster.transactions.propagation_lag == 25.0

    def test_with_isolation_merges_with_transactions(self):
        cluster = (
            Cluster.build(seed=3)
            .with_transactions(commit_cost=3.0)
            .with_isolation("serializable")
            .create()
        )
        manager = cluster.transactions
        assert manager.commit_cost == 3.0
        assert manager.isolation is IsolationLevel.SERIALIZABLE

    def test_with_isolation_metrics_flow(self):
        cluster = (
            Cluster.build(seed=3).with_tracing().with_isolation("snapshot").create()
        )
        manager = cluster.transactions
        tx = manager.begin()
        tx.set_fields("k", "x", {"v": 1})
        tx.commit()
        assert cluster.metrics.counter("tx.commits", mode="snapshot").value == 1
