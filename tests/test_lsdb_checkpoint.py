"""Rollup checkpoints and O(delta) recovery.

A checkpoint freezes the incremental cache (states, type refs, version
vector, index snapshots) as of one LSN; recovery restores it and folds
only the suffix.  These tests pin the byte-identity of restored state,
the policy triggers, the invalidation rules (reducer, migration,
compaction), and the checkpoint-seeded bootstrap of a brand-new replica.
"""

from __future__ import annotations

import pytest

from repro.core.entity import EntityCatalog, EntityType, FieldSpec
from repro.core.migration import SchemaMigrationManager
from repro.errors import ReproError
from repro.lsdb.checkpoint import Checkpoint, CheckpointPolicy
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta
from repro.replication.batching import BatchPolicy
from repro.replication.replica import ReplicaNode
from repro.sim.network import Network
from repro.sim.scheduler import Simulator


def populated_store(events: int = 60, **store_kwargs) -> LSDBStore:
    store = LSDBStore(**store_kwargs)
    store.insert("acct", "a", {"bal": 0, "tier": "gold"})
    store.insert("acct", "b", {"bal": 0, "tier": "silver"})
    for index in range(events):
        store.apply_delta("acct", "a" if index % 2 else "b", Delta.add("bal", 1))
    return store


class TestPolicyTriggers:
    def test_every_events_takes_checkpoints(self):
        store = LSDBStore()
        manager = store.enable_checkpoints(CheckpointPolicy(every_events=10))
        for index in range(25):
            store.insert("acct", f"k{index}", {"bal": index})
        assert manager.taken == 2
        assert manager.latest().lsn == 20
        assert manager.delta_events == 5

    def test_manual_take_always_works(self):
        store = populated_store()
        manager = store.enable_checkpoints()  # no count trigger
        assert manager.latest() is None
        checkpoint = manager.take()
        assert checkpoint.lsn == store.log.head_lsn
        assert manager.latest() is checkpoint

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(every_events=-1)


class TestRecovery:
    def test_rebuild_from_checkpoint_is_byte_identical_to_full_fold(self):
        store = populated_store(50)
        store.enable_checkpoints().take()
        for _ in range(7):  # delta after the checkpoint
            store.apply_delta("acct", "a", Delta.add("bal", 1))
        live = {ref: state.copy() for ref, state in store.current_state().items()}
        replayed = store.rebuild_cache()
        assert replayed == 7  # only the suffix was folded
        assert store.current_state() == live
        assert store.rebuild_cache(full=True) == store.log.head_lsn
        assert store.current_state() == live

    def test_recover_reports_what_it_did(self):
        store = populated_store(40)
        store.enable_checkpoints(CheckpointPolicy(every_events=10))
        index = store.register_index("acct", "tier")
        index.refresh()
        store.checkpoints.take()
        store.apply_delta("acct", "a", Delta.add("bal", 5))
        report = store.recover()
        assert report.used_checkpoint
        assert report.checkpoint_lsn == store.log.head_lsn - 1
        assert report.events_replayed == 1
        assert report.indexes_restored == 1
        assert index.lookup("gold") == {"a"}

    def test_recover_without_checkpoint_replays_everything(self):
        store = populated_store(30)
        report = store.recover()
        assert not report.used_checkpoint
        assert report.events_replayed == store.log.head_lsn
        assert store.get("acct", "a").fields["bal"] == 15

    def test_index_snapshot_round_trip(self):
        store = populated_store(20)
        index = store.register_index("acct", "tier")
        index.refresh()
        store.enable_checkpoints().take()
        store.set_fields("acct", "a", {"tier": "platinum"})
        index.refresh()
        assert index.lookup("platinum") == {"a"}
        store.recover()
        # Restored from the snapshot, then refreshed over the suffix.
        assert index.lookup("platinum") == {"a"}
        assert index.lookup("gold") == set()


class TestInvalidation:
    def test_new_reducer_discards_the_checkpoint(self):
        store = populated_store()
        manager = store.enable_checkpoints()
        manager.take()
        store.register_reducer("acct", store.rollup.reducer_for("acct"))
        assert manager.latest() is None
        assert manager.invalidations == 1

    def test_migration_discards_the_checkpoint(self):
        catalog = EntityCatalog()
        catalog.register(
            EntityType.define("order", [FieldSpec("total", "int", required=True)])
        )
        migrations = SchemaMigrationManager(catalog)
        store = LSDBStore()
        migrations.attach_store(store)
        manager = store.enable_checkpoints()
        store.insert("order", "o1", {"total": 1})
        manager.take()
        migrations.apply(
            EntityType.define(
                "order",
                [FieldSpec("total", "int", required=True),
                 FieldSpec("currency", "str")],
                schema_version=2,
            )
        )
        assert manager.latest() is None

    def test_compaction_invalidates_then_retakes(self):
        store = populated_store(40)
        manager = store.enable_checkpoints()  # on_compaction=True default
        manager.take()
        before = manager.latest().lsn
        store.compact(keep_recent=5)
        assert manager.invalidations == 1
        fresh = manager.latest()
        assert fresh is not None and fresh.lsn >= before
        # The live checkpoint never predates the compaction boundary.
        assert fresh.lsn == store.log.head_lsn
        assert store.recover().used_checkpoint

    def test_compaction_without_retake_leaves_no_checkpoint(self):
        store = populated_store(40)
        manager = store.enable_checkpoints(
            CheckpointPolicy(on_compaction=False)
        )
        manager.take()
        store.compact(keep_recent=5)
        assert manager.latest() is None


class TestInstallCheckpoint:
    def test_install_on_empty_store_seeds_state_and_watermarks(self):
        donor = populated_store(30, origin="donor")
        checkpoint = Checkpoint.capture(donor)
        newbie = LSDBStore(origin="newbie")
        newbie.install_checkpoint(checkpoint)
        assert newbie.current_state() == donor.current_state()
        assert (
            newbie.version_vector.to_dict() == donor.version_vector.to_dict()
        )
        # Pre-checkpoint redeliveries are rejected by the watermark.
        old = donor.events_from_origin("donor", 0)[0]
        assert not newbie.apply_remote(old)

    def test_install_refuses_non_empty_store(self):
        donor = populated_store(10)
        checkpoint = Checkpoint.capture(donor)
        target = LSDBStore()
        target.insert("acct", "x", {"bal": 1})
        with pytest.raises(ReproError):
            target.install_checkpoint(checkpoint)

    def test_bootstrap_protocol_ships_checkpoint_plus_delta(self):
        sim = Simulator(seed=21)
        net = Network(sim, latency=2.0)
        policy = BatchPolicy(max_batch=16)
        donor = net.register(ReplicaNode("donor", sim, batching=policy))
        donor.store.enable_checkpoints(CheckpointPolicy(every_events=20))
        donor.store.insert("acct", "a", {"bal": 0})
        for _ in range(39):  # head=40, latest checkpoint at 40
            donor.store.apply_delta("acct", "a", Delta.add("bal", 1))
        for _ in range(5):  # delta beyond the checkpoint
            donor.store.apply_delta("acct", "a", Delta.add("bal", 1))
        newbie = net.register(ReplicaNode("newbie", sim, batching=policy))
        newbie.request_bootstrap("donor")
        sim.run(until=50.0)
        assert newbie.observable_state() == donor.observable_state()
        assert newbie.store.get("acct", "a").fields["bal"] == 44
        # O(delta): the event frames carried only the post-checkpoint
        # suffix, not the 45-event history.
        assert newbie.events_received == 5

    def test_bootstrap_without_checkpoint_manager_uses_adhoc_capture(self):
        sim = Simulator(seed=22)
        net = Network(sim, latency=2.0)
        donor = net.register(ReplicaNode("donor", sim))
        donor.store.insert("acct", "a", {"bal": 7})
        newbie = net.register(ReplicaNode("newbie", sim))
        newbie.request_bootstrap("donor")
        sim.run(until=20.0)
        assert newbie.observable_state() == donor.observable_state()
        assert newbie.events_received == 0  # everything came in the checkpoint
