"""Tests for dynamic schema and application migration (section 3.1)."""

from __future__ import annotations

import pytest

from repro.core.entity import EntityCatalog, EntityType, FieldSpec
from repro.core.migration import (
    ApplicationMigrator,
    ChangeKind,
    MigratingReducer,
    SchemaMigrationManager,
    classify_changes,
)
from repro.errors import SchemaViolation
from repro.lsdb.events import EventKind, LogEvent
from repro.lsdb.store import LSDBStore


def order_v1():
    return EntityType.define(
        "order",
        [
            FieldSpec("total", "int", required=True),
            FieldSpec("note", "str"),
        ],
    )


def make_manager():
    catalog = EntityCatalog()
    catalog.register(order_v1())
    return catalog, SchemaMigrationManager(catalog)


class TestClassification:
    def test_add_field_detected(self):
        new = EntityType.define(
            "order",
            [FieldSpec("total", "int", required=True), FieldSpec("note", "str"),
             FieldSpec("currency", "str")],
            schema_version=2,
        )
        changes = classify_changes(order_v1(), new)
        assert ChangeKind.ADD_FIELD in {change.kind for change in changes}

    def test_remove_optional_vs_required(self):
        without_note = EntityType.define(
            "order", [FieldSpec("total", "int", required=True)], schema_version=2
        )
        kinds = {c.kind for c in classify_changes(order_v1(), without_note)}
        assert kinds == {ChangeKind.REMOVE_OPTIONAL_FIELD}
        without_total = EntityType.define(
            "order", [FieldSpec("note", "str")], schema_version=2
        )
        kinds = {c.kind for c in classify_changes(order_v1(), without_total)}
        assert kinds == {ChangeKind.REMOVE_REQUIRED_FIELD}

    def test_widen_vs_narrow(self):
        widened = EntityType.define(
            "order",
            [FieldSpec("total", "float", required=True), FieldSpec("note", "str")],
            schema_version=2,
        )
        assert classify_changes(order_v1(), widened)[0].kind is ChangeKind.WIDEN_KIND
        narrowed = EntityType.define(
            "order",
            [FieldSpec("total", "bool", required=True), FieldSpec("note", "str")],
            schema_version=2,
        )
        assert classify_changes(order_v1(), narrowed)[0].kind is ChangeKind.NARROW_KIND

    def test_requiredness_changes(self):
        relaxed = EntityType.define(
            "order", [FieldSpec("total", "int"), FieldSpec("note", "str")],
            schema_version=2,
        )
        assert classify_changes(order_v1(), relaxed)[0].kind is ChangeKind.RELAX_REQUIRED
        tightened = EntityType.define(
            "order",
            [FieldSpec("total", "int", required=True),
             FieldSpec("note", "str", required=True)],
            schema_version=2,
        )
        assert (
            classify_changes(order_v1(), tightened)[0].kind
            is ChangeKind.TIGHTEN_REQUIRED
        )

    def test_different_types_rejected(self):
        with pytest.raises(ValueError):
            classify_changes(order_v1(), EntityType.define("invoice", []))


class TestAdmissibility:
    def test_supportable_migration_applies(self):
        catalog, manager = make_manager()
        v2 = EntityType.define(
            "order",
            [FieldSpec("total", "float", required=True), FieldSpec("note", "str"),
             FieldSpec("currency", "str")],
            schema_version=2,
        )
        plan = manager.apply(v2)
        assert plan.admissible
        assert catalog.get("order").schema_version == 2
        assert manager.migrations_applied == 1

    def test_proscribed_migration_refused(self):
        catalog, manager = make_manager()
        v2 = EntityType.define(
            "order", [FieldSpec("note", "str")], schema_version=2
        )  # drops a required field
        with pytest.raises(SchemaViolation):
            manager.apply(v2)
        assert catalog.get("order").schema_version == 1  # unchanged

    def test_tightening_required_is_proscribed(self):
        _, manager = make_manager()
        v2 = EntityType.define(
            "order",
            [FieldSpec("total", "int", required=True),
             FieldSpec("note", "str", required=True)],
            schema_version=2,
        )
        plan = manager.propose(v2)
        assert not plan.admissible
        assert plan.proscribed[0].kind is ChangeKind.TIGHTEN_REQUIRED


class TestLazyUpcasting:
    def _migrated_store(self):
        catalog, manager = make_manager()
        store = LSDBStore()
        store.register_reducer("order", MigratingReducer(manager))
        # A v1-era event exists before the migration.
        store.log.append(
            LogEvent(0, 0.0, "order", "o1", EventKind.INSERT,
                     {"total": 10, "note": "old"}, schema_version=1)
        )
        v2 = EntityType.define(
            "order",
            [FieldSpec("total", "int", required=True), FieldSpec("note", "str"),
             FieldSpec("currency", "str")],
            schema_version=2,
        )
        manager.apply(v2, upcast=lambda p: {**p, "currency": "EUR"})
        # Events folded before the migration re-fold under the new
        # interpretation (no data rewrite — just a cache re-fold).
        store.rebuild_cache()
        return store, manager

    def test_old_events_upcast_at_read_time(self):
        store, _ = self._migrated_store()
        # New event folds after migration; old one upcasts lazily.
        store.log.append(
            LogEvent(0, 1.0, "order", "o2", EventKind.INSERT,
                     {"total": 20, "currency": "USD"}, schema_version=2)
        )
        assert store.get("order", "o1").fields["currency"] == "EUR"
        assert store.get("order", "o2").fields["currency"] == "USD"

    def test_raw_log_events_unchanged(self):
        store, _ = self._migrated_store()
        raw = store.log.for_entity("order", "o1")[0]
        assert raw.schema_version == 1
        assert "currency" not in raw.payload  # insert-only: no rewrite

    def test_upcast_chain_across_multiple_versions(self):
        catalog, manager = make_manager()
        v2 = EntityType.define(
            "order",
            [FieldSpec("total", "int", required=True), FieldSpec("note", "str"),
             FieldSpec("currency", "str")],
            schema_version=2,
        )
        manager.apply(v2, upcast=lambda p: {**p, "currency": "EUR"})
        v3 = EntityType.define(
            "order",
            [FieldSpec("total", "int", required=True), FieldSpec("note", "str"),
             FieldSpec("currency", "str"), FieldSpec("region", "str")],
            schema_version=3,
        )
        manager.apply(v3, upcast=lambda p: {**p, "region": "EMEA"})
        payload = manager.upcast_payload("order", {"total": 5}, from_version=1)
        assert payload == {"total": 5, "currency": "EUR", "region": "EMEA"}


class TestAttachStore:
    def test_writes_stamped_with_current_schema_version(self):
        catalog, manager = make_manager()
        store = LSDBStore()
        manager.attach_store(store)
        first = store.insert("order", "o1", {"total": 1})
        assert first.schema_version == 1
        v2 = EntityType.define(
            "order",
            [FieldSpec("total", "int", required=True), FieldSpec("note", "str"),
             FieldSpec("currency", "str")],
            schema_version=2,
        )
        manager.apply(v2)
        second = store.insert("order", "o2", {"total": 2, "currency": "USD"})
        assert second.schema_version == 2

    def test_current_version_events_skip_the_upcast(self):
        catalog, manager = make_manager()
        store = LSDBStore()
        manager.attach_store(store)
        v2 = EntityType.define(
            "order",
            [FieldSpec("total", "int", required=True), FieldSpec("note", "str"),
             FieldSpec("currency", "str")],
            schema_version=2,
        )
        manager.apply(v2, upcast=lambda p: {**p, "currency": "EUR"})
        store.insert("order", "o2", {"total": 2, "currency": "USD"})
        # Written at v2: the v1->v2 upcast must not clobber the USD.
        assert store.get("order", "o2").fields["currency"] == "USD"

    def test_unregistered_types_default_to_version_one(self):
        catalog, manager = make_manager()
        store = LSDBStore()
        manager.attach_store(store)
        event = store.insert("unregistered_type", "x", {"v": 1})
        assert event.schema_version == 1


class TestApplicationMigration:
    def test_zero_fraction_routes_everything_old(self):
        migrator = ApplicationMigrator(lambda k: "old", lambda k: "new")
        assert all(migrator.route(f"k{i}") == "old" for i in range(50))

    def test_full_fraction_routes_everything_new(self):
        migrator = ApplicationMigrator(lambda k: "old", lambda k: "new")
        migrator.set_fraction(1.0)
        assert all(migrator.route(f"k{i}") == "new" for i in range(50))

    def test_half_fraction_splits_roughly(self):
        migrator = ApplicationMigrator(lambda k: "old", lambda k: "new")
        migrator.set_fraction(0.5)
        results = [migrator.route(f"k{i}") for i in range(400)]
        new_count = results.count("new")
        assert 120 < new_count < 280

    def test_entity_assignment_is_sticky(self):
        migrator = ApplicationMigrator(lambda k: "old", lambda k: "new")
        migrator.set_fraction(0.5)
        assignments = {f"k{i}": migrator.uses_new(f"k{i}") for i in range(100)}
        for _ in range(3):
            for key, expected in assignments.items():
                assert migrator.uses_new(key) == expected

    def test_ramping_is_monotone(self):
        """Raising the fraction never moves an entity new -> old."""
        migrator = ApplicationMigrator(lambda k: "old", lambda k: "new")
        migrator.set_fraction(0.3)
        on_new_early = {f"k{i}" for i in range(200) if migrator.uses_new(f"k{i}")}
        migrator.set_fraction(0.7)
        on_new_late = {f"k{i}" for i in range(200) if migrator.uses_new(f"k{i}")}
        assert on_new_early <= on_new_late

    def test_invalid_fraction_rejected(self):
        migrator = ApplicationMigrator(lambda k: None, lambda k: None)
        with pytest.raises(ValueError):
            migrator.set_fraction(1.5)

    def test_status_counts_routing(self):
        migrator = ApplicationMigrator(lambda k: "old", lambda k: "new")
        migrator.set_fraction(1.0)
        migrator.route("a")
        migrator.route("b")
        status = migrator.status()
        assert status.routed_to_new == 2
        assert status.complete
