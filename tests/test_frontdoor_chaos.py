"""Satellite: the chaos soak for the front door (fixed seed).

A master/slave cluster behind the front door, with the master crashed
mid-run: the door must walk the ladder (STRONG while healthy, then
BOUNDED_STALENESS from the slave, then EVENTUAL once the slave is
partitioned too), never lose an acknowledged write, honour the declared
staleness bound on every bounded serve, and produce byte-identical
signatures across two runs of the same seed.
"""

from __future__ import annotations

import json

from repro import Cluster
from repro.core.consistency import ConsistencyLevel
from repro.core.readpath import ReadRequest
from repro.sim.failure import FailureInjector

BOUND = 25.0


def run_soak(seed):
    """One deterministic overload-plus-failure run; returns the
    (serve log, cluster) pair."""
    cluster = (
        Cluster.build(seed=seed)
        .with_tracing()
        .with_network(latency=2.0)
        .with_replicas(2, mode="master_slave", ship_interval=10.0)
        .with_front_door(bounded_staleness=BOUND)
        .create()
    )
    sim = cluster.sim
    group = cluster.replication
    injector = FailureInjector(sim, cluster.network)

    # The master is down for t in [100, 200); the slave too for
    # t in [150, 200) — the window where only the bottom rung answers.
    injector.crash_window(group.master, start=100.0, duration=100.0)
    injector.crash_window(group.slaves["slave-1"], start=150.0, duration=50.0)

    acked = []

    def write(index):
        # Writes pause while the master is down (a crashed primary
        # cannot acknowledge anything, so nothing new can be lost).
        if not group.master.crashed:
            group.write_insert("order", f"o-{index}", {"n": index})
            acked.append(f"o-{index}")

    serves = []

    def read(index):
        key = f"o-{max(0, index - 5)}"  # read a recently-acked key
        result = cluster.read("order", key, request=ReadRequest.strong())
        serves.append(
            {
                "t": sim.now,
                "key": key,
                "delivered": (
                    result.delivered_level.value
                    if result.delivered_level
                    else None
                ),
                "staleness": result.staleness,
                "degraded": result.degraded,
                "rejected": result.rejected,
                "found": bool(result),
            }
        )

    for index in range(60):
        sim.schedule_at(5.0 * index, lambda i=index: write(i), label="write")
        sim.schedule_at(
            5.0 * index + 2.5, lambda i=index: read(i), label="read"
        )
    sim.run(until=400.0)
    return serves, acked, cluster


class TestFrontDoorChaosSoak:
    def setup_method(self):
        self.serves, self.acked, self.cluster = run_soak(seed=42)

    def test_ladder_walked_under_failures(self):
        delivered = {
            serve["delivered"] for serve in self.serves if not serve["rejected"]
        }
        assert ConsistencyLevel.STRONG.value in delivered
        assert ConsistencyLevel.BOUNDED_STALENESS.value in delivered
        assert ConsistencyLevel.EVENTUAL.value in delivered

    def test_strong_before_failure_degraded_during(self):
        healthy = [serve for serve in self.serves if serve["t"] < 100.0]
        assert healthy and all(
            serve["delivered"] == "strong" and not serve["degraded"]
            for serve in healthy
        )
        down = [serve for serve in self.serves if 100.0 < serve["t"] < 150.0]
        assert down and all(serve["degraded"] for serve in down)

    def test_no_acked_write_lost_after_heal(self):
        # After recovery and a shipping round, every acknowledged write
        # is readable at STRONG through the door.
        for key in self.acked:
            result = self.cluster.read(
                "order", key, request=ReadRequest.strong()
            )
            assert result.delivered_level is ConsistencyLevel.STRONG
            assert bool(result), f"acked write {key} lost"

    def test_bounded_serves_honour_declared_bound(self):
        bounded = [
            serve
            for serve in self.serves
            if serve["delivered"] == "bounded_staleness"
        ]
        assert bounded  # the window [100, 150) must produce some
        assert all(serve["staleness"] <= BOUND for serve in bounded)

    def test_soak_is_byte_deterministic(self):
        def signature(seed):
            serves, acked, cluster = run_soak(seed)
            return json.dumps(
                {
                    "serves": serves,
                    "acked": acked,
                    "now": cluster.sim.now,
                    "breakers": cluster.front_door.ladder.describe(),
                    "reads": cluster.front_door.reads,
                    "rejects": cluster.front_door.rejects,
                    "degraded": cluster.front_door.degraded_serves,
                },
                sort_keys=True,
            ).encode()

        assert signature(7) == signature(7)
