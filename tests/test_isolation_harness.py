"""The anomaly harness: histories, detector verdicts, scorecard, load.

The contract under test is the executable version of the isolation
spectrum's promise: each canned anomaly materializes under exactly the
modes ``THEORY`` says admit it, the detector's evidence is grounded in
the recorded observations, and the open-loop load probe prices the
modes the way the paper predicts (solipsism trades lost updates for a
zero abort rate; snapshot levels lose nothing).
"""

import json

import pytest

from repro.core.transaction import IsolationLevel
from repro.isolation import (
    ANOMALIES,
    AnomalyDetector,
    HISTORIES,
    MODES,
    THEORY,
    anomaly_matrix,
    history_named,
    matrix_bools,
    matches_theory,
    run_history,
    run_open_loop,
)

detector = AnomalyDetector()


def judge(name, level):
    return detector.judge(run_history(history_named(name), level))


class TestHistories:
    def test_canned_set_is_the_anomaly_set(self):
        assert ANOMALIES == (
            "dirty_read",
            "read_skew",
            "lost_update",
            "write_skew",
            "long_fork",
            "non_monotonic_snapshot",
        )
        assert {h.name for h in HISTORIES} == set(ANOMALIES)

    def test_history_named_unknown(self):
        with pytest.raises(KeyError):
            history_named("phantom")

    def test_result_records_observations_and_receipts(self):
        result = run_history(
            history_named("lost_update"), IsolationLevel.SOLIPSISTIC
        )
        assert result.isolation == "solipsistic"
        assert result.committed("A") and result.committed("B")
        assert result.observed("A", "counter", "x") == {"n": 0}
        assert result.final["counter/x"] == {"n": 1}
        with pytest.raises(KeyError):
            result.observed("A", "counter", "missing")


class TestAnomalyByMode:
    def test_lost_update_solipsistic_only(self):
        assert judge("lost_update", IsolationLevel.SOLIPSISTIC).materialized
        for level in (IsolationLevel.NMSI, IsolationLevel.SNAPSHOT,
                      IsolationLevel.SERIALIZABLE):
            verdict = judge("lost_update", level)
            assert not verdict.materialized, level

    def test_write_skew_everywhere_but_serializable(self):
        for level in (IsolationLevel.SOLIPSISTIC, IsolationLevel.NMSI,
                      IsolationLevel.SNAPSHOT):
            assert judge("write_skew", level).materialized, level
        assert not judge(
            "write_skew", IsolationLevel.SERIALIZABLE
        ).materialized

    def test_long_fork_nmsi_only(self):
        assert judge("long_fork", IsolationLevel.NMSI).materialized
        for level in (IsolationLevel.SOLIPSISTIC, IsolationLevel.SNAPSHOT,
                      IsolationLevel.SERIALIZABLE):
            assert not judge("long_fork", level).materialized, level

    def test_non_monotonic_snapshot_nmsi_only(self):
        assert judge(
            "non_monotonic_snapshot", IsolationLevel.NMSI
        ).materialized
        for level in (IsolationLevel.SOLIPSISTIC, IsolationLevel.SNAPSHOT,
                      IsolationLevel.SERIALIZABLE):
            assert not judge("non_monotonic_snapshot", level).materialized

    def test_read_skew_solipsistic_only(self):
        assert judge("read_skew", IsolationLevel.SOLIPSISTIC).materialized
        for level in (IsolationLevel.NMSI, IsolationLevel.SNAPSHOT,
                      IsolationLevel.SERIALIZABLE):
            assert not judge("read_skew", level).materialized, level

    def test_dirty_read_structurally_impossible(self):
        # Writes are buffered until commit, so no mode can leak them.
        for level in MODES:
            assert not judge("dirty_read", level).materialized, level

    def test_evidence_is_grounded(self):
        verdict = judge("long_fork", IsolationLevel.NMSI)
        assert "concurrent=True" in verdict.evidence
        verdict = judge("lost_update", IsolationLevel.SNAPSHOT)
        assert "1 of 2 increments committed" in verdict.evidence


class TestScorecard:
    def test_matrix_matches_theory(self):
        ok, mismatches = matches_theory(matrix_bools(anomaly_matrix()))
        assert ok, mismatches

    def test_theory_is_monotone_down_the_spectrum(self):
        # Moving up the spectrum never *introduces* an anomaly that
        # both adjacent modes' semantics forbid... except NMSI, whose
        # whole point is trading monotonicity away: it sits above
        # solipsistic by fixing lost updates/read skew, not by
        # shrinking the anomaly set pointwise.
        assert THEORY["serializable"] == {a: False for a in ANOMALIES}
        for anomaly in ANOMALIES:
            assert not (
                THEORY["snapshot"][anomaly]
                and not THEORY["nmsi"][anomaly]
            ), f"SI admits {anomaly} but NMSI forbids it"

    def test_matrix_deterministic(self):
        first = json.dumps(anomaly_matrix(), sort_keys=True)
        second = json.dumps(anomaly_matrix(), sort_keys=True)
        assert first == second


class TestOpenLoopLoad:
    @pytest.fixture(scope="class")
    def load(self):
        return {
            mode.value: run_open_loop(mode, transactions=120)
            for mode in MODES
        }

    def test_solipsism_trades_lost_updates_for_zero_aborts(self, load):
        stats = load["solipsistic"]
        assert stats["aborts"] == 0
        assert stats["lost_updates"] > 0

    def test_snapshot_levels_lose_nothing(self, load):
        for mode in ("nmsi", "snapshot", "serializable"):
            assert load[mode]["lost_updates"] == 0, mode
            assert load[mode]["updates_applied"] == load[mode]["rmw_commits"]

    def test_si_aborts_no_more_than_serializable(self, load):
        assert load["snapshot"]["abort_rate"] <= load["serializable"]["abort_rate"]
        assert load["snapshot"]["abort_rate"] > 0

    def test_nmsi_pays_for_the_propagation_window(self, load):
        # NMSI's conservative validation aborts at least as often as SI
        # under the same cross-site load.
        assert load["nmsi"]["abort_rate"] >= load["snapshot"]["abort_rate"]
        assert load["nmsi"]["ww_conflict_aborts"] == load["nmsi"]["aborts"]

    def test_conflict_attribution_by_mode(self, load):
        assert load["serializable"]["occ_aborts"] == load["serializable"]["aborts"]
        assert load["snapshot"]["ww_conflict_aborts"] == load["snapshot"]["aborts"]

    def test_accounting_closes(self, load):
        for stats in load.values():
            assert stats["commits"] + stats["aborts"] == stats["transactions"]
            assert stats["goodput"] == pytest.approx(
                stats["commits"] / stats["transactions"]
            )

    def test_load_deterministic(self):
        first = json.dumps(
            run_open_loop(IsolationLevel.NMSI, transactions=60), sort_keys=True
        )
        second = json.dumps(
            run_open_loop(IsolationLevel.NMSI, transactions=60), sort_keys=True
        )
        assert first == second
