"""Tests for the replication schemes across the consistency spectrum."""

from __future__ import annotations

import pytest

from repro.merge.deltas import Delta
from repro.core.policy import TimeoutPolicy
from repro.replication.batching import BatchPolicy
from repro.replication.active_active import ActiveActiveGroup
from repro.replication.anti_entropy import AntiEntropy
from repro.replication.asynchronous import AsyncPrimaryBackup
from repro.replication.master_slave import MasterSlaveGroup
from repro.replication.quorum import QuorumGroup
from repro.replication.replica import ReplicaNode, converged
from repro.replication.synchronous import SyncPrimaryBackup
from repro.replication.warehouse import WarehouseExtract
from repro.sim.network import Network
from repro.sim.scheduler import Simulator


def world(latency=2.0, seed=0):
    sim = Simulator(seed=seed)
    return sim, Network(sim, latency=latency)


class TestReplicaProtocol:
    def test_events_message_applies_idempotently(self):
        sim, net = world()
        a = net.register(ReplicaNode("a", sim))
        b = net.register(ReplicaNode("b", sim))
        event = a.store.insert("t", "k", {"v": 1})
        a.ship_events("b", [event])
        a.ship_events("b", [event])  # duplicate shipment
        sim.run()
        assert b.store.get("t", "k").fields["v"] == 1
        assert b.store.duplicates_rejected == 1

    def test_probe_fills_gaps(self):
        sim, net = world()
        a = net.register(ReplicaNode("a", sim))
        b = net.register(ReplicaNode("b", sim))
        a.store.insert("t", "k", {"v": 1})
        a.store.apply_delta("t", "k", Delta.add("v", 2))
        b.probe("a")  # "here's what I have" -> a ships the difference
        sim.run()
        assert b.store.get("t", "k").fields["v"] == 3

    def test_converged_predicate(self):
        sim, net = world()
        a = net.register(ReplicaNode("a", sim))
        b = net.register(ReplicaNode("b", sim))
        assert converged([a, b])
        a.store.insert("t", "k", {"v": 1})
        assert not converged([a, b])


class TestAsyncPrimaryBackup:
    def test_writes_ack_immediately(self):
        sim, net = world()
        pair = AsyncPrimaryBackup(sim, net, ship_interval=10.0, batching=BatchPolicy())
        acked_at = pair.write_insert("order", "o1", {"v": 1})
        assert acked_at == sim.now  # no waiting on the backup

    def test_backup_catches_up_after_interval(self):
        sim, net = world()
        pair = AsyncPrimaryBackup(sim, net, ship_interval=10.0, batching=BatchPolicy())
        pair.write_insert("order", "o1", {"v": 1})
        assert pair.backup.store.get("order", "o1") is None
        sim.run(until=20.0)
        assert pair.backup.store.get("order", "o1").fields["v"] == 1
        assert pair.replication_lag_events == 0

    def test_failover_loses_unshipped_tail(self):
        sim, net = world()
        pair = AsyncPrimaryBackup(sim, net, ship_interval=100.0, batching=BatchPolicy())
        for index in range(3):
            pair.write_insert("order", f"o{index}", {}, tx_id=f"t{index}")
        report = pair.failover()  # before any shipping round
        assert report.lost_events == 3
        assert report.lost_tx_ids == ["t0", "t1", "t2"]

    def test_no_loss_after_shipping(self):
        sim, net = world()
        pair = AsyncPrimaryBackup(sim, net, ship_interval=5.0, batching=BatchPolicy())
        pair.write_insert("order", "o1", {}, tx_id="t1")
        sim.run(until=20.0)
        assert pair.failover().lost_events == 0


class TestSyncPrimaryBackup:
    def test_ack_waits_for_backup_round_trip(self):
        sim, net = world(latency=7.0)
        pair = SyncPrimaryBackup(sim, net)
        pair.write_insert("order", "o1", {"v": 1})
        sim.run()
        result = pair.results[0]
        assert result.ok
        assert result.latency == 14.0  # there and back

    def test_backup_holds_data_at_ack_time(self):
        sim, net = world()
        pair = SyncPrimaryBackup(sim, net)
        holder = {}

        def on_done(result):
            holder["backup_state"] = pair.backup.store.get("order", "o1")

        pair.write_insert("order", "o1", {"v": 1}, on_done=on_done)
        sim.run()
        assert holder["backup_state"].fields["v"] == 1  # zero lost tail

    def test_partition_makes_writes_fail(self):
        sim, net = world()
        pair = SyncPrimaryBackup(sim, net, timeout=TimeoutPolicy(per_attempt=50.0))
        net.partition_into({pair.primary.node_id}, {pair.backup.node_id})
        pair.write_insert("order", "o1", {"v": 1})
        sim.run()
        assert pair.failed_writes == 1

    def test_delta_write_supported(self):
        sim, net = world()
        pair = SyncPrimaryBackup(sim, net)
        pair.write_insert("acct", "a", {"bal": 0})
        pair.write_delta("acct", "a", Delta.add("bal", 5))
        sim.run()
        assert pair.backup.store.get("acct", "a").fields["bal"] == 5


class TestActiveActive:
    def test_eager_propagation_converges(self):
        sim, net = world()
        group = ActiveActiveGroup(sim, net, ["r1", "r2", "r3"])
        group.write_delta("r1", "stock", "w", Delta.add("n", 5))
        sim.run(until=30.0)
        assert group.is_converged()
        assert group.read("r3", "stock", "w").fields["n"] == 5

    def test_concurrent_deltas_from_all_replicas_sum(self):
        sim, net = world()
        group = ActiveActiveGroup(sim, net, ["r1", "r2", "r3"])
        for replica_id in ("r1", "r2", "r3"):
            group.write_delta(replica_id, "stock", "w", Delta.add("n", 1))
        sim.run(until=60.0)
        assert group.is_converged()
        assert group.read("r1", "stock", "w").fields["n"] == 3

    def test_available_and_divergent_under_partition(self):
        sim, net = world()
        group = ActiveActiveGroup(sim, net, ["r1", "r2"], anti_entropy_interval=10.0)
        net.partition_into({"r1"}, {"r2"})
        ack1 = group.write_delta("r1", "stock", "w", Delta.add("n", 1))
        ack2 = group.write_delta("r2", "stock", "w", Delta.add("n", 2))
        assert ack1 == sim.now and ack2 == sim.now  # both sides accept
        sim.run(until=30.0)
        assert not group.is_converged()
        assert group.divergence() > 0

    def test_anti_entropy_heals_after_partition(self):
        sim, net = world()
        group = ActiveActiveGroup(sim, net, ["r1", "r2"], anti_entropy_interval=10.0)
        net.partition_into({"r1"}, {"r2"})
        group.write_delta("r1", "stock", "w", Delta.add("n", 1))
        group.write_delta("r2", "stock", "w", Delta.add("n", 2))
        sim.run(until=30.0)
        net.heal()
        sim.run(until=100.0)
        assert group.is_converged()
        assert group.read("r1", "stock", "w").fields["n"] == 3

    def test_without_anti_entropy_lost_messages_never_repair(self):
        sim, net = world()
        group = ActiveActiveGroup(sim, net, ["r1", "r2"], anti_entropy_interval=0)
        net.partition_into({"r1"}, {"r2"})
        group.write_delta("r1", "stock", "w", Delta.add("n", 1))
        net.heal()
        sim.run(until=500.0)
        assert not group.is_converged()

    def test_lww_set_fields_converges_across_replicas(self):
        sim, net = world()
        group = ActiveActiveGroup(sim, net, ["r1", "r2"], anti_entropy_interval=10.0)
        group.write_set_fields("r1", "doc", "d", {"title": "from-r1"})
        sim.run(until=1.0)
        group.write_set_fields("r2", "doc", "d", {"title": "from-r2"})
        sim.run(until=100.0)
        assert group.is_converged()
        assert group.read("r1", "doc", "d").fields["title"] == "from-r2"

    def test_group_requires_two_replicas(self):
        sim, net = world()
        with pytest.raises(ValueError):
            ActiveActiveGroup(sim, net, ["solo"])


class TestQuorum:
    def test_write_then_read_sees_value(self):
        sim, net = world()
        group = QuorumGroup(sim, net, ["q1", "q2", "q3"])
        group.write("stock", "w", {"n": 7})
        sim.run()
        seen = []
        group.read("stock", "w", on_done=lambda o: seen.append(o))
        sim.run()
        assert seen[0].ok and seen[0].value == {"n": 7}

    def test_majority_default_quorums(self):
        sim, net = world()
        group = QuorumGroup(sim, net, ["q1", "q2", "q3", "q4", "q5"])
        assert group.write_quorum == 3 and group.read_quorum == 3

    def test_unavailable_under_partition(self):
        sim, net = world()
        group = QuorumGroup(
            sim, net, ["q1", "q2", "q3"], timeout=TimeoutPolicy(per_attempt=30.0)
        )
        net.partition_into({"quorum-coordinator", "q1"}, {"q2", "q3"})
        group.write("stock", "w", {"n": 1})
        sim.run()
        assert group.outcomes[0].ok is False
        assert group.outcomes[0].latency == 30.0  # waited the whole timeout

    def test_minority_crash_tolerated(self):
        sim, net = world()
        group = QuorumGroup(sim, net, ["q1", "q2", "q3"])
        group.replicas[0].crash()
        group.write("stock", "w", {"n": 1})
        sim.run()
        assert group.outcomes[0].ok

    def test_read_prefers_freshest_replica(self):
        sim, net = world()
        group = QuorumGroup(sim, net, ["q1", "q2", "q3"], read_quorum=3)
        group.write("stock", "w", {"n": 1})
        sim.run()
        # Write a newer value directly at one replica (simulating a
        # partially propagated write).
        group.replicas[0].store.set_fields("stock", "w", {"n": 2})
        seen = []
        group.read("stock", "w", on_done=lambda o: seen.append(o))
        sim.run()
        assert seen[0].value == {"n": 2}

    def test_oversized_quorum_rejected(self):
        sim, net = world()
        with pytest.raises(ValueError):
            QuorumGroup(sim, net, ["q1"], write_quorum=2)


class TestMasterSlave:
    def test_slave_reads_lag_by_ship_interval(self):
        sim, net = world()
        group = MasterSlaveGroup(
            sim, net, "m", ["s1"], ship_interval=10.0, batching=BatchPolicy()
        )
        group.write_insert("stock", "b", {"copies": 5})
        assert group.read("s1", "stock", "b") is None
        assert group.slave_lag_events("s1") == 1
        sim.run(until=20.0)
        assert group.read("s1", "stock", "b").fields["copies"] == 5
        assert group.slave_lag_events("s1") == 0

    def test_master_reads_are_fresh(self):
        sim, net = world()
        group = MasterSlaveGroup(sim, net, "m", ["s1"])
        group.write_insert("stock", "b", {"copies": 5})
        assert group.read("m", "stock", "b").fields["copies"] == 5

    def test_slave_rejects_updates(self):
        from repro.errors import NotMaster

        sim, net = world()
        group = MasterSlaveGroup(sim, net, "m", ["s1"])
        with pytest.raises(NotMaster):
            group.write_at("s1")
        assert group.rejected_writes == 1

    def test_multiple_slaves_each_catch_up(self):
        sim, net = world()
        group = MasterSlaveGroup(
            sim, net, "m", ["s1", "s2"], ship_interval=5.0, batching=BatchPolicy()
        )
        group.write_delta("stock", "b", Delta.add("copies", 3))
        sim.run(until=20.0)
        assert group.read("s1", "stock", "b").fields["copies"] == 3
        assert group.read("s2", "stock", "b").fields["copies"] == 3


class TestWarehouse:
    def test_queries_empty_before_first_extract(self, sim):
        store_sim, net = world()
        from repro.lsdb.store import LSDBStore

        store = LSDBStore(clock=lambda: store_sim.now)
        warehouse = WarehouseExtract(store_sim, store, interval=10.0)
        store.insert("order", "o1", {"total": 5})
        assert warehouse.get("order", "o1") is None
        assert warehouse.staleness == float("inf")

    def test_extract_snapshots_current_state(self):
        sim, _ = world()
        from repro.lsdb.store import LSDBStore

        store = LSDBStore(clock=lambda: sim.now)
        warehouse = WarehouseExtract(sim, store, interval=10.0)
        store.insert("order", "o1", {"total": 5})
        sim.run(until=10.0)
        assert warehouse.get("order", "o1").fields["total"] == 5
        store.insert("order", "o2", {"total": 7})
        assert warehouse.aggregate("order", "total") == 5  # still the old extract
        assert warehouse.lag_events == 1
        sim.run(until=20.0)
        assert warehouse.aggregate("order", "total") == 12

    def test_staleness_is_bounded_by_interval(self):
        sim, _ = world()
        from repro.lsdb.store import LSDBStore

        store = LSDBStore(clock=lambda: sim.now)
        warehouse = WarehouseExtract(sim, store, interval=10.0)
        sim.run(until=35.0)
        assert warehouse.staleness <= 10.0
        assert warehouse.extracts_taken == 3
