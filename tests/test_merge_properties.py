"""Property-based tests: the semilattice laws behind eventual consistency.

Every convergent type must satisfy commutativity, associativity and
idempotence of ``merge`` — the algebra that makes "replicas converge to
equivalent states" (paper section 1) a theorem instead of a hope.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.merge.clock import VectorClock, VersionVector
from repro.merge.counters import GCounter, PNCounter
from repro.merge.deltas import Delta, apply_delta, compose
from repro.merge.registers import LWWRegister, MVRegister
from repro.merge.sets import GSet, ORSet, TwoPhaseSet

REPLICAS = st.sampled_from(["r1", "r2", "r3"])
SMALL_INT = st.integers(min_value=0, max_value=20)


# --------------------------------------------------------------------- #
# Strategies building random instances of each type
# --------------------------------------------------------------------- #

@st.composite
def gcounters(draw):
    counter = GCounter()
    for _ in range(draw(st.integers(0, 5))):
        counter = counter.increment(draw(REPLICAS), draw(SMALL_INT))
    return counter


@st.composite
def pncounters(draw):
    counter = PNCounter()
    for _ in range(draw(st.integers(0, 5))):
        replica = draw(REPLICAS)
        amount = draw(st.integers(-10, 10))
        counter = counter.increment(replica, amount)
    return counter


@st.composite
def lww_registers(draw):
    return LWWRegister(
        stored=draw(st.integers(0, 100)),
        timestamp=draw(st.integers(0, 50)),
        replica_id=draw(REPLICAS),
    )


@st.composite
def mv_registers(draw):
    register = MVRegister()
    clock = VectorClock()
    for _ in range(draw(st.integers(0, 4))):
        clock = clock.increment(draw(REPLICAS))
        register = register.assign(draw(st.integers(0, 9)), clock)
    return register


@st.composite
def gsets(draw):
    return GSet(draw(st.lists(st.integers(0, 9), max_size=5)))


@st.composite
def two_phase_sets(draw):
    items = TwoPhaseSet()
    for value in draw(st.lists(st.integers(0, 9), max_size=5)):
        items = items.add(value)
    for value in draw(st.lists(st.integers(0, 9), max_size=3)):
        items = items.remove(value)
    return items


@st.composite
def orsets(draw):
    items = ORSet()
    tag = 0
    for value in draw(st.lists(st.integers(0, 5), max_size=5)):
        tag += 1
        items = items.add(value, f"{draw(REPLICAS)}:{tag}")
    for value in draw(st.lists(st.integers(0, 5), max_size=3)):
        items = items.remove(value)
    return items


@st.composite
def version_vectors(draw):
    vector = VersionVector()
    for replica in ("r1", "r2", "r3"):
        vector.record(replica, draw(SMALL_INT))
    return vector


MERGEABLE_STRATEGIES = [
    gcounters(),
    pncounters(),
    lww_registers(),
    mv_registers(),
    gsets(),
    two_phase_sets(),
    orsets(),
]


def observable(value):
    """Comparable view of any merge type (its application-visible value)."""
    return value.value


# --------------------------------------------------------------------- #
# The three laws, once per type
# --------------------------------------------------------------------- #

def make_law_tests(strategy, type_name):
    @settings(max_examples=60)
    @given(a=strategy, b=strategy)
    def commutative(a, b):
        assert observable(a.merge(b)) == observable(b.merge(a))

    @settings(max_examples=60)
    @given(a=strategy, b=strategy, c=strategy)
    def associative(a, b, c):
        assert observable(a.merge(b).merge(c)) == observable(a.merge(b.merge(c)))

    @settings(max_examples=60)
    @given(a=strategy)
    def idempotent(a):
        assert observable(a.merge(a)) == observable(a)

    commutative.__name__ = f"test_{type_name}_merge_commutative"
    associative.__name__ = f"test_{type_name}_merge_associative"
    idempotent.__name__ = f"test_{type_name}_merge_idempotent"
    return commutative, associative, idempotent


(
    test_gcounter_merge_commutative,
    test_gcounter_merge_associative,
    test_gcounter_merge_idempotent,
) = make_law_tests(gcounters(), "gcounter")

(
    test_pncounter_merge_commutative,
    test_pncounter_merge_associative,
    test_pncounter_merge_idempotent,
) = make_law_tests(pncounters(), "pncounter")

(
    test_lww_merge_commutative,
    test_lww_merge_associative,
    test_lww_merge_idempotent,
) = make_law_tests(lww_registers(), "lww")

(
    test_mv_merge_commutative,
    test_mv_merge_associative,
    test_mv_merge_idempotent,
) = make_law_tests(mv_registers(), "mv")

(
    test_gset_merge_commutative,
    test_gset_merge_associative,
    test_gset_merge_idempotent,
) = make_law_tests(gsets(), "gset")

(
    test_2pset_merge_commutative,
    test_2pset_merge_associative,
    test_2pset_merge_idempotent,
) = make_law_tests(two_phase_sets(), "2pset")

(
    test_orset_merge_commutative,
    test_orset_merge_associative,
    test_orset_merge_idempotent,
) = make_law_tests(orsets(), "orset")


# --------------------------------------------------------------------- #
# Additional invariants
# --------------------------------------------------------------------- #

@settings(max_examples=60)
@given(a=gcounters(), b=gcounters())
def test_gcounter_merge_never_decreases(a, b):
    merged = a.merge(b)
    # Per-replica max implies the merged total dominates both inputs.
    assert merged.value >= max(a.value, b.value)


@settings(max_examples=60)
@given(vector_counts=st.lists(version_vectors(), min_size=2, max_size=4))
def test_version_vector_merge_is_least_upper_bound(vector_counts):
    merged = VersionVector()
    for vector in vector_counts:
        merged.merge(vector)
    for vector in vector_counts:
        for replica in ("r1", "r2", "r3"):
            assert merged.get(replica) >= vector.get(replica)


@settings(max_examples=80)
@given(
    amounts=st.lists(st.integers(-20, 20), min_size=1, max_size=8),
    initial=st.integers(-10, 10),
)
def test_delta_application_order_does_not_matter(amounts, initial):
    """Numeric deltas commute: any application order reaches the same state."""
    deltas = [Delta.add("balance", amount) for amount in amounts]
    forward = {"balance": initial}
    for delta in deltas:
        forward = apply_delta(forward, delta)
    backward = {"balance": initial}
    for delta in reversed(deltas):
        backward = apply_delta(backward, delta)
    assert forward == backward
    composed = apply_delta({"balance": initial}, compose(deltas))
    assert composed == forward


@settings(max_examples=60)
@given(
    amounts=st.lists(st.integers(-20, 20), min_size=1, max_size=8),
)
def test_delta_invert_restores_any_state(amounts):
    deltas = [Delta.add("x", amount) for amount in amounts]
    state = {"x": 0}
    for delta in deltas:
        state = apply_delta(state, delta)
    for delta in deltas:
        state = apply_delta(state, delta.invert())
    assert state == {"x": 0}
