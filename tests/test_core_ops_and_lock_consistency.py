"""Preview-state edge cases and §3.1's logical-lock strong consistency.

Section 3.1: "Strong consistency can also be provided using logical
locks with coarse granularity, a technique SAP systems use to avoid
database bottlenecks."  The second test class demonstrates exactly
that: TRY_LOCK transactions over one coarse lock serialize conflicting
business decisions that solipsistic transactions would have overbooked.
"""

from __future__ import annotations

from repro.core.ops import PendingOp, preview_state
from repro.core.transaction import CCMode, TransactionManager
from repro.lsdb.events import EventKind
from repro.lsdb.store import LSDBStore
from repro.merge.deltas import Delta


class TestPreviewStateEdges:
    def test_insert_then_delta_then_set(self):
        ops = [
            PendingOp(EventKind.INSERT, "t", "k", {"a": 1, "b": 1}),
            PendingOp(EventKind.DELTA, "t", "k", Delta.add("a", 5).to_payload()),
            PendingOp(EventKind.SET_FIELDS, "t", "k", {"b": 9}),
        ]
        state = preview_state(None, ops)
        assert state.fields == {"a": 6, "b": 9}
        assert state.version_count == 1

    def test_obsolete_mark_in_preview(self):
        ops = [
            PendingOp(EventKind.INSERT, "t", "k", {}),
            PendingOp(EventKind.OBSOLETE, "t", "k"),
        ]
        assert preview_state(None, ops).obsolete

    def test_preview_of_delta_on_missing_entity_defaults_zero(self):
        state = preview_state(
            None, [PendingOp(EventKind.DELTA, "t", "k", Delta.add("n", -4).to_payload())]
        )
        assert state.fields == {"n": -4}

    def test_entity_ref_property(self):
        op = PendingOp(EventKind.INSERT, "order", "o1", {})
        assert op.entity_ref == ("order", "o1")


class TestLogicalLockStrongConsistency:
    """Coarse logical locks serialize the subjective race away (§3.1)."""

    def _manager(self):
        store = LSDBStore()
        manager = TransactionManager(store)
        store.insert("book_stock", "moby", {"available": 1})
        return store, manager

    def test_solipsistic_buyers_overbook(self):
        store, manager = self._manager()
        # Both buyers read availability=1 before either writes.
        tx_a = manager.begin(mode=CCMode.SOLIPSISTIC)
        tx_b = manager.begin(mode=CCMode.SOLIPSISTIC)
        assert tx_a.read("book_stock", "moby").fields["available"] == 1
        assert tx_b.read("book_stock", "moby").fields["available"] == 1
        tx_a.apply_delta("book_stock", "moby", Delta.add("available", -1))
        tx_b.apply_delta("book_stock", "moby", Delta.add("available", -1))
        assert tx_a.commit().committed and tx_b.commit().committed
        # The oversell is recorded honestly (-1) for later apology.
        assert store.get("book_stock", "moby").fields["available"] == -1

    def test_try_lock_buyers_serialize(self):
        store, manager = self._manager()
        # Coarse lock: the whole title.  First buyer holds it across
        # their read-decide-write; second buyer's commit is refused.
        tx_a = manager.begin(mode=CCMode.TRY_LOCK)
        tx_b = manager.begin(mode=CCMode.TRY_LOCK)
        manager.locks.acquire("book_stock/moby", tx_a.tx_id)
        tx_a.apply_delta("book_stock", "moby", Delta.add("available", -1))
        tx_b.apply_delta("book_stock", "moby", Delta.add("available", -1))
        receipt_b = tx_b.commit()
        assert not receipt_b.committed
        assert "lock unavailable" in receipt_b.reason
        assert tx_a.commit().committed
        # Exactly one sale: no oversell, no apology needed — at the
        # price of refusing the concurrent buyer (the CAP trade again).
        assert store.get("book_stock", "moby").fields["available"] == 0

    def test_lock_freed_after_owner_commits(self):
        store, manager = self._manager()
        tx_a = manager.begin(mode=CCMode.TRY_LOCK)
        tx_a.apply_delta("book_stock", "moby", Delta.add("available", -1))
        assert tx_a.commit().committed
        tx_b = manager.begin(mode=CCMode.TRY_LOCK)
        tx_b.apply_delta("book_stock", "moby", Delta.add("available", 1))
        assert tx_b.commit().committed  # restock succeeds post-release
