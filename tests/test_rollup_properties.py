"""Property-based tests: rollup convergence.

The rollup must be *convergent*: replicas that apply the same event set
in different orders reach the same observable state.  Deltas commute by
arithmetic; ``SET_FIELDS`` converges via per-field (timestamp, origin)
stamps.  This is the formal core of eventual consistency in the LSDB.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsdb.events import EventKind, LogEvent
from repro.lsdb.rollup import Rollup
from repro.merge.deltas import Delta


@st.composite
def delta_events(draw):
    """A batch of delta events on one entity (stamps irrelevant)."""
    amounts = draw(st.lists(st.integers(-10, 10), min_size=1, max_size=8))
    return [
        LogEvent(
            lsn=0, timestamp=float(index), entity_type="t", entity_key="k",
            kind=EventKind.DELTA, payload=Delta.add("qty", amount).to_payload(),
            origin=f"r{index % 3}", origin_seq=index + 1,
        )
        for index, amount in enumerate(amounts)
    ]


@st.composite
def stamped_set_events(draw):
    """SET_FIELDS events with unique (timestamp, origin) stamps."""
    count = draw(st.integers(1, 6))
    events = []
    for index in range(count):
        events.append(
            LogEvent(
                lsn=0,
                timestamp=float(draw(st.integers(0, 20))),
                entity_type="t",
                entity_key="k",
                kind=EventKind.SET_FIELDS,
                payload={"v": draw(st.integers(0, 9))},
                origin=f"r{index}",  # unique origin => unique stamp
                origin_seq=1,
            )
        )
    return events


def observable(states):
    return {
        ref: (dict(state.fields), state.deleted, state.obsolete)
        for ref, state in states.items()
    }


@settings(max_examples=80)
@given(events=delta_events(), permutation_seed=st.integers(0, 1000))
def test_delta_rollup_is_order_independent(events, permutation_seed):
    import random

    shuffled = list(events)
    random.Random(permutation_seed).shuffle(shuffled)
    rollup = Rollup()
    assert observable(rollup.fold(events)) == observable(rollup.fold(shuffled))


@settings(max_examples=80)
@given(events=stamped_set_events(), permutation_seed=st.integers(0, 1000))
def test_set_fields_rollup_is_order_independent(events, permutation_seed):
    import random

    shuffled = list(events)
    random.Random(permutation_seed).shuffle(shuffled)
    rollup = Rollup()
    assert observable(rollup.fold(events)) == observable(rollup.fold(shuffled))


@settings(max_examples=50)
@given(
    delta_batch=delta_events(),
    set_batch=stamped_set_events(),
    permutation_seed=st.integers(0, 1000),
)
def test_mixed_event_rollup_is_order_independent(
    delta_batch, set_batch, permutation_seed
):
    """Deltas touch ``qty``; SET_FIELDS touch ``v`` — disjoint fields,
    so any interleaving converges."""
    import random

    events = delta_batch + set_batch
    shuffled = list(events)
    random.Random(permutation_seed).shuffle(shuffled)
    rollup = Rollup()
    assert observable(rollup.fold(events)) == observable(rollup.fold(shuffled))


@settings(max_examples=50)
@given(events=delta_events())
def test_rollup_applied_twice_from_initial_equals_direct(events):
    """Folding a prefix then the suffix equals folding everything —
    the snapshot+replay identity the SnapshotManager relies on."""
    rollup = Rollup()
    split = len(events) // 2
    prefix = rollup.fold(events[:split])
    resumed = rollup.fold(events[split:], initial=prefix)
    direct = rollup.fold(events)
    assert observable(resumed) == observable(direct)
