"""Causal trace reconstruction: write journeys, partitions, export."""

from __future__ import annotations

import json
import pathlib

from repro import Cluster
from repro.obs.export import render_timeline, trace_payload, validate_trace
from repro.obs.trace import Tracer

SCHEMA_PATH = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "trace_schema.json"


def _span_names(tree_node) -> list[str]:
    """Flatten a Tracer.tree() node into depth-first span names."""
    names = [tree_node["name"]]
    for child in tree_node["children"]:
        names.extend(_span_names(child))
    return names


class TestTracerPrimitives:
    def test_ambient_parenting(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        assert outer.parent_id == ""

    def test_capture_resume_bridges_time(self):
        times = [0.0]
        tracer = Tracer(clock=lambda: times[0])
        with tracer.span("origin") as origin:
            captured = tracer.capture()
        times[0] = 50.0
        with tracer.resume(captured):
            later = tracer.start_span("later")
            tracer.end_span(later)
        assert later.parent_id == origin.span_id
        assert later.start == 50.0

    def test_resume_tolerates_unknown(self):
        tracer = Tracer()
        with tracer.resume(None):
            assert tracer.current is None
        with tracer.resume("s999"):
            assert tracer.current is None


class TestAsyncWriteJourney:
    """The acceptance scenario: one asynchronously replicated write
    reconstructs as a tree with correct virtual timestamps."""

    def _traced_cluster(self):
        cluster = (
            Cluster.build(seed=7)
            .with_network(latency=5.0)
            .with_replicas(2, mode="async", ship_interval=10.0)
            .with_tracing()
            .create()
        )
        index = cluster.replication.backup.store.register_index("order", "status")
        cluster.sim.schedule_at(30.0, index.refresh, label="index-refresh")
        cluster.replication.write_insert(
            "order", "o-1", {"total": 9, "status": "new"}
        )
        cluster.sim.run(until=40.0)
        return cluster

    def test_tree_shape_and_virtual_times(self):
        cluster = self._traced_cluster()
        tracer = cluster.tracer
        trace_ids = tracer.trace_ids()
        assert len(trace_ids) == 1
        (root,) = tracer.tree(trace_ids[0])

        # Root: the origin append, instantaneous at t=0 on the primary.
        assert root["name"] == "store.append"
        assert root["node"] == "primary"
        assert (root["start"], root["end"]) == (0.0, 0.0)

        # First child: the shipping hop, leaving at the first ship round
        # (t=10) and arriving one network latency later (t=15).
        ship = root["children"][0]
        assert ship["name"] == "replicate.ship"
        assert (ship["start"], ship["end"]) == (10.0, 15.0)
        assert ship["attrs"]["status"] == "delivered"

        # Its child: the remote apply, at arrival time on the backup.
        (apply_span,) = ship["children"]
        assert apply_span["name"] == "store.apply"
        assert apply_span["node"] == "backup"
        assert apply_span["start"] == 15.0
        assert apply_span["attrs"]["status"] == "applied"

        # The asynchronous index refresh chains onto the apply, at its
        # scheduled (later) time — the staleness window made visible.
        (refresh,) = apply_span["children"]
        assert refresh["name"] == "index.refresh"
        assert refresh["node"] == "backup"
        assert refresh["start"] == 30.0

        # At-least-once shipping re-ships the suffix; the duplicate is
        # visibly rejected rather than silently absorbed.
        names = _span_names(root)
        assert names.count("replicate.ship") == 2
        duplicate = root["children"][1]["children"][0]
        assert duplicate["attrs"]["status"] == "duplicate"

    def test_read_sees_the_write(self):
        cluster = self._traced_cluster()
        assert cluster.read("order", "o-1").fields["total"] == 9


class TestPartitionAndHeal:
    def test_lost_batch_leaves_open_ship_spans_then_heals(self):
        cluster = (
            Cluster.build(seed=11)
            .with_network(latency=2.0)
            .with_replicas(2, mode="async", ship_interval=10.0)
            .with_tracing()
            .create()
        )
        cluster.replication.write_insert("order", "o-1", {"total": 3})
        cluster.network.partition_into({"primary"}, {"backup"})
        cluster.sim.run(until=25.0)  # ship rounds fire into the partition

        tracer = cluster.tracer
        open_ships = [
            span for span in tracer.spans
            if span.name == "replicate.ship" and span.end is None
        ]
        assert open_ships, "dropped batches must leave their ship spans open"
        assert cluster.replication.backup.store.get("order", "o-1") is None
        assert "open" in render_timeline(tracer)

        cluster.network.heal()
        cluster.sim.run(until=60.0)

        # After the heal the anti-entropy probe re-ships, and a later
        # ship span closes with the apply chained under it.
        delivered = [
            span for span in tracer.spans
            if span.name == "replicate.ship"
            and span.attrs.get("status") == "delivered"
        ]
        assert delivered
        applies = [s for s in tracer.spans if s.name == "store.apply"]
        assert any(s.attrs.get("status") == "applied" for s in applies)
        assert cluster.replication.backup.store.get("order", "o-1").fields == {
            "total": 3
        }
        # The originally lost hops remain open: history is not rewritten.
        assert all(span.end is None for span in open_ships)

    def test_partition_blocked_sends_counted(self):
        cluster = (
            Cluster.build(seed=11)
            .with_network(latency=2.0)
            .with_replicas(2, mode="async", ship_interval=10.0)
            .with_tracing()
            .create()
        )
        cluster.replication.write_insert("order", "o-1", {"total": 3})
        cluster.network.partition_into({"primary"}, {"backup"})
        cluster.sim.run(until=25.0)
        assert cluster.metrics.value("net.dropped", reason="partition") > 0


class TestExport:
    def test_payload_matches_checked_in_schema(self):
        cluster = (
            Cluster.build(seed=7)
            .with_network(latency=5.0)
            .with_replicas(2, mode="async", ship_interval=10.0)
            .with_tracing()
            .create()
        )
        cluster.replication.write_insert("order", "o-1", {"total": 9})
        cluster.sim.run(until=40.0)
        schema = json.loads(SCHEMA_PATH.read_text())
        payload = cluster.trace_payload(test="schema")
        assert validate_trace(payload, schema) == []
        assert payload["trace_count"] == 1
        assert payload["meta"] == {"test": "schema"}

    def test_validator_reports_problems(self):
        schema = json.loads(SCHEMA_PATH.read_text())
        bad = {"meta": {}, "trace_count": "not-a-number", "spans": [{}]}
        problems = validate_trace(bad, schema)
        assert any("trace_count" in p for p in problems)
        assert any("span_id" in p for p in problems)

    def test_untraced_cluster_refuses_observability_views(self):
        import pytest

        cluster = Cluster.build(seed=1).with_store().create()
        with pytest.raises(RuntimeError):
            cluster.timeline()
        with pytest.raises(RuntimeError):
            cluster.metrics_report()
        with pytest.raises(RuntimeError):
            cluster.trace_payload()


def test_trace_payload_meta_optional():
    tracer = Tracer()
    with tracer.span("only"):
        pass
    payload = trace_payload(tracer)
    assert payload["meta"] == {}
    assert payload["trace_count"] == 1
